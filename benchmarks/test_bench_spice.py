"""E8 (Fig. 6.3): the SPICE flow on cascaded inverter chains.

Extract, simulate and measure the three-inverter cell of the figure;
check the physical shape (stage delays accumulate, RC magnitudes match
the switch model) and benchmark extraction and simulation separately.
"""

import pytest

from repro.spice import DC, Pulse, SpicePlot, SpiceSimulation, extract_netlist, inverter
from repro.stem import CellClass

NS = 1e-9


def build_chain(stages=3, name=None):
    inv = inverter(c_load=10e-12, r_on_n=1e3, r_on_p=2e3,
                   name=f"INV{stages}s")
    chain = CellClass(name or f"CHAIN{stages}")
    chain.define_signal("a", "in")
    chain.define_signal("y", "out")
    chain.define_signal("vdd", "inout")
    chain.define_signal("gnd", "inout")
    vdd = chain.add_net("vdd"); vdd.connect_io("vdd")
    gnd = chain.add_net("gnd"); gnd.connect_io("gnd")
    current = chain.add_net("nin"); current.connect_io("a")
    for i in range(stages):
        stage = inv.instantiate(chain, f"I{i}")
        current.connect(stage, "a")
        vdd.connect(stage, "vdd")
        gnd.connect(stage, "gnd")
        current = chain.add_net(f"n{i + 1}")
        current.connect(stage, "y")
    current.connect_io("y")
    return chain


def simulate(chain):
    sim = SpiceSimulation(chain)
    sim.add_source("vdd", DC(5.0))
    sim.add_source("nin", Pulse(0.0, 5.0, td=150 * NS, tr=0.1 * NS))
    sim.set_tran(0.5 * NS, 400 * NS)
    sim.run()
    return sim


class TestFig63:
    def test_three_stage_logic_levels(self):
        sim = simulate(build_chain(3))
        plot = SpicePlot(sim)
        assert plot.final_value("n1") == pytest.approx(0.0, abs=0.2)
        assert plot.final_value("n2") == pytest.approx(5.0, abs=0.2)
        assert plot.final_value("n3") == pytest.approx(0.0, abs=0.2)

    def test_stage_delays_accumulate(self):
        """Same-polarity stages (n1 and n3 both fall) are strictly later.

        Note the 50% crossings of *adjacent* stages need not be monotone
        in a switch model with Vt < Vdd/2 and asymmetric pull-up: n3
        starts falling as soon as n2 passes Vt, before n2 reaches 50%.
        """
        sim = simulate(build_chain(3))
        plot = SpicePlot(sim)
        edge = plot.crossing_time("nin", 2.5, rising=True)
        d1 = plot.delay_between("nin", "n1", 2.5, after=edge - NS)
        d3 = plot.delay_between("nin", "n3", 2.5, after=edge - NS)
        assert d1 is not None and d3 is not None
        assert d3 > 2 * d1

    def test_first_stage_rc_magnitude(self):
        """Falling output through the nmos: ~0.69 * Ron_n * Cload."""
        sim = simulate(build_chain(1))
        plot = SpicePlot(sim)
        edge = plot.crossing_time("nin", 2.5, rising=True)
        d1 = plot.delay_between("nin", "n1", 2.5, after=edge - NS)
        assert d1 == pytest.approx(0.693 * 1e3 * 10e-12, rel=0.2)


def test_bench_extraction(benchmark):
    chain = build_chain(8)
    netlist = benchmark(lambda: extract_netlist(chain))
    assert len(netlist.cards) == 8 * 3


def test_bench_simulation_run(benchmark):
    chain = build_chain(3)
    sim = SpiceSimulation(chain)
    sim.add_source("vdd", DC(5.0))
    sim.add_source("nin", Pulse(0.0, 5.0, td=50 * NS, tr=0.1 * NS))
    sim.set_tran(1 * NS, 150 * NS)
    out = benchmark(sim.run)
    assert out.time[-1] == pytest.approx(150 * NS, rel=0.05)
