"""Deep-chain propagation: depth limited by memory, not the C stack.

The recursive engine burned one interpreter frame per ``spread ->
propagate_variable -> set_propagated`` hop and pre-raised the recursion
limit by 50k per round; chains deeper than the headroom were simply
impossible.  The wavefront engine iterates an explicit event queue, so
chain depth is bounded only by heap memory.  These benchmarks drive full
value changes down equality chains of 1k / 10k / 100k constraints — the
100k case is ~100x deeper than CPython's default recursion limit.
"""

import itertools
import sys

import pytest

from repro.core import EqualityConstraint, Variable


def build_chain(length):
    variables = [Variable(name=f"v{i}") for i in range(length + 1)]
    for left, right in zip(variables, variables[1:]):
        EqualityConstraint(left, right)
    return variables


@pytest.mark.parametrize("length", [1_000, 10_000])
def test_bench_deep_chain(benchmark, length):
    variables = build_chain(length)
    values = itertools.cycle([1, 2])
    benchmark(lambda: variables[0].set(next(values)))
    assert variables[-1].value == variables[0].value


def test_bench_very_deep_chain_100k(benchmark):
    """A 100k-constraint chain propagates on the stock interpreter stack."""
    length = 100_000
    limit_before = sys.getrecursionlimit()
    variables = build_chain(length)
    values = itertools.cycle([1, 2])
    benchmark.pedantic(lambda: variables[0].set(next(values)),
                       rounds=3, iterations=1, warmup_rounds=1)
    assert variables[-1].value == variables[0].value
    assert sys.getrecursionlimit() == limit_before
