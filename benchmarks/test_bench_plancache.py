"""Plan-cache rounds: cold trace, warm straight-line hit, forced deopt.

The plan cache (:mod:`repro.core.plancache`) records hot assignment
rounds and replays them as guarded straight-line plans — no agendas, no
visited sets, no satisfaction sweep over untouched constraints.  These
benchmarks measure the three phases of that lifecycle on the thesis's
Fig. 4.5 network and on a 1k-constraint equality chain:

* ``cold`` — every round misses (the cache is cleared between rounds),
  so the full general engine runs plus the cache's key lookup;
* ``warm`` — the key is hot and promoted, every round replays the plan
  (this is the round the PR's ≥2x acceptance criterion gates);
* ``deopt`` — a predicate bound is tightened between warm-up and the
  measured round, so the plan's check guard fails, the written values
  roll back and the general engine re-runs the round.

Plan-cache counters ride into ``BENCH_PROP.json`` through each
benchmark's ``extra_info``, so CI artifacts show hit/deopt behaviour
next to the medians.
"""

import itertools

import pytest

from repro.core import (
    EqualityConstraint,
    PlanCache,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
)


def build_fig4_5():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


def build_chain(length):
    variables = [Variable(name=f"v{i}") for i in range(length + 1)]
    for left, right in zip(variables, variables[1:]):
        EqualityConstraint(left, right)
    return variables


def warm(cache, v1, values, rounds=6):
    """Alternate assignments until the key promotes to a plan."""
    for _ in range(rounds):
        assert v1.set(next(values))
    assert cache.plan_for(v1) is not None, cache.stats()


def record_counters(benchmark, cache):
    benchmark.extra_info["plan_hits"] = cache.hits
    benchmark.extra_info["plan_deopts"] = cache.deopts
    benchmark.extra_info["plan_promotions"] = cache.promotions


def test_bench_plancache_cold(benchmark, context):
    """Every round a registration miss: general engine + cache lookup."""
    cache = PlanCache(context)
    v1, v2, v3, v4 = build_fig4_5()
    values = itertools.cycle([9, 8])

    def cold_round():
        cache.clear()
        assert v1.set(next(values))

    benchmark(cold_round)
    assert v2.value == v1.value and v4.value == max(v2.value, v3.value)
    assert cache.hits == 0
    record_counters(benchmark, cache)


def test_bench_plancache_warm_hit(benchmark, context):
    """The promoted straight-line replay — the acceptance-gated round."""
    cache = PlanCache(context)
    v1, v2, v3, v4 = build_fig4_5()
    values = itertools.cycle([9, 8])
    warm(cache, v1, values)

    benchmark(lambda: v1.set(next(values)))
    assert v2.value == v1.value and v4.value == max(v2.value, v3.value)
    assert cache.hits > 0 and cache.deopts == 0, cache.stats()
    record_counters(benchmark, cache)


def test_bench_plancache_deopt(benchmark, context):
    """Guard failure: rollback, fall back to the general engine, re-trace."""
    cache = PlanCache(context)
    v1, v2, v3, v4 = build_fig4_5()
    ub = UpperBoundConstraint(v4, 100)
    values = itertools.cycle([9, 8])

    def rewarm():
        ub.bound = 100
        cache.clear()
        warm(cache, v1, values)
        ub.bound = 0  # the next replayed round violates the predicate

    def violating_round():
        assert not v1.set(next(values))

    benchmark.pedantic(violating_round, setup=rewarm,
                       rounds=10, iterations=1)
    assert cache.deopts >= 10, cache.stats()
    record_counters(benchmark, cache)


@pytest.mark.parametrize("length", [1_000])
def test_bench_plancache_deep_chain_warm(benchmark, context, length):
    """A 1k-equality chain replays as one flat write sequence."""
    cache = PlanCache(context)
    variables = build_chain(length)
    values = itertools.cycle([1, 2])
    warm(cache, variables[0], values)

    benchmark(lambda: variables[0].set(next(values)))
    assert variables[-1].value == variables[0].value
    assert cache.hits > 0 and cache.deopts == 0, cache.stats()
    record_counters(benchmark, cache)
