"""E4 (Figs. 4.11/4.12): dependency analysis over propagated values.

Antecedent and consequence traversal on equality chains of growing
length; the thesis relies on these traversals to make constraint removal
affordable (dependency-directed erasure).
"""

import pytest

from repro.core import (
    EqualityConstraint,
    Variable,
    antecedents,
    variable_consequences,
)


def build_chain(length):
    variables = [Variable(name=f"v{i}") for i in range(length)]
    for left, right in zip(variables, variables[1:]):
        EqualityConstraint(left, right)
    variables[0].set(1)
    return variables


class TestTraversalCorrectness:
    @pytest.mark.parametrize("length", [2, 16, 64])
    def test_antecedents_cover_whole_chain(self, length):
        variables = build_chain(length)
        result = antecedents(variables[-1])
        assert set(variables) <= result
        # length-1 constraints plus length variables
        assert len(result) == 2 * length - 1

    @pytest.mark.parametrize("length", [2, 16, 64])
    def test_consequences_cover_downstream(self, length):
        variables = build_chain(length)
        assert variable_consequences(variables[0]) == set(variables[1:])


def test_bench_antecedents_chain_256(benchmark):
    variables = build_chain(256)
    result = benchmark(lambda: antecedents(variables[-1]))
    assert len(result) == 2 * 256 - 1


def test_bench_consequences_chain_256(benchmark):
    variables = build_chain(256)
    result = benchmark(lambda: variable_consequences(variables[0]))
    assert len(result) == 255


def test_bench_erasure_on_removal(benchmark):
    """Constraint removal uses consequence analysis to erase values."""

    def remove_middle():
        variables = build_chain(64)
        middle = variables[32].constraints[0]
        middle.remove()
        return variables

    variables = benchmark(remove_middle)
    # downstream of the removed constraint was erased
    assert variables[-1].value is None
    assert variables[0].value == 1
