"""E2 (section 4.2.1): agenda deferral of functional constraints.

A functional constraint defers its inference onto an agenda so every
argument can change before the computation runs, suppressing redundant
transient calculations.  The ablation compares the number of inference
executions with agenda scheduling against an immediate-firing variant of
the same constraint, on a reduction tree whose leaves all change in one
round (driven through equality constraints from one master variable).
"""

import itertools

import pytest

from repro.core import (
    EqualityConstraint,
    UniAdditionConstraint,
    Variable,
    default_context,
)


class ImmediateAddition(UniAdditionConstraint):
    """Ablation: the same sum constraint without agenda deferral."""

    agenda = None

    def immediate_inference_by_changing(self, variable):
        if variable is self.result_variable:
            return
        super().immediate_inference_by_changing(variable)


def build_tree(constraint_class, fan_in=8):
    """master ==(equality)==> leaves --(sum)--> total."""
    master = Variable(name="master")
    leaves = [Variable(name=f"leaf{i}") for i in range(fan_in)]
    EqualityConstraint(master, *leaves)
    total = Variable(name="total")
    constraint_class(total, leaves)
    return master, total


class TestAgendaDeferral:
    def test_deferred_sum_computes_once_per_round(self, context):
        master, total = build_tree(UniAdditionConstraint, fan_in=8)
        context.stats.reset()
        assert master.set(5)
        assert total.value == 40
        assert context.stats.inference_runs == 1

    def test_immediate_sum_recomputes_per_leaf(self, context):
        master, total = build_tree(ImmediateAddition, fan_in=8)
        master.set(5)  # prime: all leaves hold values now
        context.stats.reset()
        assert master.set(6)
        assert total.value == 48
        # every leaf change fires the constraint: 8 transient totals
        assert context.stats.propagated_assignments >= 8 + 8

    def test_deferral_reduces_transient_updates(self, context):
        """The headline claim: agenda scheduling avoids transients."""
        master_d, total_d = build_tree(UniAdditionConstraint, fan_in=8)
        master_d.set(5)
        context.stats.reset()
        master_d.set(6)
        deferred_changes = context.stats.propagated_assignments
        context.stats.reset()

        master_i, total_i = build_tree(ImmediateAddition, fan_in=8)
        master_i.set(5)
        context.stats.reset()
        master_i.set(6)
        immediate_changes = context.stats.propagated_assignments
        assert total_d.value == total_i.value == 48
        assert immediate_changes > deferred_changes


def test_bench_deferred(benchmark):
    master, total = build_tree(UniAdditionConstraint, fan_in=16)
    values = itertools.cycle([5, 6])
    benchmark(lambda: master.set(next(values)))
    assert total.value == 16 * master.value


def test_bench_immediate_ablation(benchmark):
    master, total = build_tree(ImmediateAddition, fan_in=16)
    values = itertools.cycle([5, 6])
    benchmark(lambda: master.set(next(values)))
    assert total.value == 16 * master.value
