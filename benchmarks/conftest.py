"""Benchmark fixtures: fresh propagation context per benchmark, and the
``BENCH_PROP.json`` trajectory emitter.

At session end, every pytest-benchmark result's summary statistics
(median first) are written through :mod:`repro.obs.report` to
``BENCH_PROP.json`` at the repo root (override with the
``BENCH_PROP_PATH`` environment variable), seeding the perf trajectory
each PR's CI run uploads as an artifact.  Writes merge with whatever the
file already holds: a run of one suite (or a ``-k`` filter) updates its
own benchmarks and carries the other suites' entries over, so split
invocations accumulate one cumulative trajectory instead of each keeping
only the last suite's results.
"""

import os

import pytest

from repro.core import default_context, reset_default_context


@pytest.fixture(autouse=True)
def fresh_context():
    yield reset_default_context()
    reset_default_context()


@pytest.fixture
def context():
    return default_context()


def pytest_sessionfinish(session, exitstatus):
    bench_session = getattr(session.config, "_benchmarksession", None)
    benchmarks = getattr(bench_session, "benchmarks", None)
    if not benchmarks:
        return  # no benchmarks ran (collection error, -k filter, ...)
    from repro.obs.report import write_bench_report

    path = os.environ.get("BENCH_PROP_PATH") or os.path.join(
        str(session.config.rootpath), "BENCH_PROP.json")
    try:
        written = write_bench_report(path, benchmarks)
    except OSError as error:
        print(f"\nBENCH_PROP report not written: {error}")
        return
    if written:
        print(f"\nbenchmark medians written to {written}")
