"""Benchmark fixtures: fresh propagation context per benchmark."""

import pytest

from repro.core import default_context, reset_default_context


@pytest.fixture(autouse=True)
def fresh_context():
    yield reset_default_context()
    reset_default_context()


@pytest.fixture
def context():
    return default_context()
