"""E3 (Fig. 4.9): cyclic constraint violation detection and rollback.

The +1/+3/+2 addition cycle cannot be satisfied; the one-value-change
rule detects the cycle on V1's second change and restores the network.
The benchmark measures the cost of a full detect-and-restore round.
"""

import pytest

from repro.core import FormulaConstraint, Variable, default_context


def build_cycle():
    v1 = Variable(name="V1")
    v2 = Variable(name="V2")
    v3 = Variable(name="V3")
    FormulaConstraint(v2, [v1], lambda x: x + 1, label="+1")
    FormulaConstraint(v3, [v2], lambda x: x + 3, label="+3")
    FormulaConstraint(v1, [v3], lambda x: x + 2, label="+2")
    return v1, v2, v3


def test_fig_4_9_violation_and_restore():
    v1, v2, v3 = build_cycle()
    assert not v1.set(10)
    assert (v1.value, v2.value, v3.value) == (None, None, None)
    record = default_context().handler.last
    assert "one-value-change" in record.reason


def test_bench_cycle_detection(benchmark):
    v1, v2, v3 = build_cycle()

    def attempt():
        assert not v1.set(10)

    benchmark(attempt)
    assert v1.value is None


def test_bench_long_cycle_detection(benchmark):
    """Detection cost on a 64-constraint cycle."""
    n = 64
    variables = [Variable(name=f"V{i}") for i in range(n)]
    for i in range(n):
        FormulaConstraint(variables[(i + 1) % n], [variables[i]],
                          lambda x: x + 1, label="+1")

    def attempt():
        assert not variables[0].set(0)

    benchmark(attempt)
    assert all(v.value is None for v in variables)
