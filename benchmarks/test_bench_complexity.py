"""E16 (section 9.2.3): propagation complexity scales with Σ_v |C(v)|.

The thesis: "The time and storage complexity of STEM's constraint
propagation is of an order proportional to the summation of the number
of constraints over all variables in the network."  Two sweeps check the
claim through the engine's own counters:

* chain length sweep — activations grow linearly in network size;
* degree sweep — for fixed variable count, activations grow linearly in
  the number of constraints per variable.

Benchmarks record wall-clock time for the same sweeps so the shape can
be compared against the counter model.
"""

import itertools

import pytest

from repro.core import EqualityConstraint, Variable, default_context


def build_chain(length):
    variables = [Variable(name=f"v{i}") for i in range(length)]
    for left, right in zip(variables, variables[1:]):
        EqualityConstraint(left, right)
    return variables


def build_star(points, spokes):
    """One hub; `spokes` equality constraints to each of `points` leaves."""
    hub = Variable(name="hub")
    leaves = []
    for i in range(points):
        leaf = Variable(name=f"leaf{i}")
        leaves.append(leaf)
        for _ in range(spokes):
            EqualityConstraint(hub, leaf)
    return hub, leaves


def activations_for_chain(length):
    context = default_context()
    variables = build_chain(length)
    context.stats.reset()
    variables[0].set(1)
    return context.stats.constraint_activations


class TestLinearScaling:
    def test_chain_activations_scale_linearly(self, context):
        base = activations_for_chain(50)
        context.stats.reset()
        doubled = activations_for_chain(100)
        quadrupled = activations_for_chain(200)
        assert doubled / base == pytest.approx(2.0, rel=0.15)
        assert quadrupled / base == pytest.approx(4.0, rel=0.15)

    def test_degree_scaling(self, context):
        """Fixed variables, growing constraint degree: linear activations.

        Each changed variable activates all its constraints except the
        one that set it, so a star of P leaves with S parallel equalities
        each costs exactly P*(2S-1) activations — linear in S, i.e. in
        Σ_v |C(v)|.
        """
        points = 16
        for spokes in (1, 2, 4):
            hub, leaves = build_star(points, spokes)
            context.stats.reset()
            hub.set(1)
            assert context.stats.constraint_activations == \
                points * (2 * spokes - 1)

    def test_activations_bounded_by_sum_of_degrees(self, context):
        """Activations are Θ(Σ_v |C(v)|): each constraint activates once
        per changed argument, minus the exclude-source discount."""
        variables = build_chain(32)
        context.stats.reset()
        variables[0].set(1)
        incidences = sum(len(v.constraints) for v in variables)
        activations = context.stats.constraint_activations
        assert activations == len(variables) - 1  # one per constraint
        assert incidences / 2 <= activations * 2  # same order


@pytest.mark.parametrize("length", [50, 100, 200, 400])
def test_bench_chain_propagation(benchmark, length):
    variables = build_chain(length)
    values = itertools.cycle([1, 2])
    benchmark(lambda: variables[0].set(next(values)))
    assert variables[-1].value == variables[0].value


@pytest.mark.parametrize("spokes", [1, 2, 4])
def test_bench_degree_propagation(benchmark, spokes):
    hub, leaves = build_star(16, spokes)
    values = itertools.cycle([1, 2])
    benchmark(lambda: hub.set(next(values)))
    assert leaves[-1].value == hub.value
