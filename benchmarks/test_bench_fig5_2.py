"""E5 (Fig. 5.2): the hierarchical ADDER / ACCUMULATOR delay scenario.

An 8-bit ADDER carries a "<=120ns" class-level delay spec; an
ACCUMULATOR (REGISTER -> ADDER) carries a "<=160ns" spec.  With the
REGISTER at 60ns, an ADDER characteristic of 110ns violates the
accumulator constraint *through the hierarchy* — detected when the
adder-level value is assigned, exactly as the figure narrates.
"""

import itertools

import pytest

from repro.core import UpperBoundConstraint, default_context
from repro.stem import CellClass

NS = 1e-9


def build_scenario():
    adder = CellClass("ADDER")
    adder.define_signal("a", "in", load_capacitance=1.0)
    adder.define_signal("b", "in", load_capacitance=1.0)
    adder.define_signal("sum", "out", output_resistance=2.0)
    UpperBoundConstraint(adder.declare_delay("a", "sum", estimate=100 * NS),
                         120 * NS)

    register = CellClass("REGISTER")
    register.define_signal("d", "in", load_capacitance=1.0)
    register.define_signal("q", "out", output_resistance=1.0)
    register.declare_delay("d", "q", estimate=60 * NS)

    acc = CellClass("ACCUMULATOR")
    acc.define_signal("in1", "in")
    acc.define_signal("out1", "out")
    UpperBoundConstraint(acc.declare_delay("in1", "out1"), 160 * NS)

    reg = register.instantiate(acc, "R1")
    add = adder.instantiate(acc, "A1")
    n_in = acc.add_net("n_in"); n_in.connect_io("in1"); n_in.connect(reg, "d")
    n_mid = acc.add_net("n_mid")
    n_mid.connect(reg, "q"); n_mid.connect(add, "a")
    n_out = acc.add_net("n_out")
    n_out.connect(add, "sum"); n_out.connect_io("out1")
    acc.build_delay_network()
    return adder, register, acc


class TestFig52:
    def test_estimates_satisfy_spec(self):
        adder, register, acc = build_scenario()
        assert acc.delay_var("in1", "out1").value == pytest.approx(160 * NS)

    def test_110ns_adder_violates_through_hierarchy(self):
        adder, register, acc = build_scenario()
        assert not adder.delay_var("a", "sum").calculate(110 * NS)
        # rolled back everywhere
        assert adder.delay_var("a", "sum").value == pytest.approx(100 * NS)
        assert acc.delay_var("in1", "out1").value == pytest.approx(160 * NS)
        assert default_context().handler.records

    def test_class_level_spec_also_enforced(self):
        adder, register, acc = build_scenario()
        assert not adder.delay_var("a", "sum").calculate(130 * NS)

    def test_faster_register_makes_room(self):
        adder, register, acc = build_scenario()
        assert register.delay_var("d", "q").calculate(40 * NS)
        assert adder.delay_var("a", "sum").calculate(110 * NS)
        assert acc.delay_var("in1", "out1").value == pytest.approx(150 * NS)


def test_bench_hierarchical_update(benchmark):
    """Cost of one class-delay update propagating up the hierarchy."""
    adder, register, acc = build_scenario()
    values = itertools.cycle([90 * NS, 95 * NS])
    benchmark(lambda: adder.delay_var("a", "sum").calculate(next(values)))
    assert acc.delay_var("in1", "out1").value == pytest.approx(
        60 * NS + adder.delay_var("a", "sum").value)


def test_bench_violating_update(benchmark):
    """Cost of a violating update: propagate, detect, restore."""
    adder, register, acc = build_scenario()

    def attempt():
        assert not adder.delay_var("a", "sum").calculate(110 * NS)

    benchmark(attempt)
