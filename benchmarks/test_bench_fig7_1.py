"""E10 (Fig. 7.1): bit-width constraint violation on connection.

A cell whose input signal is structurally constrained to 8 bits is
instantiated in a design where a 4-bit net reaches the corresponding
signal; the connection triggers the figure's violation and the designer
is warned.  The benchmark measures violation-free and violating connect
operations.
"""

import pytest

from repro.core import USER, default_context, reset_default_context
from repro.stem import CellClass


def build_scene(net_width=4, signal_width=8):
    leaf = CellClass("LEAF")
    leaf.define_signal("in1", "in")
    leaf.signal("in1").bit_width_var.constrain_by_structure(signal_width)
    top = CellClass("TOP")
    top.define_signal("x", "in")
    top.signal("x").bit_width_var.set(net_width, USER)
    instance = leaf.instantiate(top, "L1")
    net = top.add_net("n")
    net.connect_io("x")
    return leaf, top, instance, net


class TestFig71:
    def test_mismatch_violates(self, context):
        leaf, top, instance, net = build_scene(4, 8)
        assert not net.connect(instance, "in1")
        assert context.handler.records
        assert leaf.signal("in1").bit_width_var.value == 8

    def test_match_accepted(self):
        leaf, top, instance, net = build_scene(8, 8)
        assert net.connect(instance, "in1")
        assert net.bit_width_var.value == 8

    def test_width_inferred_when_unconstrained(self):
        leaf = CellClass("LEAF2")
        leaf.define_signal("in1", "in")
        top = CellClass("TOP2")
        top.define_signal("x", "in")
        top.signal("x").bit_width_var.set(4, USER)
        instance = leaf.instantiate(top, "L1")
        net = top.add_net("n")
        net.connect_io("x")
        assert net.connect(instance, "in1")
        assert leaf.signal("in1").bit_width_var.value == 4


def test_bench_valid_connect(benchmark):
    def connect_once():
        reset_default_context()
        leaf, top, instance, net = build_scene(8, 8)
        assert net.connect(instance, "in1")

    benchmark(connect_once)


def test_bench_violating_connect(benchmark):
    def connect_once():
        reset_default_context()
        leaf, top, instance, net = build_scene(4, 8)
        assert not net.connect(instance, "in1")

    benchmark(connect_once)
