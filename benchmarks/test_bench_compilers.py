"""E7 (Fig. 6.2): module compilation of sliced adders.

Compiles adders from 2-bit slices with the GraphCompiler (the figure's
5-bit adder built from repeated slices) and measures compilation cost at
several widths.
"""

import pytest

from repro.core import reset_default_context
from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import GraphCompiler, VectorCompiler


def build_slice(name="ADD2_SLICE"):
    cell = CellClass(name)
    cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    cell.define_signal("a", "in", bit_width=2, pins=[PinSpec("bottom", 0.25)])
    cell.define_signal("b", "in", bit_width=2, pins=[PinSpec("bottom", 0.75)])
    cell.define_signal("sum", "out", bit_width=2, pins=[PinSpec("top", 0.5)])
    cell.set_bounding_box(Rect.of_extent(8.0, 10.0))
    return cell


class TestFig62:
    def test_repeated_slice_adder(self):
        """The figure's adder: a slice repeated across the word."""
        slice_cell = build_slice()
        compiler = GraphCompiler()
        compiler.place(0, 0, slice_cell, name="slice")
        compiler.repeat_columns(0, 0, 3)
        adder = CellClass("ADDER6")
        instances = compiler.compile_into(adder)
        assert len(instances) == 3
        assert len(adder.nets) == 2  # the carry chain
        assert adder.bounding_box() == Rect.of_extent(24.0, 10.0)

    def test_carry_chain_connectivity(self):
        slice_cell = build_slice()
        adder = CellClass("ADDER10")
        VectorCompiler(slice_cell, 5).compile_into(adder)
        for net in adder.nets.values():
            assert sorted(s for _, s in net.endpoints) == ["cin", "cout"]


@pytest.mark.parametrize("slices", [4, 16, 64])
def test_bench_compile_adder(benchmark, slices):
    slice_cell = build_slice()

    def compile_once():
        reset_default_context()
        fresh_slice = build_slice(f"SLICE{slices}")
        adder = CellClass(f"ADDER{slices}")
        VectorCompiler(fresh_slice, slices).compile_into(adder)
        return adder

    adder = benchmark(compile_once)
    assert len(adder.subcells) == slices
    assert len(adder.nets) == slices - 1
