"""Storage-backend costs: journaled assigns and checkpoints per backend.

The pluggable store seam must not tax the hot path.  Three figures per
backend (file / sqlite / object) land in the benchmark report — the
journaled-assign round, the checkpoint publish, and recovery replay —
plus one in-suite acceptance gate: sqlite's journal-append overhead
stays within 25% of the file backend at ``fsync="never"``, the policy
the journal-overhead budget in ``test_bench_session`` also gates at.
That isolates the *seam* tax — buffering, gating, row bookkeeping —
from the hardware durability cost (at ``fsync="always"`` a sqlite
append is a WAL commit and a file append one ``fdatasync``; comparing
those benchmarks disk firmware, not this code).

The gate uses the same noise discipline as the journal-overhead budget:
interleaved bursts, minimum per variant, best of a few attempts.
"""

import gc
import itertools
import time

import pytest

from repro.session import Session
from repro.store import STORE_BACKENDS, resolve_store


def store_session(kind, root, fsync="never"):
    store = resolve_store(kind, str(root))
    session = Session("bench", store=store.session("bench"), fsync=fsync)
    session._bench_root_store = store  # closed with the session below
    for name in ("v1", "v2", "v3", "v4"):
        session.make_variable(name)
    session.assign("v:v3", 5)
    session.add_constraint("equality", ["v:v1", "v:v2"])
    session.add_constraint("maximum", ["v:v4", "v:v2", "v:v3"])
    return session


def close_all(session):
    session.close()
    session._bench_root_store.close()


def _assign_loop(session):
    values = itertools.cycle([9, 8])

    def assign():
        session.assign("v:v1", next(values))

    return assign


@pytest.mark.parametrize("kind", list(STORE_BACKENDS))
def test_bench_store_assign(benchmark, tmp_path, kind):
    session = store_session(kind, tmp_path)
    try:
        benchmark(_assign_loop(session))
    finally:
        close_all(session)


@pytest.mark.parametrize("kind", list(STORE_BACKENDS))
def test_bench_store_checkpoint(benchmark, tmp_path, kind):
    session = store_session(kind, tmp_path)
    try:
        for i in range(40):
            session.assign("v:v1", i)
        benchmark(session.checkpoint)
    finally:
        close_all(session)


@pytest.mark.parametrize("kind", list(STORE_BACKENDS))
def test_bench_store_replay(benchmark, tmp_path, kind):
    entries = 300
    session = store_session(kind, tmp_path)
    for i in range(entries // 2):
        session.assign("v:v1", i)
        session.assign("v:v3", i % 7)
    close_all(session)

    store = resolve_store(kind, str(tmp_path))
    try:
        def recover():
            with Session("bench", store=store.session("bench"),
                         read_only=True) as replayed:
                assert replayed.replayed_entries >= entries

        benchmark(recover)
    finally:
        store.close()


class TestSqliteOverheadBudget:
    """The acceptance gate: sqlite journal appends within 25% of file.

    Measured at ``fsync="never"`` so the comparison isolates what the
    backend seam itself costs per append.  Interleaved bursts +
    min-per-variant + best-of-N attempts keep shared-CI noise out of
    the verdict.
    """

    BURSTS = 10
    BURST_OPS = 400
    BUDGET = 1.25
    ATTEMPTS = 4

    @staticmethod
    def _burst(session, ops):
        values = itertools.cycle([9, 8])
        start = time.perf_counter()
        for _ in range(ops):
            session.assign("v:v1", next(values))
        return time.perf_counter() - start

    def _measure_ratio(self, tmp_path, attempt):
        file_session = store_session(
            "file", tmp_path / f"file{attempt}")
        sqlite_session = store_session(
            "sqlite", tmp_path / f"sqlite{attempt}")
        try:
            file_times, sqlite_times = [], []
            gc.collect()
            gc.disable()
            try:
                for _ in range(self.BURSTS):
                    file_times.append(
                        self._burst(file_session, self.BURST_OPS))
                    sqlite_times.append(
                        self._burst(sqlite_session, self.BURST_OPS))
            finally:
                gc.enable()
            return min(sqlite_times) / min(file_times)
        finally:
            close_all(file_session)
            close_all(sqlite_session)

    def test_sqlite_append_overhead_within_budget(self, tmp_path):
        ratios = []
        for attempt in range(self.ATTEMPTS):
            ratio = self._measure_ratio(tmp_path, attempt)
            ratios.append(round(ratio, 3))
            if ratio < self.BUDGET:
                return
        pytest.fail(f"sqlite journal overhead above {self.BUDGET:.0%} of "
                    f"the file backend in all {self.ATTEMPTS} attempts: "
                    f"ratios={ratios}")
