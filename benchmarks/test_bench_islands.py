"""Island-structured batches versus the fused batched round.

The island PR's performance claims, measured on a disjoint-module
hierarchy (8 modules, each one scale-offset chain; a batch assigns
every module's head in one ``assign_many``):

* **serial parity** — draining the batch island-by-island through the
  always-available :class:`SerialIslandExecutor` is observably
  byte-identical to the fused round (values, justification sources and
  every stats counter) and carries no meaningful overhead (the
  ``0007_islands-baseline`` CI gate holds both rounds' medians to 5%);
* **parallel speedup** — with a :class:`ThreadIslandExecutor` of 4 on a
  machine with ≥4 CPUs and the GIL disabled (free-threaded build), the
  same batch completes ≥2x faster than fused (skipped elsewhere: under
  the GIL, pure-Python wavefronts serialize and threads only add
  handoff);
* the engine never touches numpy — the no-numpy CI legs run this suite
  unchanged, proving the serial backend carries the feature alone.

Speedup assertions use best-of-N wall times measured in the same
process; the ``benchmark`` fixtures feed medians to BENCH_PROP.json.
"""

import os
import sys
from itertools import count
from time import perf_counter

import pytest

from repro.core import (
    PropagationContext,
    ScaleOffsetConstraint,
    SerialIslandExecutor,
    ThreadIslandExecutor,
    Variable,
    install_islands,
    source_constraint,
)

MODULES = 8
CHAIN = 300


def build_modules(context, modules=MODULES, chain=CHAIN):
    """``modules`` disjoint scale-offset chains; returns (heads, tails)."""
    heads, tails = [], []
    for module in range(modules):
        variables = [Variable(name=f"m{module}v{step}", context=context)
                     for step in range(chain)]
        for left, right in zip(variables, variables[1:]):
            ScaleOffsetConstraint(right, left, offset=1)
        heads.append(variables[0])
        tails.append(variables[-1])
    return heads, tails


def batch_for(heads, value):
    return [(head, value + 10 * index) for index, head in enumerate(heads)]


def state_of(context, variables):
    return [(v.value,
             type(source_constraint(v.last_set_by)).__name__
             if source_constraint(v.last_set_by) else None)
            for v in variables] + [context.stats.snapshot()]


def best_of(fn, repeats=5):
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def gil_enabled():
    probe = getattr(sys, "_is_gil_enabled", None)
    return True if probe is None else probe()


class TestSerialParity:
    def test_island_rounds_are_byte_identical_to_fused(self):
        fused = PropagationContext()
        island = PropagationContext()
        install_islands(island, workers=1)
        f_heads, f_tails = build_modules(fused)
        i_heads, i_tails = build_modules(island)
        for value in (5, 9, 2):
            assert fused.assign_many(batch_for(f_heads, value))
            assert island.assign_many(batch_for(i_heads, value))
            assert state_of(fused, f_heads + f_tails) \
                == state_of(island, i_heads + i_tails)

    def test_single_island_workload_is_unaffected(self):
        """A batch inside one island must not regress: grouping sees one
        group and falls through to the fused fast path."""
        fused = PropagationContext()
        island = PropagationContext()
        install_islands(island, workers=4)
        f_heads, _ = build_modules(fused, modules=1)
        i_heads, _ = build_modules(island, modules=1)
        fused_best = best_of(
            lambda it=count(): fused.assign_many(
                batch_for(f_heads, next(it))))
        island_best = best_of(
            lambda it=count(): island.assign_many(
                batch_for(i_heads, next(it))))
        assert island_best < fused_best * 3  # within noise, never cliffs


class TestBenchmarks:
    def test_fused_batch(self, benchmark):
        context = PropagationContext()
        heads, _ = build_modules(context)
        values = count()
        benchmark(lambda: context.assign_many(
            batch_for(heads, next(values))))

    def test_island_batch_serial(self, benchmark):
        context = PropagationContext()
        install_islands(context, workers=1)
        heads, _ = build_modules(context)
        values = count()
        benchmark(lambda: context.assign_many(
            batch_for(heads, next(values))))
        benchmark.extra_info["islands"] = \
            context.islands.stats()["islands"]


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="parallel speedup gate needs >=4 CPUs")
@pytest.mark.skipif(gil_enabled(),
                    reason="pure-Python wavefronts only parallelize on "
                           "free-threaded (GIL-disabled) builds")
class TestParallelSpeedup:
    def test_four_workers_beat_fused_by_2x(self):
        fused = PropagationContext()
        island = PropagationContext()
        install_islands(island, workers=4)
        f_heads, f_tails = build_modules(fused, chain=1000)
        i_heads, i_tails = build_modules(island, chain=1000)
        fused_best = best_of(
            lambda it=count(): fused.assign_many(
                batch_for(f_heads, next(it))))
        island_best = best_of(
            lambda it=count(): island.assign_many(
                batch_for(i_heads, next(it))))
        assert island_best * 2 <= fused_best, (
            f"island batch {island_best:.4f}s vs fused {fused_best:.4f}s")
        assert [v.value for v in i_tails] == [v.value for v in f_tails]
