"""Extension bench (§9.3): constraint satisfaction solvers.

Measures the interval solver's fixpoint iteration on budget-decomposition
networks of growing size, the one-pass planner, and (once, it is slow)
the scipy relaxation fallback — quantifying the division of labour
between propagation, satisfaction, and compilation.
"""

import pytest

from repro.core import (
    EqualityConstraint,
    LowerBoundConstraint,
    PropagationContext,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.core.satisfaction import (
    IntervalSolver,
    RelaxationSolver,
    plan_one_pass,
    solve_one_pass,
)


def budget_network(parts, budget=100.0, context=None):
    """part_0 + ... + part_{n-1} = total <= budget, parts >= 0."""
    context = context or PropagationContext()
    variables = [Variable(name=f"part{i}", context=context)
                 for i in range(parts)]
    total = Variable(name="total", context=context)
    with context.propagation_disabled():
        UniAdditionConstraint(total, variables)
        UpperBoundConstraint(total, budget)
        for variable in variables:
            LowerBoundConstraint(variable, 0.0)
    return variables, total


class TestBudgetIntervals:
    @pytest.mark.parametrize("parts", [2, 8, 32])
    def test_every_part_bounded_by_budget(self, parts):
        variables, total = budget_network(parts)
        solver = IntervalSolver([total])
        solver.solve()
        for variable in variables:
            interval = solver.interval_of(variable)
            assert interval.low == 0.0
            assert interval.high == pytest.approx(100.0)

    def test_known_parts_shrink_the_rest(self):
        variables, total = budget_network(3)
        variables[0].set(30.0)
        variables[1].set(20.0)
        solver = IntervalSolver([total])
        solver.solve()
        assert solver.interval_of(variables[2]).high == pytest.approx(50.0)


@pytest.mark.parametrize("parts", [4, 16, 64])
def test_bench_interval_fixpoint(benchmark, parts):
    variables, total = budget_network(parts)

    def solve():
        solver = IntervalSolver([total])
        return solver.solve()

    result = benchmark(solve)
    assert len(result) == parts + 1


def test_bench_one_pass_planning(benchmark):
    context = PropagationContext()
    a = Variable(2.0, name="a", context=context)
    chain = [a]
    with context.propagation_disabled():
        for i in range(20):
            nxt = Variable(name=f"v{i}", context=context)
            EqualityConstraint(chain[-1], nxt)
            chain.append(nxt)

    plan = benchmark(lambda: plan_one_pass([a]))
    assert plan is not None and len(plan) == 20


def test_bench_relaxation_once(benchmark):
    """scipy relaxation on x+y=10, x-y=2 (small, but full machinery)."""
    from repro.core import FormulaConstraint

    context = PropagationContext()
    x = Variable(name="x", context=context)
    y = Variable(name="y", context=context)
    total = Variable(10.0, name="total", context=context)
    diff = Variable(2.0, name="diff", context=context)
    with context.propagation_disabled():
        UniAdditionConstraint(total, [x, y])
        FormulaConstraint(diff, [x, y], lambda a, b: a - b, label="minus")
    solver = RelaxationSolver([x], free=[x, y])
    solution = benchmark(solver.solve)
    assert solution[x] == pytest.approx(6.0, abs=1e-6)
