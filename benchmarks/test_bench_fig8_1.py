"""E14 (Fig. 8.1): module selection of the ALU's adder.

Reproduces the figure's decision table — tight area selects the
ripple-carry adder, tight delay the carry-select adder — and measures
the cost of one full selection (generate-and-test with tentative
constraint propagation as the validity test).
"""

import pytest

from repro.core import UpperBoundConstraint, reset_default_context
from repro.selection import ModuleSelector
from repro.stem import CellClass, Rect

D = 1.0
A = 10.0


def build_family():
    add8 = CellClass("ADD8", is_generic=True)
    add8.define_signal("x", "in")
    add8.define_signal("y", "out")
    add8.declare_delay("x", "y", estimate=5 * D)
    add8.set_bounding_box(Rect.of_extent(A, 1.0))
    rc = add8.subclass("ADD8.RC")
    rc.delay_var("x", "y").set(8 * D)
    rc.set_bounding_box(Rect.of_extent(A, 1.0))
    cs = add8.subclass("ADD8.CS")
    cs.delay_var("x", "y").set(5 * D)
    cs.set_bounding_box(Rect.of_extent(2.2 * A, 1.0))
    return add8, rc, cs


def build_alu(add8, area_budget, delay_budget):
    alu = CellClass("ALU")
    alu.define_signal("in1", "in")
    alu.define_signal("out1", "out")
    alu.declare_delay("in1", "out1")
    UpperBoundConstraint(alu.delay_var("in1", "out1"), delay_budget)
    lu8 = CellClass("LU8")
    lu8.define_signal("a", "in")
    lu8.define_signal("z", "out")
    lu8.declare_delay("a", "z", estimate=3 * D)
    lu8.set_bounding_box(Rect.of_extent(2 * A, 1.0))
    lu = lu8.instantiate(alu, "lu")
    add = add8.instantiate(alu, "add")
    n0 = alu.add_net("n0"); n0.connect_io("in1"); n0.connect(lu, "a")
    n1 = alu.add_net("n1"); n1.connect(lu, "z"); n1.connect(add, "x")
    n2 = alu.add_net("n2"); n2.connect(add, "y"); n2.connect_io("out1")
    add.bounding_box_var.set(Rect.of_extent(area_budget, 1.0))
    alu.build_delay_network()
    return alu, add


class TestFig81Decisions:
    @pytest.mark.parametrize("area,delay,expected", [
        (1.0 * A, 11 * D, {"ADD8.RC"}),
        (4.2 * A, 8 * D, {"ADD8.CS"}),
        (4.2 * A, 11 * D, {"ADD8.RC", "ADD8.CS"}),
        (1.0 * A, 8 * D, set()),
    ])
    def test_decision_table(self, area, delay, expected):
        add8, rc, cs = build_family()
        alu, instance = build_alu(add8, area, delay)
        result = ModuleSelector().select_realizations_for(instance)
        assert {cell.name for cell in result} == expected


def test_bench_selection(benchmark):
    add8, rc, cs = build_family()
    alu, instance = build_alu(add8, 4.2 * A, 11 * D)
    selector = ModuleSelector()
    result = benchmark(lambda: selector.select_realizations_for(instance))
    assert {cell.name for cell in result} == {"ADD8.RC", "ADD8.CS"}


def test_bench_selection_with_setup(benchmark):
    """Whole-flow cost: build the design, then select."""

    def flow():
        reset_default_context()
        add8, rc, cs = build_family()
        alu, instance = build_alu(add8, 1.0 * A, 11 * D)
        return ModuleSelector().select_realizations_for(instance)

    result = benchmark(flow)
    assert [cell.name for cell in result] == ["ADD8.RC"]
