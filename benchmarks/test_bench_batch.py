"""Batched rounds and vectorized sweeps versus sequential rounds.

The batched-round refactor's two performance claims, measured on a
fig. 4.5-derived network (32 independent equality/maximum motifs):

* a **32-assign batch** submitted through
  :meth:`~repro.core.engine.PropagationContext.assign_many` with a hot
  :class:`~repro.core.plancache.PlanCache` chain replays as one
  stitched straight-line plan — one guard set, one stats delta, one
  satisfaction sweep — and must be ≥3x faster than the same 32
  assignments as 32 sequential general rounds;
* a **10k-candidate sweep** through :func:`~repro.core.sweep.sweep`
  evaluates the whole candidate array in a handful of array ops and
  must be ≥10x faster than asking the same question with 10k
  propagation rounds;
* the sweep's numpy and stdlib backends are **byte-identical** on the
  IEEE-754 level (``struct.pack`` comparison), so CI legs with and
  without numpy verify the same numbers.

Speedup assertions use the best-of-N wall time of each side measured in
the same process, so they hold on noisy CI machines; the ``benchmark``
fixtures additionally feed the medians into ``BENCH_PROP.json``.
"""

import itertools
import struct
from time import perf_counter

import pytest

from repro.core import (
    EqualityConstraint,
    HAVE_NUMPY,
    PlanCache,
    PropagationContext,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    compile_sweep,
)

MOTIFS = 32
SWEEP_CANDIDATES = 10_000


def build_motifs(count=MOTIFS, context=None):
    """``count`` independent copies of the thesis's fig. 4.5 network."""
    entries, outputs = [], []
    for index in range(count):
        v1 = Variable(7, name=f"V1_{index}", context=context)
        v2 = Variable(7, name=f"V2_{index}", context=context)
        v3 = Variable(5, name=f"V3_{index}", context=context)
        v4 = Variable(7, name=f"V4_{index}", context=context)
        EqualityConstraint(v1, v2)
        UniMaximumConstraint(v4, [v2, v3])
        entries.append(v1)
        outputs.append(v4)
    return entries, outputs


def build_fig4_5():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


def best_of(fn, repeats=7):
    best = float("inf")
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        elapsed = perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


# -- batched rounds ----------------------------------------------------------

def warm_chain(context, cache, entries, values):
    """Drive the batch key until it promotes to a plan chain."""
    for _ in range(6):
        value = next(values)
        assert context.assign_many([(entry, value) for entry in entries])
    assert cache.chain_for(entries) is not None, cache.stats()


def test_bench_batch_warm_chain(benchmark, context):
    """The promoted chain replay — the acceptance-gated batched round."""
    cache = PlanCache(context)
    entries, outputs = build_motifs()
    values = itertools.cycle([9, 8])
    warm_chain(context, cache, entries, values)

    def batch_round():
        value = next(values)
        context.assign_many([(entry, value) for entry in entries])

    benchmark(batch_round)
    assert all(out.value == entry.value
               for entry, out in zip(entries, outputs))
    assert cache.hits > 0 and cache.deopts == 0, cache.stats()
    benchmark.extra_info["plan_hits"] = cache.hits
    benchmark.extra_info["batch_entries"] = MOTIFS


def test_bench_batch_general_round(benchmark, context):
    """The general batched round (no plan cache): seed, drain, one sweep."""
    entries, outputs = build_motifs()
    values = itertools.cycle([9, 8])

    def batch_round():
        value = next(values)
        context.assign_many([(entry, value) for entry in entries])

    benchmark(batch_round)
    assert all(out.value == entry.value
               for entry, out in zip(entries, outputs))


def test_bench_sequential_rounds(benchmark, context):
    """Baseline: the same 32 assignments as 32 warm single-plan rounds."""
    cache = PlanCache(context)
    entries, outputs = build_motifs()
    values = itertools.cycle([9, 8])
    for _ in range(6):
        value = next(values)
        for entry in entries:
            assert entry.set(value)

    def sequential():
        value = next(values)
        for entry in entries:
            entry.set(value)

    benchmark(sequential)
    assert all(out.value == entry.value
               for entry, out in zip(entries, outputs))
    assert cache.hits > 0, cache.stats()


def test_batch_speedup_over_sequential():
    """Acceptance: hot 32-assign batch ≥3x faster than 32 plain rounds.

    The feature against the status quo: ``assign_many`` with a promoted
    plan chain on one context, versus the same 32 assignments as 32
    sequential general rounds (no plan cache) on an identical network.
    """
    hot = PropagationContext()
    cache = PlanCache(hot)
    entries, _ = build_motifs(context=hot)
    values = itertools.cycle([9, 8])
    warm_chain(hot, cache, entries, values)

    plain = PropagationContext()
    baseline_entries, _ = build_motifs(context=plain)

    def batch():
        assert hot.assign_many([(entry, 9) for entry in entries])
        assert hot.assign_many([(entry, 8) for entry in entries])

    def sequential():
        for entry in baseline_entries:
            assert entry.set(9)
        for entry in baseline_entries:
            assert entry.set(8)

    batch_time = best_of(batch)
    sequential_time = best_of(sequential)
    speedup = sequential_time / batch_time
    assert cache.deopts == 0, cache.stats()
    assert speedup >= 3.0, (
        f"batched round speedup {speedup:.2f}x < 3x "
        f"(batch {batch_time * 1e6:.1f}us, "
        f"sequential {sequential_time * 1e6:.1f}us)")


# -- vectorized sweeps -------------------------------------------------------

def test_bench_sweep_vectorized(benchmark, context):
    """10k candidates through the compiled sweep plan, auto backend."""
    v1, v2, v3, v4 = build_fig4_5()
    UpperBoundConstraint(v4, SWEEP_CANDIDATES / 2)
    plan = compile_sweep([v1])
    candidates = [float(value) for value in range(SWEEP_CANDIDATES)]

    result = benchmark(lambda: plan.run(candidates))
    assert len(result) == SWEEP_CANDIDATES
    benchmark.extra_info["backend"] = result.backend
    benchmark.extra_info["satisfied"] = result.satisfied_count


def test_bench_sweep_looped_rounds(benchmark, context):
    """Baseline: the same 10k what-ifs as 10k propagation rounds."""
    v1, v2, v3, v4 = build_fig4_5()
    bound = UpperBoundConstraint(v4, SWEEP_CANDIDATES / 2)
    candidates = [float(value) for value in range(SWEEP_CANDIDATES)]

    def looped():
        satisfied = 0
        for value in candidates:
            if v1.set(value):
                satisfied += 1
        return satisfied

    satisfied = benchmark(looped)
    assert 0 < satisfied < SWEEP_CANDIDATES
    assert bound.bound == SWEEP_CANDIDATES / 2


def test_sweep_speedup_over_rounds(context):
    """Acceptance: 10k-candidate sweep ≥10x faster than 10k rounds."""
    v1, v2, v3, v4 = build_fig4_5()
    UpperBoundConstraint(v4, SWEEP_CANDIDATES / 2)
    plan = compile_sweep([v1])
    candidates = [float(value) for value in range(SWEEP_CANDIDATES)]

    def vectorized():
        plan.run(candidates)

    def looped():
        for value in candidates:
            v1.set(value)

    sweep_time = best_of(vectorized, repeats=5)
    rounds_time = best_of(looped, repeats=3)
    speedup = rounds_time / sweep_time
    assert speedup >= 10.0, (
        f"sweep speedup {speedup:.2f}x < 10x "
        f"(sweep {sweep_time * 1e3:.2f}ms, rounds {rounds_time * 1e3:.2f}ms)")


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not importable")
def test_sweep_backends_byte_identical(context):
    """numpy and stdlib backends produce bit-equal IEEE-754 doubles."""
    v1, v2, v3, v4 = build_fig4_5()
    UpperBoundConstraint(v4, 6500.25)
    plan = compile_sweep([v1])
    candidates = [value * 0.644 + 0.125 for value in range(SWEEP_CANDIDATES)]

    with_numpy = plan.run(candidates, backend="numpy")
    pure_python = plan.run(candidates, backend="python")
    assert with_numpy.mask == pure_python.mask
    for variable, column in with_numpy.values.items():
        packed_numpy = struct.pack(f"<{len(column)}d", *column)
        packed_python = struct.pack(
            f"<{len(column)}d", *pure_python.values[variable])
        assert packed_numpy == packed_python, variable.qualified_name()
