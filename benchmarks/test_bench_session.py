"""Session durability costs: journal append, checkpoint, replay.

Three numbers bound what :mod:`repro.session` adds to the engine:

* **append overhead** — an externally triggered Fig. 4.5 round through a
  journaling session vs the same session without a journal.  The
  write-ahead capture must stay a small tax on propagation (<15% at
  ``fsync="never"``; durability policies above that trade speed for
  crash guarantees deliberately).
* **checkpoint latency** — snapshot + atomic write + journal prune.
* **replay throughput** — entries/second through recovery, the constant
  that sizes how much journal tail a restart can afford.

All three land in ``BENCH_PROP.json`` for the perf trajectory.
"""

import gc
import itertools
import time

import pytest

from repro.session import Session


def session_network(directory=None, fsync="never"):
    """The Fig. 4.5 equality+maximum network, built through a session."""
    session = Session("bench", directory=directory, fsync=fsync)
    for name in ("v1", "v2", "v3", "v4"):
        session.make_variable(name)
    session.assign("v:v3", 5)
    session.add_constraint("equality", ["v:v1", "v:v2"])
    session.add_constraint("maximum", ["v:v4", "v:v2", "v:v3"])
    return session


def _assign_loop(session):
    values = itertools.cycle([9, 8])

    def assign():
        session.assign("v:v1", next(values))

    return assign


def test_bench_session_assign_no_journal(benchmark):
    with session_network() as session:
        benchmark(_assign_loop(session))


def test_bench_session_assign_journaled(benchmark, tmp_path):
    with session_network(str(tmp_path), "never") as session:
        benchmark(_assign_loop(session))


def test_bench_session_checkpoint(benchmark, tmp_path):
    with session_network(str(tmp_path), "never") as session:
        for i in range(40):
            session.assign("v:v1", i)
        benchmark(session.checkpoint)


def test_bench_session_replay(benchmark, tmp_path):
    """Recovery replay of a 500-entry journal (throughput figure)."""
    entries = 500
    with session_network(str(tmp_path), "never") as session:
        for i in range(entries // 2):
            session.assign("v:v1", i)
            session.assign("v:v3", i % 7)

    def recover():
        with Session("bench", directory=str(tmp_path),
                     read_only=True) as replayed:
            assert replayed.replayed_entries >= entries

    benchmark(recover)


class TestJournalOverheadBudget:
    """The acceptance gate: journal-append tax under 15%.

    Wall-clock comparisons on shared CI boxes are noisy, so the
    measurement interleaves no-journal and journaled bursts and keeps
    the *minimum* per variant (noise only ever inflates a burst), and
    the whole comparison retries a few times — the claim "overhead is
    below the budget" is established by the best attempt, exactly like
    a min-of-N timing.
    """

    BURSTS = 10
    BURST_OPS = 400
    BUDGET = 1.15
    ATTEMPTS = 4

    @staticmethod
    def _burst(session, ops):
        values = itertools.cycle([9, 8])
        start = time.perf_counter()
        for _ in range(ops):
            session.assign("v:v1", next(values))
        return time.perf_counter() - start

    def _measure_ratio(self, tmp_path, attempt):
        with session_network() as plain, \
                session_network(str(tmp_path / f"wal{attempt}"),
                                "never") as journaled:
            plain_times, journaled_times = [], []
            gc.collect()
            gc.disable()
            try:
                for _ in range(self.BURSTS):
                    plain_times.append(self._burst(plain, self.BURST_OPS))
                    journaled_times.append(
                        self._burst(journaled, self.BURST_OPS))
            finally:
                gc.enable()
            return min(journaled_times) / min(plain_times)

    def test_journal_append_overhead_within_budget(self, tmp_path):
        ratios = []
        for attempt in range(self.ATTEMPTS):
            ratio = self._measure_ratio(tmp_path, attempt)
            ratios.append(round(ratio, 3))
            if ratio < self.BUDGET:
                return
        pytest.fail(f"journal overhead above {self.BUDGET:.0%} budget in "
                    f"all {self.ATTEMPTS} attempts: ratios={ratios}")
