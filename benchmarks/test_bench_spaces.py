"""Computation spaces: clone cost, commit cost, parallel search.

The spaces subsystem's performance claims:

* **clone** (open + discard of an empty space) is a constant-cost
  hook swap plus two epoch bumps — microseconds, independent of design
  size, which is what makes per-probe spaces affordable;
* **commit** of a K-assign space costs one batched round on the parent
  (the space replay) on top of the speculative rounds already paid;
* **parallel search** over N candidate realizations with fork workers
  beats the sequential in-place generate-and-test ≥2x at 8 workers
  (CI-gated; skipped on boxes with fewer than 4 CPUs where the
  parallelism it measures does not exist).

The ``benchmark`` fixtures feed medians into ``BENCH_PROP.json`` and
the ``0005_spaces-baseline`` CI gate (median:5%).
"""

import multiprocessing
import os
from time import perf_counter

import pytest

from repro.core import (
    EqualityConstraint,
    FunctionPredicate,
    PropagationContext,
    UpperBoundConstraint,
    Variable,
)
from repro.selection import RankedSelector
from repro.spaces import Space, search_realizations
from repro.stem import CellClass, Rect

D = 1.0
A = 10.0
SEARCH_CANDIDATES = 16
HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
CPUS = os.cpu_count() or 1


def build_network(count=32, context=None):
    """``count`` equality pairs under an upper bound — a design whose
    rounds do real propagation work."""
    entries = []
    for index in range(count):
        left = Variable(name=f"L{index}", context=context)
        right = Variable(name=f"R{index}", context=context)
        EqualityConstraint(left, right)
        UpperBoundConstraint(left, 1_000_000)
        entries.append(left)
    return entries


def build_candidate_tree(count=SEARCH_CANDIDATES, *, work_cost_us=2_000):
    """A generic with ``count`` concrete realizations whose acceptance
    test charges ``work_cost_us`` of propagation work per probe.

    Real candidate tests run whole constraint networks; CI boxes are
    too fast for tiny ones to show parallelism, so the tested delay
    variable carries a calibrated busy-wait predicate standing in for
    the fan-out of a production design.
    """
    generic = CellClass("GEN", is_generic=True)
    generic.define_signal("x", "in")
    generic.define_signal("y", "out")
    generic.declare_delay("x", "y", estimate=1 * D)
    generic.set_bounding_box(Rect.of_extent(A, 1.0))
    for index in range(count):
        leaf = generic.subclass(f"GEN.C{index}")
        leaf.delay_var("x", "y").set((1 + index % 7) * D)
        leaf.set_bounding_box(Rect.of_extent((1 + index % 5) * A, 1.0))

    top = CellClass("TOP")
    instance = generic.instantiate(top, "gen")
    delay_var = instance.delay_var("x", "y")
    UpperBoundConstraint(delay_var, 6 * D)

    seconds = work_cost_us / 1e6

    def burn(_value):
        deadline = perf_counter() + seconds
        while perf_counter() < deadline:
            pass
        return True

    if seconds > 0:
        FunctionPredicate(delay_var, fn=burn, label="busy-work")
    return instance


class TestSpaceCosts:
    def test_clone_discard_cost(self, benchmark):
        """Open + discard of an empty space over a 32-motif design."""
        context = PropagationContext()
        build_network(context=context)

        def clone():
            with Space(context):
                pass

        benchmark(clone)

    def test_commit_cost(self, benchmark):
        """8 speculative assigns merged into the parent as one batch."""
        context = PropagationContext()
        entries = build_network(context=context)
        hot = entries[:8]
        toggle = [0]

        def speculate_and_commit():
            toggle[0] ^= 1
            with Space(context) as space:
                for index, variable in enumerate(hot):
                    space.assign(variable, index + toggle[0])
                space.commit()

        benchmark(speculate_and_commit)

    def test_discard_cost_after_writes(self, benchmark):
        """Rollback cost of a space that touched 8 variables."""
        context = PropagationContext()
        entries = build_network(context=context)
        hot = entries[:8]

        def speculate_and_discard():
            with Space(context) as space:
                for index, variable in enumerate(hot):
                    space.assign(variable, index)

        benchmark(speculate_and_discard)


class TestSearchWallClock:
    def test_sequential_search_baseline(self, benchmark):
        instance = build_candidate_tree(work_cost_us=200)
        benchmark(lambda: RankedSelector().rank(instance))

    def test_space_search_serial(self, benchmark):
        instance = build_candidate_tree(work_cost_us=200)
        benchmark(lambda: search_realizations(instance, workers=1))


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
@pytest.mark.skipif(CPUS < 4, reason=f"parallel speedup needs >=4 CPUs, "
                                     f"have {CPUS}")
def test_parallel_search_speedup_over_sequential():
    """Acceptance: 8 fork workers ≥2x over the sequential in-place
    generate-and-test on a 16-candidate search."""
    instance = build_candidate_tree()

    def sequential():
        return RankedSelector().rank(instance)

    def parallel():
        return search_realizations(instance, workers=8, backend="fork")

    reference = sequential()
    result = parallel()
    assert [entry.cell.name for entry in result.ranking] \
        == [entry.cell.name for entry in reference]

    best_seq = min(_timed(sequential) for _ in range(3))
    best_par = min(_timed(parallel) for _ in range(3))
    speedup = best_seq / best_par
    assert speedup >= 2.0, (
        f"parallel search speedup {speedup:.2f}x < 2x "
        f"(sequential {best_seq * 1e3:.1f}ms, "
        f"parallel {best_par * 1e3:.1f}ms)")


def _timed(fn):
    t0 = perf_counter()
    fn()
    return perf_counter() - t0


@pytest.mark.skipif(not HAVE_FORK, reason="fork start method unavailable")
def test_parallel_search_matches_sequential_cheaply():
    """Even where the speedup gate is skipped (1-CPU CI boxes), the
    fork path itself must work and agree with the sequential result."""
    instance = build_candidate_tree(work_cost_us=0)
    reference = RankedSelector().rank(instance)
    result = search_realizations(instance, workers=2, backend="fork")
    assert [entry.cell.name for entry in result.ranking] \
        == [entry.cell.name for entry in reference]
