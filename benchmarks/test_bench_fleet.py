"""Fleet routing costs: routed vs direct, and tail latency under load.

Three numbers bound what :mod:`repro.fleet` adds to the session server:

* **routed overhead** — a warm-path ``assign-many`` batch through the
  router (worker lookup + proxy hop) vs the same batch against a lone
  server, recorded for both replication modes.  With timer-driven
  (``async``) replication the router forwards request and response
  bytes verbatim (id splice only), so the tax is one proxy hop; the
  budget gate holds it ≤25% over the direct median.  ``sync``
  replication deliberately adds a ship-before-ack round-trip to the
  follower — recorded, not gated, exactly like ``fsync="always"`` in
  the journal benchmarks.
* **p99 latency under fan-in** — :func:`tools.loadgen.run_load` drives
  16 concurrent retrying clients through the router; the 99th
  percentile assign latency is gated absolutely so a scheduling
  regression in the router's per-session locks cannot hide in the
  median.

All land in ``BENCH_PROP.json`` for the perf trajectory.
"""

import gc
import importlib.util
import os
import time

import pytest

from repro.fleet.runner import LocalFleet, ServerThread

_LOADGEN = os.path.join(os.path.dirname(__file__), os.pardir,
                        "tools", "loadgen.py")


def load_loadgen():
    spec = importlib.util.spec_from_file_location("loadgen", _LOADGEN)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


#: The warm-path request: one drag round's worth of batched assigns —
#: large enough that the server does real work per frame, the regime
#: the relative overhead budget is meant for.
BATCH = [{"var": "v:x", "value": value} for value in range(128)]


def warm_batch_session(client, name="bench"):
    handle = client.session(name)
    handle.make_var("x", 0)
    # warm the path: connection, session lock, rid cache, replica
    client.call("assign-many", session=name, entries=BATCH, just="USER")
    return name


def test_bench_fleet_direct_batch(benchmark, tmp_path):
    """Baseline: the warm batch straight at one server."""
    with ServerThread(str(tmp_path), fsync="never") as thread:
        with thread.client() as client:
            name = warm_batch_session(client)
            benchmark(lambda: client.call("assign-many", session=name,
                                          entries=BATCH, just="USER"))


def test_bench_fleet_routed_batch(benchmark, tmp_path):
    """The same batch through the router, timer-driven replication."""
    with LocalFleet(str(tmp_path), workers=2,
                    replication="async") as fleet:
        with fleet.client() as client:
            name = warm_batch_session(client)
            benchmark(lambda: client.call("assign-many", session=name,
                                          entries=BATCH, just="USER"))


def test_bench_fleet_routed_batch_sync_repl(benchmark, tmp_path):
    """Ship-before-ack replication: pays a follower round-trip."""
    with LocalFleet(str(tmp_path), workers=2,
                    replication="sync") as fleet:
        with fleet.client() as client:
            name = warm_batch_session(client)
            benchmark(lambda: client.call("assign-many", session=name,
                                          entries=BATCH, just="USER"))


def test_bench_fleet_p99_under_concurrency(benchmark, tmp_path):
    """Tail latency with 16 concurrent clients hammering the router."""
    loadgen = load_loadgen()
    budget_ms = 250.0
    with LocalFleet(str(tmp_path), workers=2) as fleet:
        report = {}

        def run():
            report.clear()
            report.update(loadgen.run_load(fleet.host, fleet.port,
                                           clients=16, requests=30))

        benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
        assert not report["errors"]
        benchmark.extra_info.update(
            {key: report[key] for key in ("clients", "total_requests",
                                          "throughput_rps", "p50_ms",
                                          "p90_ms", "p99_ms", "max_ms")})
        assert report["p99_ms"] <= budget_ms, (
            f"p99 assign latency {report['p99_ms']:.1f}ms above the "
            f"{budget_ms:.0f}ms budget under 16 concurrent clients")


class TestRoutedOverheadBudget:
    """The acceptance gate: warm-path routing tax ≤25% over direct.

    Same discipline as ``TestJournalOverheadBudget``: interleaved
    bursts, min-of-bursts per variant (noise only inflates), and a few
    whole-comparison retries — the budget claim holds on the best
    attempt.
    """

    BURSTS = 10
    BURST_OPS = 25
    BUDGET = 1.25
    ATTEMPTS = 4

    @staticmethod
    def _burst(client, name, ops):
        start = time.perf_counter()
        for _ in range(ops):
            client.call("assign-many", session=name, entries=BATCH,
                        just="USER")
        return time.perf_counter() - start

    def _measure_ratio(self, tmp_path, attempt):
        direct_root = str(tmp_path / f"direct{attempt}")
        fleet_root = str(tmp_path / f"fleet{attempt}")
        with ServerThread(direct_root, fsync="never") as thread, \
                LocalFleet(fleet_root, workers=2,
                           replication="async") as fleet:
            with thread.client() as direct, fleet.client() as routed:
                warm_batch_session(direct)
                warm_batch_session(routed)
                direct_times, routed_times = [], []
                gc.collect()
                gc.disable()
                try:
                    for _ in range(self.BURSTS):
                        direct_times.append(
                            self._burst(direct, "bench", self.BURST_OPS))
                        routed_times.append(
                            self._burst(routed, "bench", self.BURST_OPS))
                finally:
                    gc.enable()
                return min(routed_times) / min(direct_times)

    def test_routed_overhead_within_budget(self, tmp_path):
        ratios = []
        for attempt in range(self.ATTEMPTS):
            ratio = self._measure_ratio(tmp_path, attempt)
            ratios.append(round(ratio, 3))
            if ratio < self.BUDGET:
                return
        pytest.fail(f"routed warm-path overhead above {self.BUDGET:.0%} "
                    f"budget in all {self.ATTEMPTS} attempts: "
                    f"ratios={ratios}")
