"""E11 (Figs. 7.2-7.5): incremental signal type inference over a datapath.

One typed source drives a bus of pass-through stages; typing constraints
infer the data type of every stage's signals from connections alone, and
the least-abstract-wins rule keeps refinement monotone.  Benchmarks
measure wiring with inference at several datapath depths.
"""

import pytest

from repro.core import reset_default_context
from repro.stem import CellClass
from repro.stem.types import BCD_SIGNAL, DIGITAL, INTEGER_SIGNAL, TTL


def build_datapath(stages, typed=True):
    """src -> stage0 -> stage1 -> ... inside TOP; returns stage classes."""
    top = CellClass("TOP")
    kwargs = {}
    if typed:
        kwargs = {"data_type": INTEGER_SIGNAL, "electrical_type": DIGITAL}
    top.define_signal("src", "in", bit_width=8, **kwargs)

    stage_classes = []
    instances = []
    for i in range(stages):
        stage = CellClass(f"STAGE{i}")
        stage.define_signal("d", "in")
        stage.define_signal("q", "out")
        # internal wire joining d to q: the typing path *through* the cell
        wire = stage.add_net("w")
        wire.connect_io("d")
        wire.connect_io("q")
        stage_classes.append(stage)
        instances.append(stage.instantiate(top, f"s{i}"))

    net = top.add_net("n0")
    ok = net.connect_io("src")
    previous = instances[0]
    ok = net.connect(previous, "d") and ok
    for i in range(1, stages):
        net = top.add_net(f"n{i}")
        ok = net.connect(previous, "q") and ok
        ok = net.connect(instances[i], "d") and ok
        previous = instances[i]
    return top, stage_classes, instances, ok


class TestTypeInference:
    def test_types_inferred_down_the_datapath(self):
        top, stages, instances, ok = build_datapath(6)
        assert ok
        last = stages[-1]
        assert last.signal("d").data_type_var.value is INTEGER_SIGNAL
        assert last.signal("d").electrical_type_var.value is DIGITAL
        assert last.signal("d").bit_width_var.value == 8

    def test_inference_needs_internal_structure(self):
        """Without internal connectivity, inference stops at the input."""
        top = CellClass("TOP_OPAQUE")
        top.define_signal("src", "in", data_type=INTEGER_SIGNAL)
        opaque = CellClass("OPAQUE")
        opaque.define_signal("d", "in")
        opaque.define_signal("q", "out")
        instance = opaque.instantiate(top, "o")
        net = top.add_net("n")
        assert net.connect_io("src") and net.connect(instance, "d")
        assert opaque.signal("d").data_type_var.value is INTEGER_SIGNAL
        assert opaque.signal("q").data_type_var.value is None

    def test_later_refinement_reaches_everything(self):
        top, stages, instances, ok = build_datapath(4)
        assert stages[-1].signal("d").data_type_var.set(BCD_SIGNAL)
        assert stages[0].signal("d").data_type_var.value is BCD_SIGNAL

    def test_refinement_to_leaf_electrical_type(self):
        top, stages, instances, ok = build_datapath(4)
        assert stages[0].signal("d").electrical_type_var.set(TTL)
        assert stages[-1].signal("d").electrical_type_var.value is TTL


@pytest.mark.parametrize("stages", [4, 16, 48])
def test_bench_wire_datapath(benchmark, stages):
    def wire():
        reset_default_context()
        top, stage_classes, instances, ok = build_datapath(stages)
        assert ok
        return stage_classes

    stage_classes = benchmark(wire)
    assert (stage_classes[-1].signal("d").data_type_var.value
            is INTEGER_SIGNAL)
