"""E1 (Fig. 4.5): propagation through the equality + maximum network.

Reproduces the thesis's worked propagation example and measures the cost
of one externally triggered propagation round through both constraints.
"""

import itertools

import pytest

from repro.core import EqualityConstraint, UniMaximumConstraint, Variable


def build_network():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


def test_fig_4_5_result():
    """The paper's figure: V1 := 9 drives V2 and V4 to 9."""
    v1, v2, v3, v4 = build_network()
    assert v1.set(9)
    assert (v1.value, v2.value, v3.value, v4.value) == (9, 9, 5, 9)


def test_bench_simple_propagation(benchmark):
    v1, v2, v3, v4 = build_network()
    values = itertools.cycle([9, 8])

    def assign():
        assert v1.set(next(values))

    benchmark(assign)
    assert v2.value == v1.value
    assert v4.value == max(v2.value, v3.value)
