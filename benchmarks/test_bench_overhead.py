"""Observability and hardening overhead on the Fig. 4.5 microbenchmark.

Three variants of the same externally triggered round: no observer (the
default everyone pays for — must stay within noise of PR 1's plain
engine), a metrics-only observer (the cheap production configuration),
and the full instrument set (metrics + spans + profiler, the debugging
configuration).  Comparing the three medians in ``BENCH_PROP.json``
quantifies the cost of each instrument layer.

Two more variants gate the robustness layer: the watchdog *unarmed*
(``round_budget`` is ``None`` — the default; together with the
uninstalled fault hooks this must cost nothing, and CI holds it to a 5%
median gate against the plain round) and the watchdog *armed* with a
generous budget (the per-step counter plus the every-32-steps clock
sample — the price of running with a liveness backstop).
"""

import itertools

import pytest

from repro.core import (
    EqualityConstraint,
    RoundBudget,
    UniMaximumConstraint,
    Variable,
)
from repro.obs import Observer


def build_network():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


def _bench_round(benchmark, v1):
    values = itertools.cycle([9, 8])

    def assign():
        assert v1.set(next(values))

    benchmark(assign)


def test_bench_no_observer(benchmark):
    v1, *_ = build_network()
    _bench_round(benchmark, v1)


def test_bench_metrics_only_observer(benchmark, context):
    v1, *_ = build_network()
    with Observer.metrics_only(context):
        _bench_round(benchmark, v1)


def test_bench_full_observer(benchmark, context):
    v1, *_ = build_network()
    with Observer.full(context):
        _bench_round(benchmark, v1)


def test_bench_watchdog_unarmed(benchmark, context):
    assert context.round_budget is None  # the default everyone runs with
    v1, *_ = build_network()
    _bench_round(benchmark, v1)


def test_bench_watchdog_armed(benchmark, context):
    context.round_budget = RoundBudget(max_steps=1 << 20, max_seconds=60.0)
    v1, *_ = build_network()
    _bench_round(benchmark, v1)


def test_observer_counts_match_stats(context):
    """Sanity: the registry mirrors the engine's own counters."""
    v1, *_ = build_network()
    context.stats.reset()
    with Observer.metrics_only(context) as observer:
        assert v1.set(9)
        assert v1.set(8)
    metrics = observer.metrics
    assert metrics.counter("engine.activations.total").value \
        == context.stats.constraint_activations
    assert metrics.counter("engine.inference_runs").value \
        == context.stats.inference_runs
    assert metrics.counter("engine.rounds.assign").value == 2
