"""Quickstart: constraint networks, propagation, violations, dependencies.

Reproduces the kernel walkthrough of thesis chapter 4:

* the Fig. 4.5 network (an equality and a maximum constraint) and the
  effect of assigning V1 := 9;
* the Fig. 4.9 cyclic network, whose unsatisfiable loop is caught by the
  one-value-change rule and rolled back;
* dependency analysis (antecedents / consequences) and the textual
  constraint editor.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ConstraintEditor,
    EqualityConstraint,
    FormulaConstraint,
    UniMaximumConstraint,
    Variable,
    default_context,
)


def fig_4_5():
    print("=== Fig. 4.5: propagation through a simple network ===")
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    print(f"before: V1={v1.value} V2={v2.value} V3={v3.value} V4={v4.value}")

    ok = v1.set(9)
    print(f"set V1 := 9 -> ok={ok}")
    print(f"after:  V1={v1.value} V2={v2.value} V3={v3.value} V4={v4.value}")
    assert (v2.value, v4.value) == (9, 9)

    print("\nantecedents of V4 (who is responsible for its value):")
    for obj in sorted(v4.antecedents(), key=repr):
        print(f"  {obj!r}")

    print("\nconstraint editor focused on V4:")
    print(ConstraintEditor(v4).show())
    return v1


def fig_4_9():
    print("\n=== Fig. 4.9: a cyclic, unsatisfiable network ===")
    v1 = Variable(name="V1")
    v2 = Variable(name="V2")
    v3 = Variable(name="V3")
    FormulaConstraint(v2, [v1], lambda x: x + 1, label="+1")
    FormulaConstraint(v3, [v2], lambda x: x + 3, label="+3")
    FormulaConstraint(v1, [v3], lambda x: x + 2, label="+2")

    ok = v1.set(10)
    print(f"set V1 := 10 -> ok={ok}  (violation detected, state restored)")
    print(f"V1={v1.value} V2={v2.value} V3={v3.value}")
    record = default_context().handler.last
    print(f"violation report: {record}")
    assert not ok and v1.value is None


def main():
    fig_4_5()
    fig_4_9()
    stats = default_context().stats
    print(f"\npropagation statistics: {stats}")


if __name__ == "__main__":
    main()
