"""Module compilation: a 6-bit adder from 2-bit slices (Fig. 6.2 style).

A GraphCompiler places a 2-bit adder slice, repeats it (Fig. 6.2's
"repeat for N times"), and compiles the structure into a new cell:
column/row sizing, placement transforms, bounding-box stretching, and
automatic connection of all butting io-pins (the carry chain).  Compiler
views expose each subcell's box and side-sorted pins to the routines.

Run:  python examples/adder_compiler.py
"""

from repro.core import default_context
from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import GraphCompiler


def build_slice():
    """A 2-bit adder slice with a left-to-right carry chain."""
    cell = CellClass("ADD2_SLICE")
    cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    cell.define_signal("a", "in", bit_width=2, pins=[PinSpec("bottom", 0.25)])
    cell.define_signal("b", "in", bit_width=2, pins=[PinSpec("bottom", 0.75)])
    cell.define_signal("sum", "out", bit_width=2, pins=[PinSpec("top", 0.5)])
    cell.set_bounding_box(Rect.of_extent(8.0, 10.0))
    return cell


def main():
    slice_cell = build_slice()
    print(f"slice: {slice_cell.name}, box {slice_cell.bounding_box()}")

    compiler = GraphCompiler()
    compiler.place(0, 0, slice_cell, name="slice0")
    compiler.repeat_columns(0, 0, 3)  # the slice appears 3 times -> 6 bits

    adder6 = CellClass("ADDER6")
    instances = compiler.compile_into(adder6)
    print(f"\ncompiled {adder6.name}: {len(instances)} subcells")
    for instance in instances:
        print(f"  {instance.name:<12} at {instance.bounding_box()}")

    print(f"\ncarry-chain nets created by pin butting:")
    for name, net in adder6.nets.items():
        ends = ", ".join(f"{owner.name}.{sig}" for owner, sig in net.endpoints)
        print(f"  {name}: {ends}")
    assert len(adder6.nets) == 2  # slice0-slice1, slice1-slice2

    print(f"\ncompiled cell bounding box: {adder6.bounding_box()}")
    assert adder6.bounding_box() == Rect.of_extent(24.0, 10.0)

    # the carry nets carry 1-bit signals; the data pins stay external
    for net in adder6.nets.values():
        signals = sorted(sig for _, sig in net.endpoints)
        assert signals == ["cin", "cout"]

    print("\nconnection control: disallowing slice1's cout withdraws the "
          "pin from butting")
    cut = GraphCompiler()
    cut.place(0, 0, slice_cell, name="s0")
    cut.place(1, 0, slice_cell, name="s1")
    cut.disallow(0, 0, "cout")
    open_adder = CellClass("ADDER4_OPEN")
    cut.compile_into(open_adder)
    print(f"  nets in {open_adder.name}: {len(open_adder.nets)}")
    assert len(open_adder.nets) == 0

    print(f"\npropagation stats: {default_context().stats}")


if __name__ == "__main__":
    main()
