"""Case study: a 4-bit ALU datapath, front to back.

Everything in one flow, the way a designer would actually use the
environment:

1. a *module generator* materialises ripple-carry adders of any width
   from a full-adder slice (compiled structure, carry chain by pin
   butting, delay network from the slice characteristics);
2. the generated 4-bit adder and a handcrafted carry-lookahead cell
   become realizations of a *generic* adder;
3. the ALU datapath instantiates the generic between registers, under
   an overall delay specification — evaluated before the adder choice
   is made;
4. module selection picks per spec: the loose budget admits both (the
   small ripple adder ranks first); the tight budget forces the CLA;
5. the row is compacted, electrically checked, persisted, reloaded,
   and the reloaded design still enforces its constraints.

Run:  python examples/case_study_alu4.py
"""

from repro.checking import check_cell
from repro.core import UpperBoundConstraint, reset_default_context
from repro.selection import ModuleSelector, RankedSelector
from repro.stem import CellClass, ModuleGenerator, PinSpec, Rect
from repro.stem.compaction import compact_row
from repro.stem.compilers import VectorCompiler
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads

NS = 1.0


def build_world():
    library = CellLibrary("alu4")

    # --- the full-adder slice: the only hand-designed leaf -------------
    fa = library.define("FA")
    fa.define_signal("cin", "in", load_capacitance=1e-13,
                     pins=[PinSpec("left", 0.5)])
    fa.define_signal("cout", "out", output_resistance=1e3,
                     max_load_capacitance=5e-13,
                     pins=[PinSpec("right", 0.5)])
    fa.declare_delay("cin", "cout", estimate=2 * NS)
    fa.set_bounding_box(Rect.of_extent(10, 10))

    # --- the generic adder and its realizations -------------------------
    add4 = library.define("ADD4", is_generic=True)
    add4.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    add4.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    add4.declare_delay("cin", "cout", estimate=6 * NS)   # ideal estimate
    add4.set_bounding_box(Rect.of_extent(40, 10))        # ideal area

    def build_ripple(cell, *, bits):
        instances = VectorCompiler(fa, bits).compile_into(cell)
        nin = cell.add_net("nin")
        nin.connect_io("cin"); nin.connect(instances[0], "cin")
        nout = cell.add_net("nout")
        nout.connect(instances[-1], "cout"); nout.connect_io("cout")

    ripple = ModuleGenerator("RIPPLE", build_ripple, library=library,
                             generic=add4)
    ripple4 = ripple.cell_for(bits=4)
    ripple4.build_delay_network()

    cla4 = library.define("CLA4", add4)
    cla4.delay_var("cin", "cout").set(6 * NS)          # fast
    cla4.set_bounding_box(Rect.of_extent(70, 10))      # but big

    # --- the datapath ----------------------------------------------------
    reg = library.define("REG")
    reg.define_signal("d", "in", pins=[PinSpec("left", 0.5)])
    reg.define_signal("q", "out", pins=[PinSpec("right", 0.5)])
    reg.declare_delay("d", "q", estimate=3 * NS)
    reg.set_bounding_box(Rect.of_extent(12, 10))
    return library, fa, add4, ripple4, cla4, reg


def build_datapath(library, add4, reg, *, budget):
    datapath = library.define(f"DATAPATH<= {budget:g}ns")
    datapath.define_signal("in1", "in")
    datapath.define_signal("out1", "out")
    UpperBoundConstraint(datapath.declare_delay("in1", "out1"), budget)

    r_in = reg.instantiate(datapath, "Rin")
    adder = add4.instantiate(datapath, "ADD")
    r_out = reg.instantiate(datapath, "Rout")
    adder.bounding_box_var.set(Rect.of_extent(75, 10))  # roomy placement

    n0 = datapath.add_net("n0"); n0.connect_io("in1"); n0.connect(r_in, "d")
    n1 = datapath.add_net("n1"); n1.connect(r_in, "q")
    n1.connect(adder, "cin")
    n2 = datapath.add_net("n2"); n2.connect(adder, "cout")
    n2.connect(r_out, "d")
    n3 = datapath.add_net("n3"); n3.connect(r_out, "q")
    n3.connect_io("out1")
    datapath.build_delay_network()
    return datapath, adder


def main():
    library, fa, add4, ripple4, cla4, reg = build_world()

    print("=== 1. the generated ripple adder ===")
    print(f"{ripple4.name}: {len(ripple4.subcells)} slices, "
          f"box {ripple4.bounding_box()!r}")
    ripple_delay = ripple4.delay_value('cin', 'cout')
    print(f"characteristic delay from the internal network: "
          f"{ripple_delay:.2f} ns (4 x 2ns + loading)")
    assert len(ripple4.subcells) == 4

    print("\n=== 2. early evaluation with the generic's estimates ===")
    datapath, adder = build_datapath(library, add4, reg, budget=18 * NS)
    print(f"datapath delay (3 + ~6 + 3): "
          f"{datapath.delay_var('in1', 'out1').value:.1f} ns  (spec 18)")

    print("\n=== 3. module selection under the loose budget ===")
    ranked = RankedSelector(weights={"area": 1.0, "delay": 0.5})
    for entry in ranked.rank(adder):
        print(f"  {entry.cell.name:<16} score={entry.score:.2f}  "
              f"delay={entry.metrics['delay']:.2f}  "
              f"area={entry.metrics['area']:.0f}")
    winner = ranked.best(adder)
    print(f"winner on area: {winner.name}")
    assert winner is ripple4

    print("\n=== 4. module selection under a tight budget ===")
    tight, tight_adder = build_datapath(library, add4, reg, budget=13 * NS)
    valid = ModuleSelector().select_realizations_for(tight_adder)
    print(f"valid under 13 ns: {[c.name for c in valid]}")
    assert valid == [cla4]  # the ~8.2 ns ripple chain no longer fits

    print("\n=== 5. physical checks ===")
    positions = compact_row(datapath.subcells, spacing=2.0)
    print("compacted row x-origins:",
          [f"{positions[i]:.0f}" for i in datapath.subcells])
    findings = check_cell(ripple4)
    print(f"ERC on the generated adder: "
          f"{[f.rule for f in findings] or 'clean'}")
    assert findings == []

    print("\n=== 6. persist, reload, and the constraints still bite ===")
    text = dumps(library)
    restored = loads(text, context=reset_default_context())
    fa2 = restored.cell("FA")
    ripple2 = restored.cell("RIPPLE[bits=4]")
    ripple2.build_delay_network()
    print(f"reloaded {ripple2.name} delay: "
          f"{ripple2.delay_value('cin', 'cout'):.2f} ns")
    UpperBoundConstraint(ripple2.delay_var("cin", "cout"), 9 * NS)
    ok = fa2.delay_var("cin", "cout").calculate(3 * NS)
    print(f"slice slips to 3 ns -> accepted: {ok} "
          f"(4 x 3ns busts the 9 ns cap)")
    assert not ok


if __name__ == "__main__":
    main()
