"""Least-commitment delay design: the ADDER/ACCUMULATOR scenario (Fig. 5.2).

The designer specifies an 8-bit ADDER with a "120ns or less" delay and an
ACCUMULATOR (REGISTER cascaded into the ADDER) with a "160ns or less"
overall delay, seeding the subcells with delay *estimates* before their
internals exist.  Characteristics propagate up the design hierarchy as
they become available:

* with the initial estimates (REGISTER 60ns, ADDER 100ns) the
  accumulator meets its spec;
* when the adder's real characteristic turns out to be 110ns (after
  loading adjustment), the 160ns accumulator constraint is violated —
  detected immediately, at the adder level, without re-running any
  global analysis.

Run:  python examples/accumulator_delay.py
"""

from repro.core import UpperBoundConstraint, default_context
from repro.stem import CellClass

NS = 1e-9


def build_adder():
    adder = CellClass("ADDER")
    adder.define_signal("a", "in", load_capacitance=1.0)
    adder.define_signal("b", "in", load_capacitance=1.0)
    adder.define_signal("sum", "out", output_resistance=2.0)
    delay = adder.declare_delay("a", "sum", estimate=100 * NS)
    UpperBoundConstraint(delay, 120 * NS)  # the class-level delay spec
    return adder


def build_register():
    register = CellClass("REGISTER")
    register.define_signal("d", "in", load_capacitance=1.0)
    register.define_signal("q", "out", output_resistance=1.0)
    register.declare_delay("d", "q", estimate=60 * NS)
    return register


def build_accumulator(adder, register):
    acc = CellClass("ACCUMULATOR")
    acc.define_signal("in1", "in")
    acc.define_signal("out1", "out")
    spec = acc.declare_delay("in1", "out1")
    UpperBoundConstraint(spec, 160 * NS)

    reg = register.instantiate(acc, "R1")
    add = adder.instantiate(acc, "A1")
    n_in = acc.add_net("n_in")
    n_in.connect_io("in1"); n_in.connect(reg, "d")
    n_mid = acc.add_net("n_mid")
    n_mid.connect(reg, "q"); n_mid.connect(add, "a")
    n_out = acc.add_net("n_out")
    n_out.connect(add, "sum"); n_out.connect_io("out1")
    return acc, reg, add


def main():
    adder = build_adder()
    register = build_register()
    acc, reg, add = build_accumulator(adder, register)

    total = acc.delay_value("in1", "out1")
    print(f"ACCUMULATOR delay with estimates: {total / NS:.1f} ns "
          f"(REGISTER {reg.delay_var('d', 'q').value / NS:.1f} + "
          f"ADDER {add.delay_var('a', 'sum').value / NS:.1f})")
    assert total <= 160 * NS

    print("\nthe ADDER's measured characteristic comes in at 110 ns ...")
    ok = adder.delay_var("a", "sum").calculate(110 * NS)
    print(f"  accepted: {ok}")
    print(f"  accumulator delay now: "
          f"{acc.delay_var('in1', 'out1').value / NS:.1f} ns (unchanged — "
          f"the violating update was rolled back)")
    print(f"  violation: {default_context().handler.last}")
    assert not ok

    print("\nthe REGISTER improves to 40 ns, making room ...")
    assert register.delay_var("d", "q").calculate(40 * NS)
    print(f"  accumulator delay: "
          f"{acc.delay_var('in1', 'out1').value / NS:.1f} ns")

    print("now the 110 ns adder fits:")
    assert adder.delay_var("a", "sum").calculate(110 * NS)
    print(f"  accumulator delay: "
          f"{acc.delay_var('in1', 'out1').value / NS:.1f} ns  (spec 160 ns)")


if __name__ == "__main__":
    main()
