"""Module selection: the ALU example of thesis Fig. 8.1.

A generic 8-bit adder ADD8 has two realizations: ADD8.RC (ripple-carry —
small but slow) and ADD8.CS (carry-select — fast but 2.2x the area).
An ALU cascades a logic unit LU8 into an ADD8 instance.  Given two
different design constraint sets:

* a tight area specification selects ADD8.RC;
* a tight delay specification selects ADD8.CS.

Module selection is generate-and-test over the class hierarchy, with
constraint propagation (tentative ``can_be_set_to`` probes) as the
validity test, so the answer depends on every constraint in the
instance's context.

Run:  python examples/alu_module_selection.py
"""

from repro.core import UpperBoundConstraint
from repro.selection import ModuleSelector
from repro.stem import CellClass, Rect

D = 1.0    # delay unit of Fig. 8.1
A = 10.0   # area unit of Fig. 8.1


def build_adder_family():
    add8 = CellClass("ADD8", is_generic=True)
    add8.define_signal("x", "in")
    add8.define_signal("y", "out")
    # generic "ideal" estimates: delay of the fastest subclass, area of
    # the smallest (enables search-tree pruning, section 8.2)
    add8.declare_delay("x", "y", estimate=5 * D)
    add8.set_bounding_box(Rect.of_extent(A, 1.0))

    rc = add8.subclass("ADD8.RC")
    rc.delay_var("x", "y").set(8 * D)
    rc.set_bounding_box(Rect.of_extent(A, 1.0))

    cs = add8.subclass("ADD8.CS")
    cs.delay_var("x", "y").set(5 * D)
    cs.set_bounding_box(Rect.of_extent(2.2 * A, 1.0))
    return add8, rc, cs


def build_alu(add8, *, area_budget, delay_budget):
    """ALU = LU8 -> ADD8, delay spec on the whole, area spec on the adder."""
    alu = CellClass(f"ALU(area<={area_budget / A:.1f}A, "
                    f"delay<={delay_budget / D:.0f}D)")
    alu.define_signal("in1", "in")
    alu.define_signal("out1", "out")
    alu.declare_delay("in1", "out1")
    UpperBoundConstraint(alu.delay_var("in1", "out1"), delay_budget)

    lu8 = CellClass(f"LU8@{id(alu):x}")
    lu8.define_signal("a", "in")
    lu8.define_signal("z", "out")
    lu8.declare_delay("a", "z", estimate=3 * D)
    lu8.set_bounding_box(Rect.of_extent(2 * A, 1.0))

    lu = lu8.instantiate(alu, "lu")
    add = add8.instantiate(alu, "add")
    n0 = alu.add_net("n0"); n0.connect_io("in1"); n0.connect(lu, "a")
    n1 = alu.add_net("n1"); n1.connect(lu, "z"); n1.connect(add, "x")
    n2 = alu.add_net("n2"); n2.connect(add, "y"); n2.connect_io("out1")
    add.bounding_box_var.set(Rect.of_extent(area_budget, 1.0))
    alu.build_delay_network()
    return alu, add


def run_case(add8, label, *, area_budget, delay_budget):
    alu, instance = build_alu(add8, area_budget=area_budget,
                              delay_budget=delay_budget)
    selector = ModuleSelector(priorities=("bBox", "signals", "delays"))
    realizations = selector.select_realizations_for(instance)
    names = [cell.name for cell in realizations] or ["(none)"]
    print(f"{label}: valid realizations of {instance.name!r} -> "
          f"{', '.join(names)}")
    print(f"   {selector.stats}")
    return realizations


def main():
    add8, rc, cs = build_adder_family()
    print("class hierarchy:", add8.name, "->",
          [c.name for c in add8.subclasses])

    tight_area = run_case(add8, "tight area  (<=1.0A, <=11D)",
                          area_budget=1.0 * A, delay_budget=11 * D)
    assert tight_area == [rc]

    tight_delay = run_case(add8, "tight delay (<=4.2A, <= 8D)",
                           area_budget=4.2 * A, delay_budget=8 * D)
    assert tight_delay == [cs]

    both_loose = run_case(add8, "loose specs (<=4.2A, <=11D)",
                          area_budget=4.2 * A, delay_budget=11 * D)
    assert set(both_loose) == {rc, cs}

    neither = run_case(add8, "impossible  (<=1.0A, <= 8D)",
                       area_budget=1.0 * A, delay_budget=8 * D)
    assert neither == []


if __name__ == "__main__":
    main()
