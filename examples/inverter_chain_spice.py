"""External-tool integration: SPICE on three cascaded inverters (Fig. 6.3).

The thesis's SPICE interface has three parts: SpiceNet (net-list
extraction and correspondence), SpiceSimulation (deck editing, running
the external process, filing results back in) and SpicePlot (waveform
measurements).  Here the "external SPICE process" is the internal MNA
transient simulator, driven through the same deck-text pipeline.

The scenario is Fig. 6.3's cell of three cascaded inverters: extract its
net-list, pulse the input, measure stage delays, then edit the design
and watch the simulation windows go *outdated*.

Run:  python examples/inverter_chain_spice.py
"""

from repro.spice import DC, Pulse, SpicePlot, SpiceSimulation, inverter
from repro.stem import CellClass

NS = 1e-9


def build_chain(stages=3):
    inv = inverter(c_load=10e-12, r_on_n=1e3, r_on_p=2e3, v_t=1.0)
    chain = CellClass("InvertingBuffer")
    chain.define_signal("a", "in")
    chain.define_signal("y", "out")
    chain.define_signal("vdd", "inout")
    chain.define_signal("gnd", "inout")
    vdd = chain.add_net("vdd"); vdd.connect_io("vdd")
    gnd = chain.add_net("gnd"); gnd.connect_io("gnd")
    current = chain.add_net("nin"); current.connect_io("a")
    for i in range(stages):
        stage = inv.instantiate(chain, f"INV{i}")
        current.connect(stage, "a")
        vdd.connect(stage, "vdd")
        gnd.connect(stage, "gnd")
        current = chain.add_net(f"n{i + 1}")
        current.connect(stage, "y")
    current.connect_io("y")
    return chain


def main():
    chain = build_chain(3)
    simulation = SpiceSimulation(chain, title="three cascaded inverters")

    print("=== extracted net-list (SpiceNet) ===")
    print(simulation.netlist_view.text)

    simulation.add_source("vdd", DC(5.0))
    simulation.add_source("nin", Pulse(0.0, 5.0, td=150 * NS, tr=0.1 * NS))
    simulation.set_tran(0.2 * NS, 500 * NS)

    print("\n=== deck filed out to the (stand-in) external process ===")
    print("\n".join(simulation.deck_text().splitlines()[-5:]))

    simulation.run()
    plot = SpicePlot(simulation)

    print("\n=== point-to-point measurements (SpicePlot) ===")
    edge = plot.crossing_time("nin", 2.5, rising=True)
    print(f"input edge at {edge / NS:.2f} ns")
    for net in ("n1", "n2", "n3"):
        delay = plot.delay_between("nin", net, 2.5, after=edge - NS)
        print(f"  nin -> {net}: {delay / NS:6.2f} ns   "
              f"(final value {plot.final_value(net):4.2f} V)")

    d1 = plot.delay_between("nin", "n1", 2.5, after=edge - NS)
    d3 = plot.delay_between("nin", "n3", 2.5, after=edge - NS)
    assert d3 > 2 * d1, "three stages must accumulate delay"

    print("\n=== consistency: editing the cell outdates the windows ===")
    chain.changed("structure")
    print(f"simulation outdated: {simulation.outdated}")
    print(f"plot outdated:       {plot.outdated}")
    assert simulation.outdated


if __name__ == "__main__":
    main()
