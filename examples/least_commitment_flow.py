"""The full least-commitment design flow, end to end.

The thesis's central motivation (chapter 1) in one runnable scenario:

1. a generic adder family with *ideal* estimates stands in for an
   undecided implementation;
2. a datapath is assembled and evaluated against its specs before any
   realization exists;
3. bottom-up characteristics arrive and refine the implicit
   specifications of the other components;
4. interval analysis quantifies the slack left for the undecided part;
5. module selection — validity by tentative constraint propagation,
   merit by weighted ranking — picks the realization, which is committed
   and re-verified.

Run:  python examples/least_commitment_flow.py
"""

from repro.core import (
    IntervalSolver,
    UpperBoundConstraint,
    variable_consequences,
)
from repro.selection import ModuleSelector, RankedSelector
from repro.stem import CellClass, Rect
from repro.stem.library import CellLibrary

NS = 1.0


def build_world():
    library = CellLibrary("flow")

    add = library.define("ADD", is_generic=True,
                         documentation="generic 8-bit adder")
    add.define_signal("x", "in")
    add.define_signal("y", "out")
    add.declare_delay("x", "y", estimate=50 * NS)
    add.set_bounding_box(Rect.of_extent(10, 10))

    rc = library.define("ADD.RC", add)
    rc.delay_var("x", "y").set(80 * NS)
    rc.set_bounding_box(Rect.of_extent(10, 10))
    cs = library.define("ADD.CS", add)
    cs.delay_var("x", "y").set(50 * NS)
    cs.set_bounding_box(Rect.of_extent(22, 10))

    reg = library.define("REG")
    reg.define_signal("d", "in")
    reg.define_signal("q", "out")
    reg.declare_delay("d", "q", estimate=60 * NS)

    datapath = library.define("DATAPATH")
    datapath.define_signal("in1", "in")
    datapath.define_signal("out1", "out")
    UpperBoundConstraint(datapath.declare_delay("in1", "out1"), 160 * NS)

    r = reg.instantiate(datapath, "R1")
    a = add.instantiate(datapath, "A1")
    n0 = datapath.add_net("n0"); n0.connect_io("in1"); n0.connect(r, "d")
    n1 = datapath.add_net("n1"); n1.connect(r, "q"); n1.connect(a, "x")
    n2 = datapath.add_net("n2"); n2.connect(a, "y"); n2.connect_io("out1")
    a.bounding_box_var.set(Rect.of_extent(25, 10))
    datapath.build_delay_network()
    return library, datapath, r, a


def main():
    library, datapath, r, a = build_world()

    print("=== 1. early evaluation on estimates ===")
    print(f"datapath delay (60 reg + 50 ideal adder): "
          f"{datapath.delay_var('in1', 'out1').value:.0f} ns  (spec 160)")

    print("\n=== 2. the register's measured characteristic arrives: 90 ns ===")
    assert library.cell("REG").delay_var("d", "q").calculate(90 * NS)
    print(f"datapath delay now: "
          f"{datapath.delay_var('in1', 'out1').value:.0f} ns")

    print("\n=== 3. slack analysis for the undecided adder ===")
    adder_delay = a.delay_var("x", "y")
    saved = adder_delay.value
    dependents = variable_consequences(adder_delay)
    adder_delay.reset()
    for dependent in dependents:
        dependent.reset()
    solver = IntervalSolver([datapath.delay_var("in1", "out1")])
    solver.solve()
    slack = solver.interval_of(adder_delay).high
    print(f"the adder may use at most {slack:.0f} ns of the budget")
    adder_delay.calculate(saved)

    print("\n=== 4. module selection in context ===")
    valid = ModuleSelector().select_realizations_for(a)
    print(f"valid realizations: {[c.name for c in valid]}")
    ranked = RankedSelector(weights={"delay": 2.0, "area": 1.0})
    for entry in ranked.rank(a):
        print(f"  {entry.cell.name:<8} score={entry.score:.2f} "
              f"delay={entry.metrics['delay']:.0f} "
              f"area={entry.metrics['area']:.0f}")
    winner = ranked.best(a)
    print(f"selected: {winner.name}")

    print("\n=== 5. commit and verify ===")
    datapath.remove_cell(a)
    chosen = winner.instantiate(datapath, "A1r")
    datapath.net("n1").connect(chosen, "x")
    datapath.net("n2").connect(chosen, "y")
    final = datapath.delay_value("in1", "out1")
    print(f"final datapath delay: {final:.0f} ns  (spec 160) -> "
          f"{'MET' if final <= 160 * NS else 'VIOLATED'}")
    assert final <= 160 * NS


if __name__ == "__main__":
    main()
