"""Process-corner delay analysis through unmodified constraint networks.

Chapter 7 claims the checking framework is open-ended: new checks come
from new constraint types — and, because constraints manipulate values
through a protocol, from new *value* types too.  A ``Corners`` value
carries slow/typical/fast delays at once; the ordinary delay networks
(sums per path, maximum over paths) propagate all three corners in a
single pass, and the worst case is what specifications check.

The payoff scenario: a design whose *typical* delays meet the spec but
whose *slow-corner* delays do not — caught at the moment the leaf
characteristic arrives, with no corner-specific code anywhere.

Run:  python examples/corner_analysis.py
"""

from repro.checking.corners import Corners, derate
from repro.core import UpperBoundConstraint, default_context
from repro.stem import CellClass

NS = 1.0


def main():
    stage = CellClass("STAGE")
    stage.define_signal("a", "in")
    stage.define_signal("y", "out")
    stage.declare_delay("a", "y", estimate=derate(10 * NS))  # 13/10/7 ns

    pipeline = CellClass("PIPELINE")
    pipeline.define_signal("in1", "in")
    pipeline.define_signal("out1", "out")
    spec = pipeline.declare_delay("in1", "out1")
    UpperBoundConstraint(spec, 30 * NS)  # the worst case must fit 30 ns

    s1 = stage.instantiate(pipeline, "s1")
    s2 = stage.instantiate(pipeline, "s2")
    nin = pipeline.add_net("nin"); nin.connect_io("in1"); nin.connect(s1, "a")
    mid = pipeline.add_net("mid"); mid.connect(s1, "y"); mid.connect(s2, "a")
    nout = pipeline.add_net("nout"); nout.connect(s2, "y")
    nout.connect_io("out1")

    total = pipeline.delay_value("in1", "out1")
    print("two-stage pipeline delay (all corners at once):")
    print(f"  {total!r}")
    print(f"  worst case {total.slow:.0f} ns vs spec 30 ns -> "
          f"{'MET' if total <= 30 * NS else 'VIOLATED'}")
    assert total == derate(20 * NS)

    print("\nthe stage's measured characteristic comes in at 12 ns typical")
    print("  (typical total would be 24 ns <= 30: looks fine...)")
    ok = stage.delay_var("a", "y").calculate(derate(12 * NS))
    print(f"  accepted: {ok}  — the slow corner (2 x 15.6 = 31.2 ns) "
          f"busts the spec")
    assert not ok
    print(f"  violation: {default_context().handler.last}")

    print("\na tighter process (slow derating 1.2x) makes the same "
          "typical figure fit:")
    ok = stage.delay_var("a", "y").calculate(
        derate(12 * NS, slow_factor=1.2))
    total = pipeline.delay_var("in1", "out1").value
    print(f"  accepted: {ok}; pipeline now {total!r} "
          f"(worst {total.slow:.1f} ns)")
    assert ok and total.slow <= 30 * NS


if __name__ == "__main__":
    main()
