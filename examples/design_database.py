"""The design-database side: library, persistence, compaction, ERC.

Shows the environment-management half of the system (chapters 1-3, 6):

* a cell library catalogues the design hierarchy;
* a compiled row is compacted with the constraint-graph compactor
  (the classic layout-constraint algorithm of section 2.1);
* electrical rules check drive strength over the RC net model;
* the whole library round-trips through JSON persistence and the
  reloaded design still enforces its constraints.

Run:  python examples/design_database.py
"""

from repro.checking import check_cell
from repro.core import reset_default_context
from repro.stem import CellClass, PinSpec, Rect, Transform
from repro.stem.compaction import Compactor1D, compact_row
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads


def build_library():
    library = CellLibrary("demo")
    stage = library.define("STAGE")
    stage.define_signal("cin", "in", load_capacitance=1e-12,
                        pins=[PinSpec("left", 0.5)])
    stage.define_signal("cout", "out", output_resistance=1e3,
                        max_load_capacitance=2e-12,
                        pins=[PinSpec("right", 0.5)])
    stage.set_bounding_box(Rect.of_extent(4, 4))

    row = library.define("ROW")
    # place three stages with sloppy gaps, as a designer might
    for i, x in enumerate((0.0, 7.0, 16.0)):
        stage.instantiate(row, f"s{i}", Transform.translation(x, 0.0))
    return library, stage, row


def main():
    library, stage, row = build_library()
    print("=== library catalogue ===")
    print(f"cells: {library.names()}")
    print(f"statistics: {library.statistics()}")

    print("\n=== layout compaction (section 2.1 constraint graphs) ===")
    before = [instance.bounding_box().origin.x for instance in row.subcells]
    positions = compact_row(row.subcells, spacing=1.0)
    print(f"x before: {before}")
    print(f"x after:  {[positions[i] for i in row.subcells]}")

    compactor = Compactor1D()
    compactor.separate("a", "b", 10.0)
    compactor.separate("b", "d", 10.0)
    compactor.separate("a", "c", 1.0)
    compactor.separate("c", "d", 1.0)
    print(f"critical path of a diamond of separations: "
          f"{compactor.critical_path()}")

    print("\n=== electrical rule check ===")
    bus = row.add_net("bus")
    bus.connect(row.subcells[0], "cout")
    for instance in row.subcells:
        bus.connect(instance, "cin")  # 3pF on a 2pF driver
    for finding in check_cell(row):
        print(f"  [{finding.rule}] {finding.detail}")
    assert any(f.rule == "overload" for f in check_cell(row))

    print("\n=== persistence round trip ===")
    text = dumps(library)
    print(f"serialized {len(text)} bytes of JSON")
    restored = loads(text, context=reset_default_context())
    print(f"reloaded cells: {restored.names()}")
    row2 = restored.cell("ROW")
    print(f"reloaded ROW has {len(row2.subcells)} subcells and "
          f"{len(row2.nets)} nets")
    findings = check_cell(row2)
    print(f"ERC findings after reload: {[f.rule for f in findings]}")
    assert any(f.rule == "overload" for f in findings)


if __name__ == "__main__":
    main()
