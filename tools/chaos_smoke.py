"""Chaos smoke test: the whole stack under deterministic network faults.

What the unit suites check in isolation, this drives end to end against
a real server process:

1. start ``repro.cli serve`` as a subprocess,
2. interpose a seeded :class:`StreamFaultProxy` that randomly (but
   reproducibly) drops response frames and resets connections,
3. drive two concurrent retrying clients through the proxy with a
   deterministic workload — every value and the exact journal position
   are asserted afterwards, so a dropped-response retry that applied
   twice (or not at all) cannot hide,
4. open a third session directly, send it a ``checkpoint`` request raw,
   and ``SIGKILL`` the server a few milliseconds later — mid-checkpoint,
5. verify every journal offline with ``session-verify --fingerprint``
   (twice — the digest must be stable),
6. restart the server and assert the sessions recover to the
   fingerprints captured before the kill,
7. send a ``what-if-commit`` batch raw and ``SIGKILL`` the server
   moments later — the recovered session must show the batch fully
   applied or fully absent (one journal frame, so a torn commit cannot
   survive recovery), compared against a twin session that ran the
   identical batch to completion.

Run from the repo root (CI's chaos-smoke job does)::

    PYTHONPATH=src python tools/chaos_smoke.py

``--store sqlite`` / ``--store object`` run the identical gauntlet with
the server's durable state on that backend (CI's store-smoke job does
both) — the kill -9 / recovery invariants are backend-independent.

Exits non-zero with a diagnostic on the first mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.faults import FaultPlan, StreamFaultProxy  # noqa: E402
from repro.session.client import SessionClient  # noqa: E402

ASSIGN_ROUNDS = 12
#: 3 make-var + 1 add-constraint + 2 assigns per round — the exact
#: journal position a fault-free (or exactly-once retried) run ends at.
EXPECTED_POSITION = 4 + 2 * ASSIGN_ROUNDS

#: ``--store`` spec forwarded to every serve/session-verify invocation
#: (``None`` = the default file backend).
STORE: "str | None" = None


def _store_args() -> "list[str]":
    return ["--store", STORE] if STORE else []


def start_server(root: str) -> "tuple[subprocess.Popen, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", root, "--port", "0", "--max-connections", "32",
         "--round-budget-steps", "100000"] + _store_args(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            port = int(line.split("listening on")[1].split()[0]
                       .rsplit(":", 1)[1])
            return proc, port
        if not line or proc.poll() is not None:
            raise RuntimeError(f"server died during startup: {line!r}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("server did not report a port in 30s")


def drive(host: str, port: int, name: str, bias: int,
          results: dict, errors: list) -> None:
    """A retrying client's deterministic workload through the proxy."""
    try:
        client = SessionClient(host, port, timeout=1.0, retries=10,
                               backoff=0.02, retry_seed=bias,
                               client_id=f"chaos-{name}")
        try:
            handle = client.session(name)
            handle.make_var("width")
            handle.make_var("height")
            handle.make_var("area")
            handle.add_constraint("sum", ["v:area", "v:width", "v:height"])
            for step in range(ASSIGN_ROUNDS):
                handle.assign("v:width", step + bias)
                handle.assign("v:height", 2 * step + bias)
            width = ASSIGN_ROUNDS - 1 + bias
            height = 2 * (ASSIGN_ROUNDS - 1) + bias
            checks = {
                "v:width": (handle.value("v:width"), width),
                "v:height": (handle.value("v:height"), height),
                "v:area": (handle.value("v:area"), width + height),
            }
            for address, (got, expected) in checks.items():
                if got != expected:
                    raise AssertionError(
                        f"{name}: {address} = {got!r}, expected {expected}")
            position = handle.fingerprint(stats=False)["position"]
            if position != EXPECTED_POSITION:
                raise AssertionError(
                    f"{name}: position {position} != {EXPECTED_POSITION} — "
                    f"a retried mutation applied twice or was lost")
            if handle.violations():
                raise AssertionError(f"{name}: unexpected violations")
            results[name] = position
        finally:
            client.close()
    except Exception as exc:
        errors.append((name, exc))


def fingerprints(port: int, names: "list[str]") -> "dict[str, dict]":
    with SessionClient("127.0.0.1", port) as client:
        return {name: client.session(name).fingerprint() for name in names}


def offline_fingerprint(root: str, name: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    output = subprocess.check_output(
        [sys.executable, "-m", "repro.cli", "session-verify",
         "--root", root, "--name", name, "--fingerprint"] + _store_args(),
        text=True, env=env, cwd=REPO)
    return json.loads(output)


def kill_mid_checkpoint(proc: subprocess.Popen, port: int,
                        name: str) -> None:
    """Fire a checkpoint request and SIGKILL the server moments later."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5)
    request = json.dumps({"id": 1, "cmd": "checkpoint", "session": name})
    sock.sendall(request.encode() + b"\n")
    time.sleep(0.005)  # let the server get into the checkpoint write
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    sock.close()


WHATIF_ENTRIES = [{"var": "v:left", "value": 70},
                  {"var": "v:right", "value": 90}]


def kill_mid_whatif_commit(proc: subprocess.Popen, port: int,
                           name: str) -> None:
    """Fire a what-if-commit batch and SIGKILL the server moments later."""
    sock = socket.create_connection(("127.0.0.1", port), timeout=5)
    request = json.dumps({"id": 1, "cmd": "what-if-commit",
                          "session": name, "entries": WHATIF_ENTRIES})
    sock.sendall(request.encode() + b"\n")
    time.sleep(0.005)  # let the server get into the commit write
    proc.send_signal(signal.SIGKILL)
    proc.wait(timeout=30)
    sock.close()


def main(argv: "list[str] | None" = None) -> int:
    global STORE
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--store", metavar="BACKEND[:PATH]", default=None,
                        help="storage backend for the server under test "
                             "(file|sqlite|object)")
    STORE = parser.parse_args(argv).store
    if STORE:
        print(f"chaos smoke on --store {STORE}")
    names = ["alice", "bob"]
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as root:
        proc, port = start_server(root)
        plan = FaultPlan(seed=2026)
        plan.drop("s2c", probability=0.06)   # lose responses: forces the
        plan.reset("c2s", probability=0.04)  # rid replay; kill links too
        try:
            with StreamFaultProxy("127.0.0.1", port, plan) as proxy:
                errors: list = []
                results: dict = {}
                threads = [
                    threading.Thread(target=drive,
                                     args=(proxy.host, proxy.port, name,
                                           bias, results, errors))
                    for bias, name in enumerate(names)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                for name, exc in errors:
                    print(f"FAIL: client {name!r} errored: {exc!r}")
                    return 1
                if len(results) != len(names):
                    print(f"FAIL: only {sorted(results)} finished")
                    return 1
            faults = plan.summary()
            print(f"workload survived injected faults: {faults or 'none'}; "
                  f"both sessions at position {EXPECTED_POSITION} "
                  f"(exactly-once)")

            # A third session, killed mid-checkpoint (direct, no proxy).
            with SessionClient("127.0.0.1", port) as client:
                handle = client.session("carol")
                handle.make_var("x", 1)
                handle.assign("v:x", 2)
            before = fingerprints(port, names + ["carol"])
        finally:
            if proc.poll() is None:
                kill_mid_checkpoint(proc, port, "carol")
        print(f"killed server pid={proc.pid} with SIGKILL mid-checkpoint")

        for name in names + ["carol"]:
            first = offline_fingerprint(root, name)
            second = offline_fingerprint(root, name)
            if first != second:
                print(f"FAIL: offline fingerprint of {name!r} is unstable")
                return 1
            expected = before[name]
            if name == "carol":
                # The checkpoint marker was in flight at the kill: it may
                # or may not have become durable.  Values must match
                # either way; the position may sit one entry ahead.
                values_match = first["variables"] == expected["variables"]
                position_ok = first["position"] in (
                    expected["position"], expected["position"] + 1)
                if not (values_match and position_ok):
                    print(f"FAIL: carol recovered a hybrid state:\n"
                          f"  before: {json.dumps(expected, sort_keys=True)}\n"
                          f"  after:  {json.dumps(first, sort_keys=True)}")
                    return 1
            elif first != expected:
                print(f"FAIL: offline recovery of {name!r} diverged:\n"
                      f"  before: {json.dumps(expected, sort_keys=True)}\n"
                      f"  after:  {json.dumps(first, sort_keys=True)}")
                return 1
        print("offline session-verify fingerprints stable and correct")

        proc, port = start_server(root)
        try:
            after = fingerprints(port, names)
            carol_after = fingerprints(port, ["carol"])["carol"]
            with SessionClient("127.0.0.1", port) as client:
                health = client.health()
                if health["status"] != "ok":
                    print(f"FAIL: restarted server unhealthy: {health}")
                    return 1
                # A fourth session for the what-if-commit kill, plus a
                # twin that runs the identical batch to completion so
                # the exact all-applied state is known in advance.
                for name in ("dave", "dave-twin"):
                    handle = client.session(name)
                    handle.make_var("left")
                    handle.make_var("right")
                    handle.assign("v:left", 1)
                twin_result = client.session("dave-twin").what_if_commit(
                    [(entry["var"], entry["value"])
                     for entry in WHATIF_ENTRIES])
                if twin_result["committed"] != len(WHATIF_ENTRIES):
                    print(f"FAIL: twin what-if-commit rejected entries: "
                          f"{twin_result}")
                    return 1
                dave_before = client.session("dave").fingerprint()
                dave_applied = client.session("dave-twin").fingerprint()
        finally:
            if proc.poll() is None:
                kill_mid_whatif_commit(proc, port, "dave")
        print(f"killed server pid={proc.pid} with SIGKILL mid "
              f"what-if-commit")
        for name in names:
            if after[name] != before[name]:
                print(f"FAIL: restarted server recovered {name!r} "
                      f"differently")
                return 1
        if carol_after != offline_fingerprint(root, "carol"):
            print("FAIL: carol diverged between offline and server "
                  "recovery")
            return 1

        # The batch is one journal frame: recovery shows it fully
        # applied (== the twin's state) or fully absent (== the state
        # before the request) — a hybrid means a torn commit.
        dave = offline_fingerprint(root, "dave")
        if dave != offline_fingerprint(root, "dave"):
            print("FAIL: offline fingerprint of 'dave' is unstable")
            return 1
        observed = (dave["position"], dave["variables"])
        applied = observed == (dave_applied["position"],
                               dave_applied["variables"])
        absent = observed == (dave_before["position"],
                              dave_before["variables"])
        if not (applied or absent):
            print(f"FAIL: kill -9 tore the what-if-commit batch:\n"
                  f"  before:  {json.dumps(dave_before, sort_keys=True)}\n"
                  f"  applied: {json.dumps(dave_applied, sort_keys=True)}\n"
                  f"  got:     {json.dumps(dave, sort_keys=True)}")
            return 1
        print(f"what-if-commit batch "
              f"{'fully applied' if applied else 'fully absent'} "
              f"after kill -9: all-or-nothing OK")

        proc, port = start_server(root)
        try:
            dave_server = fingerprints(port, ["dave"])["dave"]
            with SessionClient("127.0.0.1", port) as client:
                client.shutdown()
        finally:
            proc.wait(timeout=30)
        if (dave_server["position"], dave_server["variables"]) != observed:
            print("FAIL: dave diverged between offline and server "
                  "recovery")
            return 1
        print(f"recovered {len(names) + 2} session(s) bit-identically "
              f"after chaos + 2x kill -9: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
