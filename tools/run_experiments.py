"""Regenerate the measured figures behind EXPERIMENTS.md, live.

Runs each experiment's scenario through the library and prints a
paper-claim vs. measured table — the quick reproduction check::

    python tools/run_experiments.py

Wall-clock timings are left to ``pytest benchmarks/ --benchmark-only``;
this tool reports the *deterministic* figures (propagation outcomes and
engine counters), which must match EXPERIMENTS.md exactly.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from repro.core import UpperBoundConstraint, reset_default_context  # noqa: E402
from repro.selection import ModuleSelector  # noqa: E402


class Report:
    def __init__(self) -> None:
        self.rows = []

    def add(self, experiment: str, claim: str, measured: str,
            ok: bool) -> None:
        self.rows.append((experiment, claim, measured, ok))

    def render(self) -> str:
        width = max(len(r[0]) for r in self.rows)
        lines = []
        for experiment, claim, measured, ok in self.rows:
            status = "ok " if ok else "FAIL"
            lines.append(f"[{status}] {experiment:<{width}}  {claim}")
            lines.append(f"       {'':<{width}}  measured: {measured}")
        passed = sum(1 for r in self.rows if r[3])
        lines.append(f"\n{passed}/{len(self.rows)} experiment checks hold")
        return "\n".join(lines)

    @property
    def all_ok(self) -> bool:
        return all(r[3] for r in self.rows)


def run() -> Report:
    report = Report()

    # E1 — Fig 4.5
    import test_bench_fig4_5 as e1
    reset_default_context()
    v1, v2, v3, v4 = e1.build_network()
    ok = v1.set(9) and (v1.value, v2.value, v3.value, v4.value) == (9, 9, 5, 9)
    report.add("E1 Fig4.5", "V1:=9 -> V2=9, V4=9, V3 untouched",
               f"({v1.value},{v2.value},{v3.value},{v4.value})", ok)

    # E2 — agenda deferral
    import test_bench_agenda as e2
    ctx = reset_default_context()
    m, t = e2.build_tree(e2.UniAdditionConstraint, fan_in=8)
    m.set(5); ctx.stats.reset(); m.set(6)
    deferred = ctx.stats.propagated_assignments
    ctx = reset_default_context()
    m, t = e2.build_tree(e2.ImmediateAddition, fan_in=8)
    m.set(5); ctx.stats.reset(); m.set(6)
    immediate = ctx.stats.propagated_assignments
    report.add("E2 agenda", "deferred < immediate transient updates",
               f"{deferred} vs {immediate}", deferred < immediate)

    # E3 — Fig 4.9 cycle
    import test_bench_fig4_9 as e3
    reset_default_context()
    v1, v2, v3 = e3.build_cycle()
    rejected = not v1.set(10)
    restored = (v1.value, v2.value, v3.value) == (None, None, None)
    report.add("E3 Fig4.9", "cycle violates and restores",
               f"rejected={rejected}, restored={restored}",
               rejected and restored)

    # E5 — Fig 5.2 hierarchy
    import test_bench_fig5_2 as e5
    reset_default_context()
    adder, register, acc = e5.build_scenario()
    early = acc.delay_var("in1", "out1").value
    rejected = not adder.delay_var("a", "sum").calculate(110 * e5.NS)
    report.add("E5 Fig5.2", "estimates=160ns; 110ns adder rejected",
               f"early={early / e5.NS:.0f}ns, rejected={rejected}",
               abs(early - 160 * e5.NS) < 1e-12 and rejected)

    # E6 — hierarchical sharing
    import test_bench_hierarchy as e6
    ctx = reset_default_context()
    source, class_var, consumers = e6.build_hierarchical()
    source.set(0); ctx.stats.reset(); source.set(1)
    hierarchical = ctx.stats.inference_runs
    ctx = reset_default_context()
    fsource, fconsumers = e6.build_flat()
    fsource.set(0); ctx.stats.reset(); fsource.set(1)
    flat = ctx.stats.inference_runs
    report.add("E6 hierarchy", "hierarchical inferences << flat",
               f"{hierarchical} vs {flat}", flat > 2 * hierarchical)

    # E10 — Fig 7.1 width clash
    import test_bench_fig7_1 as e10
    ctx = reset_default_context()
    leaf, top, instance, net = e10.build_scene(4, 8)
    rejected = not net.connect(instance, "in1")
    report.add("E10 Fig7.1", "4-bit net vs 8-bit signal rejected",
               f"rejected={rejected}", rejected)

    # E14 — Fig 8.1 decision table
    import test_bench_fig8_1 as e14
    outcomes = []
    for area, delay, expected in [
            (1.0 * e14.A, 11 * e14.D, {"ADD8.RC"}),
            (4.2 * e14.A, 8 * e14.D, {"ADD8.CS"}),
            (4.2 * e14.A, 11 * e14.D, {"ADD8.RC", "ADD8.CS"}),
            (1.0 * e14.A, 8 * e14.D, set())]:
        reset_default_context()
        add8, rc, cs = e14.build_family()
        alu, inst = e14.build_alu(add8, area, delay)
        result = {c.name for c in
                  ModuleSelector().select_realizations_for(inst)}
        outcomes.append(result == expected)
    report.add("E14 Fig8.1", "decision table RC/CS/both/none",
               f"{sum(outcomes)}/4 cases", all(outcomes))

    # E15 — pruning
    import test_bench_selection as e15
    reset_default_context()
    root = e15.build_library()
    inst = e15.constrained_instance(root, 10 * e15.D)
    pruned = ModuleSelector(priorities=("delays",), prune=True)
    pruned.select_realizations_for(inst)
    full = ModuleSelector(priorities=("delays",), prune=False)
    full.select_realizations_for(inst)
    report.add("E15 pruning", "pruning tests fewer candidates",
               f"{pruned.stats.candidates_tested} vs "
               f"{full.stats.candidates_tested}",
               pruned.stats.candidates_tested
               < full.stats.candidates_tested)

    # E16 — complexity
    import test_bench_complexity as e16
    counts = []
    for n in (50, 100, 200):
        reset_default_context()
        counts.append(e16.activations_for_chain(n))
    linear = counts == [49, 99, 199]
    report.add("E16 complexity", "activations = chain length - 1",
               f"{counts}", linear)

    return report


if __name__ == "__main__":
    report = run()
    print(report.render())
    raise SystemExit(0 if report.all_ok else 1)
