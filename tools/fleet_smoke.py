"""Fleet smoke test: sharding, replication, failover and migration.

Drives a real sharded fleet end to end:

1. start two ``repro.cli fleet-worker`` subprocesses (each with its own
   root — its own "disk") and an in-process router over them, with
   synchronous WAL replication,
2. interpose a seeded :class:`StreamFaultProxy` between the clients and
   the router and run two concurrent retrying clients through it with a
   deterministic workload — values and the exact journal position are
   asserted, so a retry that applied twice (or not at all) cannot hide,
3. live-migrate one session to the other worker while a concurrent
   client hammers it — the client must finish with zero errors and the
   session must land at the exact expected position,
4. ``SIGKILL`` the worker owning the other session mid-batch while a
   retrying client is writing — the client must finish, the session
   must resume on the follower from its replicated WAL, and the final
   position must equal exactly "everything acknowledged, once",
5. fingerprints captured through the router before the kill must be
   reproduced after it (replica promotion is fingerprint-identical),
6. shut the fleet down and verify the surviving journals offline with
   ``session-verify --fingerprint`` (twice — the digest must be
   stable, and must equal the router-side view).

Run from the repo root (CI's fleet-smoke job does)::

    PYTHONPATH=src python tools/fleet_smoke.py

Exits non-zero with a diagnostic on the first mismatch.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.faults import FaultPlan, StreamFaultProxy  # noqa: E402
from repro.fleet.router import Router  # noqa: E402
from repro.fleet.runner import _LoopThread  # noqa: E402
from repro.session.client import SessionClient  # noqa: E402

ASSIGN_ROUNDS = 12
#: 3 make-var + 1 add-constraint + 2 assigns per round — the exact
#: journal position a fault-free (or exactly-once retried) run ends at.
EXPECTED_POSITION = 4 + 2 * ASSIGN_ROUNDS
#: Extra assigns fired at a session while its worker is killed /
#: while it is migrated — acknowledged exactly once, so the final
#: position is EXPECTED_POSITION + the count, precisely.
KILL_WRITES = 24
MIGRATE_WRITES = 24


def start_worker(root: str, worker_id: str) -> "tuple[subprocess.Popen, str, int]":
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "fleet-worker",
         "--root", root, "--id", worker_id, "--port", "0",
         "--fsync", "never"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            address = line.split("listening on")[1].split()[0]
            host, port = address.rsplit(":", 1)
            return proc, host, int(port)
        if not line or proc.poll() is not None:
            raise RuntimeError(f"worker died during startup: {line!r}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("worker did not report a port in 30s")


def drive(host: str, port: int, name: str, bias: int,
          results: dict, errors: list) -> None:
    """A retrying client's deterministic workload through the proxy."""
    try:
        client = SessionClient(host, port, timeout=5.0, retries=10,
                               backoff=0.02, retry_seed=bias,
                               client_id=f"fleet-{name}")
        try:
            handle = client.session(name)
            handle.make_var("width")
            handle.make_var("height")
            handle.make_var("area")
            handle.add_constraint("sum", ["v:area", "v:width", "v:height"])
            for step in range(ASSIGN_ROUNDS):
                handle.assign("v:width", step + bias)
                handle.assign("v:height", 2 * step + bias)
            width = ASSIGN_ROUNDS - 1 + bias
            height = 2 * (ASSIGN_ROUNDS - 1) + bias
            checks = {
                "v:width": (handle.value("v:width"), width),
                "v:height": (handle.value("v:height"), height),
                "v:area": (handle.value("v:area"), width + height),
            }
            for address, (got, expected) in checks.items():
                if got != expected:
                    raise AssertionError(
                        f"{name}: {address} = {got!r}, expected {expected}")
            position = handle.fingerprint(stats=False)["position"]
            if position != EXPECTED_POSITION:
                raise AssertionError(
                    f"{name}: position {position} != {EXPECTED_POSITION} — "
                    f"a retried mutation applied twice or was lost")
            results[name] = position
        finally:
            client.close()
    except Exception as exc:
        errors.append((name, exc))


def hammer(host: str, port: int, name: str, base: int, count: int,
           results: dict, errors: list,
           started: threading.Event) -> None:
    """Assign ``count`` values to ``name``, signalling after a few so
    the main thread can kill/migrate mid-batch."""
    try:
        client = SessionClient(host, port, timeout=5.0, retries=10,
                               backoff=0.05, retry_seed=base,
                               client_id=f"hammer-{name}")
        try:
            handle = client.session(name)
            for step in range(count):
                handle.assign("v:width", base + step)
                if step == 3:
                    started.set()
            results[name] = handle.fingerprint(stats=False)["position"]
        finally:
            client.close()
    except Exception as exc:
        errors.append((name, exc))
        started.set()


def offline_fingerprint(root: str, name: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    output = subprocess.check_output(
        [sys.executable, "-m", "repro.cli", "session-verify",
         "--root", root, "--name", name, "--fingerprint"],
        text=True, env=env, cwd=REPO)
    return json.loads(output)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fleet-smoke-") as root:
        roots = {wid: os.path.join(root, wid) for wid in ("w0", "w1")}
        procs = {}
        addresses = {}
        for wid, wroot in roots.items():
            proc, host, port = start_worker(wroot, wid)
            procs[wid] = proc
            addresses[wid] = (host, port)
        loop = _LoopThread()
        loop.start()
        router = Router(addresses, replication="sync", repl_interval=0.1)
        loop.call(router.start())
        print(f"fleet up: router :{router.port}, workers "
              f"{ {wid: p for wid, (h, p) in addresses.items()} }")
        try:
            # -- 1. concurrent retrying clients through a fault proxy --
            plan = FaultPlan(seed=2026)
            plan.drop("s2c", probability=0.06)
            plan.reset("c2s", probability=0.04)
            with StreamFaultProxy("127.0.0.1", router.port, plan) as proxy:
                errors: list = []
                results: dict = {}
                threads = [
                    threading.Thread(target=drive,
                                     args=(proxy.host, proxy.port, name,
                                           bias, results, errors))
                    for bias, name in enumerate(["alice", "bob"])]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=120)
                for name, exc in errors:
                    print(f"FAIL: client {name!r} errored: {exc!r}")
                    return 1
                if len(results) != 2:
                    print(f"FAIL: only {sorted(results)} finished")
                    return 1
            print(f"sharded workload survived injected faults "
                  f"({plan.summary() or 'none'}); both sessions at "
                  f"position {EXPECTED_POSITION} (exactly-once)")

            client = SessionClient("127.0.0.1", router.port, timeout=10.0,
                                   retries=10, backoff=0.05, retry_seed=99,
                                   client_id="fleet-main")
            victim = router.ring.lookup("alice")
            survivor = next(w for w in ("w0", "w1") if w != victim)

            # -- 2. live migration of bob, under concurrent writes -----
            bob_owner = router.ring.lookup("bob")
            target = next(w for w in ("w0", "w1") if w != bob_owner)
            m_errors: list = []
            m_results: dict = {}
            m_started = threading.Event()
            m_thread = threading.Thread(
                target=hammer,
                args=("127.0.0.1", router.port, "bob", 2000,
                      MIGRATE_WRITES, m_results, m_errors, m_started))
            m_thread.start()
            m_started.wait(timeout=60)
            migrated = client.call("migrate", session="bob", target=target)
            m_thread.join(timeout=120)
            if m_errors:
                print(f"FAIL: writer during migration errored: {m_errors}")
                return 1
            if not migrated.get("migrated") or migrated["to"] != target:
                print(f"FAIL: migration refused: {migrated}")
                return 1
            expected_bob = EXPECTED_POSITION + MIGRATE_WRITES
            if m_results.get("bob") != expected_bob:
                print(f"FAIL: bob at {m_results.get('bob')} after "
                      f"migration, expected {expected_bob} — a mutation "
                      f"was lost or doubled in the handover")
                return 1
            if router.ring.lookup("bob") != target:
                print(f"FAIL: bob not pinned to {target!r} after "
                      f"migration")
                return 1
            print(f"live-migrated 'bob' {bob_owner}->{target} under "
                  f"{MIGRATE_WRITES} concurrent writes; position "
                  f"{expected_bob} exact, zero client errors")

            # -- 3. quiesce replication, capture pre-kill truth --------
            client.call("fleet-sync")
            before = {
                name: client.session(name).fingerprint()
                for name in ("alice", "bob")}

            # -- 4. SIGKILL the worker owning alice, mid-batch ---------
            k_errors: list = []
            k_results: dict = {}
            k_started = threading.Event()
            k_thread = threading.Thread(
                target=hammer,
                args=("127.0.0.1", router.port, "alice", 1000,
                      KILL_WRITES, k_results, k_errors, k_started))
            k_thread.start()
            k_started.wait(timeout=60)
            procs[victim].send_signal(signal.SIGKILL)
            procs[victim].wait(timeout=30)
            k_thread.join(timeout=120)
            if k_errors:
                print(f"FAIL: writer during kill errored: {k_errors}")
                return 1
            expected_alice = EXPECTED_POSITION + KILL_WRITES
            if k_results.get("alice") != expected_alice:
                print(f"FAIL: alice at {k_results.get('alice')} after "
                      f"worker kill, expected {expected_alice} — a "
                      f"retried mutation applied twice or was lost")
                return 1
            print(f"killed worker {victim!r} (pid {procs[victim].pid}) "
                  f"mid-batch; client finished all {KILL_WRITES} writes, "
                  f"position {expected_alice} exact (exactly-once)")

            # -- 5. the follower's recovery is fingerprint-identical ---
            after_alice = client.session("alice").fingerprint()
            before_vars = before["alice"]["variables"]
            after_vars = dict(after_alice["variables"])
            # the hammer moved width (and the sum constraint moved
            # area); everything else must be bit-identical
            if after_vars["v:width"]["value"] != 1000 + KILL_WRITES - 1:
                print(f"FAIL: alice lost the last write: {after_vars}")
                return 1
            if after_vars["v:height"] != before_vars["v:height"]:
                print(f"FAIL: failover changed untouched state:\n"
                      f"  before: {json.dumps(before_vars, sort_keys=True)}\n"
                      f"  after:  {json.dumps(after_vars, sort_keys=True)}")
                return 1
            after_bob = client.session("bob").fingerprint()
            if after_bob != before["bob"]:
                print(f"FAIL: bob changed across alice's failover:\n"
                      f"  before: {json.dumps(before['bob'], sort_keys=True)}\n"
                      f"  after:  {json.dumps(after_bob, sort_keys=True)}")
                return 1
            health = client.call("health")
            if victim not in health["down"]:
                print(f"FAIL: health does not report {victim!r} down: "
                      f"{health}")
                return 1
            print(f"failover to {survivor!r} fingerprint-checked; "
                  f"router health reports {victim!r} down")

            # -- 6. shut down, verify the surviving journals offline ---
            client.call("fleet-sync")
            final = {
                name: client.session(name).fingerprint()
                for name in ("alice", "bob")}
            owners = {name: router.ring.lookup(name)
                      for name in ("alice", "bob")}
            client.call("shutdown")
            client.close()
        finally:
            loop.call(router.stop())
            loop.stop()
            for proc in procs.values():
                if proc.poll() is None:
                    try:
                        proc.wait(timeout=15)
                    except subprocess.TimeoutExpired:
                        proc.kill()
        for name in ("alice", "bob"):
            owner_root = roots[owners[name]]
            first = offline_fingerprint(owner_root, name)
            second = offline_fingerprint(owner_root, name)
            if first != second:
                print(f"FAIL: offline fingerprint of {name!r} unstable")
                return 1
            if first != final[name]:
                print(f"FAIL: offline recovery of {name!r} on "
                      f"{owners[name]!r} diverged from the router view:\n"
                      f"  router:  {json.dumps(final[name], sort_keys=True)}\n"
                      f"  offline: {json.dumps(first, sort_keys=True)}")
                return 1
        print(f"offline session-verify stable and identical on "
              f"{sorted(set(owners.values()))}; fleet smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
