"""Threaded load generator for the session protocol.

Drives a server (single ``repro serve`` or a fleet router — same
protocol) with N concurrent retrying clients and reports latency
percentiles and throughput.  Importable (``run_load``) for benchmarks
and smoke tests, runnable as a script for ad-hoc measurements:

    python tools/loadgen.py --host 127.0.0.1 --port 7777 \
        --clients 16 --requests 200

Each client owns one session (``load-c<i>``) and issues ``assign``
mutations with a deterministic value sequence, so a run against a
fleet exercises sharding, rid-carrying retries and synchronous
replication on every request.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any, Dict, List, Optional

from repro.session.client import SessionClient


def percentile(samples: List[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (q in 0..100)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(q / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def _client_worker(host: str, port: int, index: int, requests: int,
                   session_prefix: str, retries: int, modules: int,
                   latencies: List[float], errors: List[str],
                   barrier: threading.Barrier) -> None:
    try:
        with SessionClient(host, port, retries=retries, backoff=0.05,
                           retry_seed=index) as client:
            handle = client.session(f"{session_prefix}{index}")
            if modules > 1:
                # Disjoint-module workload: one free variable per module
                # (no shared constraints), every request one assign_many
                # batch spanning all of them — the island-parallel shape.
                variables = [handle.make_var(f"load-m{j}", 0)
                             for j in range(modules)]
            else:
                var = handle.make_var("load", 0)
            barrier.wait(timeout=30)
            samples = []
            for n in range(requests):
                started = time.perf_counter()
                if modules > 1:
                    handle.assign_many([(variable, n * modules + j)
                                        for j, variable
                                        in enumerate(variables)])
                else:
                    handle.assign(var, n)
                samples.append(time.perf_counter() - started)
            latencies.extend(samples)
    except Exception as error:  # noqa: BLE001 - reported to the caller
        errors.append(f"client {index}: {error}")
        try:
            barrier.wait(timeout=1)
        except threading.BrokenBarrierError:
            pass


def run_load(host: str, port: int, *, clients: int = 8,
             requests: int = 100, retries: int = 4, modules: int = 1,
             session_prefix: str = "load-c") -> Dict[str, Any]:
    """Drive the server and return latency/throughput statistics.

    ``modules`` > 1 switches each client from single-variable ``assign``
    mutations to ``assign_many`` batches spanning that many disjoint
    module variables — the workload shape island-parallel draining
    (``--island-workers``) accelerates.

    Returns ``{"clients", "requests", "modules", "errors",
    "total_requests", "seconds", "throughput_rps", "p50_ms", "p90_ms",
    "p99_ms", "max_ms"}``.  ``errors`` lists client failures verbatim —
    an empty list is the success criterion.
    """
    latencies: List[float] = []
    errors: List[str] = []
    barrier = threading.Barrier(clients + 1)
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(host, port, index, requests, session_prefix, retries,
                  modules, latencies, errors, barrier),
            daemon=True)
        for index in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=60)  # all sessions opened; start the clock
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = len(latencies)
    return {
        "clients": clients,
        "requests": requests,
        "modules": modules,
        "errors": errors,
        "total_requests": total,
        "seconds": round(elapsed, 4),
        "throughput_rps": round(total / elapsed, 1) if elapsed else 0.0,
        "p50_ms": round(percentile(latencies, 50) * 1000, 3),
        "p90_ms": round(percentile(latencies, 90) * 1000, 3),
        "p99_ms": round(percentile(latencies, 99) * 1000, 3),
        "max_ms": round(max(latencies) * 1000, 3) if latencies else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="threaded load generator for the session protocol")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=100,
                        help="mutations per client")
    parser.add_argument("--retries", type=int, default=4)
    parser.add_argument("--modules", type=int, default=1,
                        help="disjoint module variables per client; above 1 "
                             "each request is one assign_many batch across "
                             "them (exercises island-parallel draining)")
    args = parser.parse_args(argv)
    report = run_load(args.host, args.port, clients=args.clients,
                      requests=args.requests, retries=args.retries,
                      modules=args.modules)
    json.dump(report, sys.stdout, indent=2, sort_keys=True)
    print()
    return 1 if report["errors"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
