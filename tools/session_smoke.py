"""End-to-end crash-recovery smoke test for the session server.

Exercises the durability contract the unit suite can only approximate:

1. start ``repro.cli serve`` as a real subprocess,
2. drive two concurrent clients (their own sessions, interleaved
   bursts of make-var / assign / constraint / undo / checkpoint),
3. capture each session's fingerprint, then ``SIGKILL`` the server —
   no flush, no atexit, nothing graceful,
4. verify the journals offline with ``session-verify --fingerprint``,
5. restart the server and assert both sessions recover to the exact
   fingerprints captured before the kill.

Run from the repo root (CI's session-smoke job does)::

    PYTHONPATH=src python tools/session_smoke.py

Exits non-zero with a diagnostic on any mismatch.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.session.client import SessionClient  # noqa: E402


def start_server(root: str) -> "tuple[subprocess.Popen, int]":
    """Launch ``repro.cli serve`` and return (process, port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--root", root, "--port", "0"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO)
    deadline = time.monotonic() + 30.0
    while True:
        line = proc.stdout.readline()
        if "listening on" in line:
            port = int(line.split("listening on")[1].split()[0]
                       .rsplit(":", 1)[1])
            return proc, port
        if not line or proc.poll() is not None:
            raise RuntimeError(f"server died during startup: {line!r}")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("server did not report a port in 30s")


def drive(port: int, session_name: str, bias: int,
          errors: list) -> None:
    """One client's workload: build a network, mutate it, rewind it."""
    try:
        with SessionClient("127.0.0.1", port) as client:
            handle = client.session(session_name)
            handle.make_var("width", 2 + bias)
            handle.make_var("height")
            handle.make_var("area")
            handle.add_constraint("sum", ["v:area", "v:width", "v:height"])
            for step in range(8):
                handle.assign("v:height", 10 * (step + 1) + bias)
            handle.undo()                       # back to height = 70+bias
            handle.undo()                       # back to height = 60+bias
            handle.redo()                       # forward to 70+bias
            handle.checkpoint()
            handle.assign("v:width", 5 + bias)  # journal tail past snapshot
            handle.assign("v:height", 100 + bias)
            expected_area = (5 + bias) + (100 + bias)
            got = handle.value("v:area")
            if got != expected_area:
                raise AssertionError(
                    f"{session_name}: area {got!r} != {expected_area}")
    except Exception as exc:  # propagate to the main thread
        errors.append((session_name, exc))


def fingerprints(port: int, names: "list[str]") -> "dict[str, dict]":
    with SessionClient("127.0.0.1", port) as client:
        return {name: client.session(name).fingerprint() for name in names}


def offline_fingerprint(root: str, name: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    output = subprocess.check_output(
        [sys.executable, "-m", "repro.cli", "session-verify",
         "--root", root, "--name", name, "--fingerprint"],
        text=True, env=env, cwd=REPO)
    return json.loads(output)


def main() -> int:
    names = ["alice", "bob"]
    with tempfile.TemporaryDirectory(prefix="session-smoke-") as root:
        proc, port = start_server(root)
        try:
            errors: list = []
            threads = [threading.Thread(target=drive,
                                        args=(port, name, bias, errors))
                       for bias, name in enumerate(names)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            for name, exc in errors:
                print(f"FAIL: client {name!r} errored: {exc!r}")
                return 1
            before = fingerprints(port, names)
        finally:
            # The point of the exercise: no graceful shutdown.
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        print(f"killed server pid={proc.pid} with SIGKILL")

        for name in names:
            offline = offline_fingerprint(root, name)
            if offline != before[name]:
                print(f"FAIL: offline recovery of {name!r} diverged:\n"
                      f"  before: {json.dumps(before[name], sort_keys=True)}\n"
                      f"  after:  {json.dumps(offline, sort_keys=True)}")
                return 1
        print("offline session-verify fingerprints match")

        proc, port = start_server(root)
        try:
            after = fingerprints(port, names)
            with SessionClient("127.0.0.1", port) as client:
                client.shutdown()
        finally:
            proc.wait(timeout=30)
        for name in names:
            if after[name] != before[name]:
                print(f"FAIL: restarted server recovered {name!r} "
                      f"differently:\n"
                      f"  before: {json.dumps(before[name], sort_keys=True)}\n"
                      f"  after:  {json.dumps(after[name], sort_keys=True)}")
                return 1
        print(f"recovered {len(names)} session(s) bit-identically "
              f"after kill -9: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
