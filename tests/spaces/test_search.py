"""Parallel space search equals sequential generate-and-test."""

import multiprocessing

import pytest

from repro.core import UpperBoundConstraint
from repro.obs import MetricsRegistry, Observer
from repro.selection import ModuleSelector, RankedSelector
from repro.spaces import SpaceSelector, search_realizations
from repro.spaces.search import enumerate_candidates
from repro.stem import CellClass, Rect

D = 1.0   # delay unit
A = 10.0  # area unit

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
BACKENDS = ["serial", "thread"] + (["fork"] if HAVE_FORK else [])


def generic_adder():
    """The ADD8 generic of Fig. 8.1 with RC and CS realizations."""
    add8 = CellClass("ADD8", is_generic=True)
    add8.define_signal("x", "in")
    add8.define_signal("y", "out")
    add8.declare_delay("x", "y", estimate=5 * D)
    add8.set_bounding_box(Rect.of_extent(A, 1.0))

    rc = add8.subclass("ADD8.RC")
    rc.delay_var("x", "y").set(8 * D)
    rc.set_bounding_box(Rect.of_extent(A, 1.0))

    cs = add8.subclass("ADD8.CS")
    cs.delay_var("x", "y").set(5 * D)
    cs.set_bounding_box(Rect.of_extent(2.2 * A, 1.0))
    return add8, rc, cs


def alu_with(add8, *, area_budget, delay_budget, lu_delay=3 * D):
    alu = CellClass(f"ALU[{area_budget},{delay_budget}]")
    alu.define_signal("in1", "in")
    alu.define_signal("out1", "out")
    alu.declare_delay("in1", "out1")
    UpperBoundConstraint(alu.delay_var("in1", "out1"), delay_budget)

    lu8 = CellClass(f"LU8[{area_budget}]")
    lu8.define_signal("a", "in")
    lu8.define_signal("z", "out")
    lu8.declare_delay("a", "z", estimate=lu_delay)
    lu8.set_bounding_box(Rect.of_extent(2 * A, 1.0))

    lu = lu8.instantiate(alu, "lu")
    add = add8.instantiate(alu, "add")
    n0 = alu.add_net("n0"); n0.connect_io("in1"); n0.connect(lu, "a")
    n1 = alu.add_net("n1"); n1.connect(lu, "z"); n1.connect(add, "x")
    n2 = alu.add_net("n2"); n2.connect(add, "y"); n2.connect_io("out1")
    add.bounding_box_var.set(Rect.of_extent(area_budget, 1.0))
    alu.build_delay_network()
    return alu, add


def deep_tree():
    """Three-level hierarchy with a generic intermediate (Fig. 8.4)."""
    adder8 = CellClass("Adder8", is_generic=True)
    adder8.define_signal("x", "in")
    adder8.define_signal("y", "out")
    adder8.declare_delay("x", "y")

    ripple = adder8.subclass("RippleCarryAdder8", is_generic=True)
    ripple.delay_var("x", "y").set(8 * D)
    slow = ripple.subclass("RCAdd8S")
    slow.delay_var("x", "y").set(16 * D)
    fast = ripple.subclass("RCAdd8F")
    fast.delay_var("x", "y").set(8 * D)

    lookahead = adder8.subclass("CLAAdd8")
    lookahead.delay_var("x", "y").set(4 * D)
    return adder8, ripple, slow, fast, lookahead


def budgeted_instance(adder8, budget):
    top = CellClass(f"TOP[{budget}]")
    instance = adder8.instantiate(top, "add")
    UpperBoundConstraint(instance.delay_var("x", "y"), budget)
    return instance


class TestSpaceSelector:
    """The probe-in-a-space primitive equals in-place probing."""

    def test_same_results_as_module_selector(self):
        add8, rc, cs = generic_adder()
        _, add = alu_with(add8, area_budget=1.5 * A, delay_budget=12 * D)
        assert (SpaceSelector().select_realizations_for(add)
                == ModuleSelector().select_realizations_for(add))

    def test_probing_leaves_design_untouched(self):
        add8, rc, cs = generic_adder()
        _, add = alu_with(add8, area_budget=3 * A, delay_budget=20 * D)
        before = [(variable.raw_value, variable.last_set_by)
                  for variable in (add.bounding_box_var,
                                   add.delay_var("x", "y"))]
        SpaceSelector().select_realizations_for(add)
        after = [(variable.raw_value, variable.last_set_by)
                 for variable in (add.bounding_box_var,
                                  add.delay_var("x", "y"))]
        assert before == after


class TestEnumeration:
    def test_dfs_order_and_parents(self):
        adder8, ripple, slow, fast, lookahead = deep_tree()
        instance = budgeted_instance(adder8, 20 * D)
        nodes = enumerate_candidates(instance)
        assert [node.cell.name for node in nodes] \
            == ["RippleCarryAdder8", "RCAdd8S", "RCAdd8F", "CLAAdd8"]
        assert [node.parent for node in nodes] == [-1, 0, 0, -1]
        assert [node.depth for node in nodes] == [1, 2, 2, 1]
        assert [node.is_generic for node in nodes] \
            == [True, False, False, False]

    def test_concrete_class_is_single_leaf(self):
        adder8, ripple, slow, fast, lookahead = deep_tree()
        top = CellClass("TOP")
        instance = lookahead.instantiate(top, "add")
        nodes = enumerate_candidates(instance)
        assert [node.cell for node in nodes] == [lookahead]


class TestParity:
    """The acceptance criterion: identical ranked result set."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("area,delay", [
        (1.5, 12.0), (3.0, 12.0), (3.0, 20.0), (0.5, 6.0)])
    def test_ranked_parity_fig81(self, backend, area, delay):
        add8, rc, cs = generic_adder()
        _, add = alu_with(add8, area_budget=area * A, delay_budget=delay * D)
        result = search_realizations(add, workers=3, backend=backend)
        reference = RankedSelector().rank(add)
        assert [(entry.cell.name, entry.score, entry.metrics)
                for entry in result.ranking] \
            == [(entry.cell.name, entry.score, entry.metrics)
                for entry in reference]

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("budget", [6.0, 10.0, 20.0])
    def test_ranked_parity_deep_tree(self, backend, budget):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, budget * D)
        result = search_realizations(instance, workers=2, backend=backend,
                                     priorities=("delays",))
        reference = RankedSelector(priorities=("delays",)).rank(instance)
        assert [(entry.cell.name, entry.score) for entry in result.ranking] \
            == [(entry.cell.name, entry.score) for entry in reference]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_search_leaves_design_untouched(self, backend):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 10 * D)
        variable = instance.delay_var("x", "y")
        before = (variable.raw_value, variable.last_set_by)
        search_realizations(instance, workers=2, backend=backend)
        assert (variable.raw_value, variable.last_set_by) == before

    def test_no_prune_parity(self):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 6 * D)
        result = search_realizations(instance, prune=False,
                                     priorities=("delays",))
        reference = RankedSelector(priorities=("delays",),
                                   prune=False).rank(instance)
        assert [entry.cell.name for entry in result.ranking] \
            == [entry.cell.name for entry in reference]

    def test_concrete_instance_returns_itself_unranked(self):
        adder8, ripple, slow, fast, lookahead = deep_tree()
        top = CellClass("TOP")
        instance = lookahead.instantiate(top, "add")
        result = search_realizations(instance)
        assert result.valid == [lookahead]
        assert result.stats.evaluated == 0


class TestPruningAndStats:
    def test_failed_generic_prunes_subtree(self):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 6 * D)  # ripple ideal 8D fails
        result = search_realizations(instance, priorities=("delays",))
        assert result.stats.pruned_subtrees == 1
        # ripple's two leaves never evaluated: 1 generic + 1 free leaf
        assert result.stats.evaluated == 2
        assert [cell.name for cell in result.valid] == ["CLAAdd8"]

    def test_prune_metrics_emitted(self, context):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 6 * D)
        registry = MetricsRegistry()
        observer = Observer(instance.cell_class.context,
                            metrics=registry).install()
        try:
            search_realizations(instance, priorities=("delays",))
        finally:
            observer.uninstall()
        snapshot = registry.snapshot()
        assert snapshot["engine.space.prune"] == 1
        assert snapshot["engine.space.prune_depth"]["value"] == 1

    def test_unknown_backend_rejected(self):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 10 * D)
        with pytest.raises(ValueError):
            search_realizations(instance, backend="threads")

    def test_workers_one_forces_serial(self):
        adder8, *_ = deep_tree()
        instance = budgeted_instance(adder8, 10 * D)
        result = search_realizations(instance, workers=1, backend="fork")
        assert result.stats.backend == "serial"
