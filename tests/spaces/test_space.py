"""Computation-space lifecycle: clone, commit, discard, fork."""

import pathlib
import shutil
import tempfile

import pytest

from repro.core import (EqualityConstraint, PlanCache, UpperBoundConstraint,
                        Variable)
from repro.core.justification import TENTATIVE, USER
from repro.core.violations import ViolationHandler
from repro.obs import MetricsRegistry, Observer
from repro.session import Session
from repro.session.session import SessionError
from repro.spaces import Space, SpaceError

VAR_NAMES = ["a", "b", "c"]


@pytest.fixture
def directory():
    path = tempfile.mkdtemp(prefix="repro-space-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def make_session(directory, **kwargs):
    session = Session("space", directory=directory, fsync="never", **kwargs)
    for name in VAR_NAMES:
        session.make_variable(name)
    session.add_constraint("equality", ["v:a", "v:b"])
    return session


def journal_bytes(directory):
    return b"".join(
        segment.read_bytes()
        for segment in sorted(pathlib.Path(directory).glob("wal-*.jsonl")))


def linked_pair(context):
    a = Variable(name="a", context=context)
    b = Variable(name="b", context=context)
    EqualityConstraint(a, b)
    return a, b


class TestContextLifecycle:
    """Spaces over a bare PropagationContext (no session)."""

    def test_discard_restores_values_justifications_stats(self, context):
        a, b = linked_pair(context)
        a.set(1)
        snapshot = context.stats.snapshot()
        with Space(context) as space:
            assert space.assign(a, 7, TENTATIVE)
            assert a.value == 7 and b.value == 7
            assert a.last_set_by is TENTATIVE
        assert a.value == 1 and b.value == 1
        assert a.last_set_by is USER
        assert context.stats.snapshot() == snapshot

    def test_violation_stays_inside_the_space(self, context):
        a, b = linked_pair(context)
        UpperBoundConstraint(a, 10)
        captured = []

        class Collector(ViolationHandler):
            def handle(self, record):
                captured.append(record)

        context.handler = Collector()
        with Space(context) as space:
            assert not space.assign(a, 99)
            assert len(space.violations) == 1
            assert a.value is None  # round rolled back inside the space
        assert captured == []  # parent handler never saw it

    def test_rejected_assign_never_reaches_the_log(self, context):
        a, b = linked_pair(context)
        UpperBoundConstraint(a, 10)
        with Space(context) as space:
            assert space.assign(a, 5)
            assert not space.assign(b, 99)
            assert [(var.name, value) for var, value, _ in space.log] \
                == [("a", 5)]

    def test_commit_replays_log_on_parent(self, context):
        a, b = linked_pair(context)
        with Space(context) as space:
            assert space.assign(a, 7)
            assert space.commit()
        assert a.value == 7 and b.value == 7
        assert a.last_set_by is USER

    def test_empty_commit_is_a_no_op(self, context):
        a, b = linked_pair(context)
        a.set(1)
        with Space(context) as space:
            assert space.commit()
        assert a.value == 1

    def test_batch_assign_many_in_space(self, context):
        a, b = linked_pair(context)
        c = Variable(name="c", context=context)
        with Space(context) as space:
            assert space.assign_many([(a, 4), (c, 5)])
            assert a.value == 4 and b.value == 4 and c.value == 5
        assert a.value is None and c.value is None

    def test_closed_space_refuses_everything(self, context):
        a, _ = linked_pair(context)
        space = Space(context).open()
        space.discard()
        for operation in (lambda: space.assign(a, 1), space.discard,
                          space.commit, space.fork):
            with pytest.raises(SpaceError):
                operation()
        with pytest.raises(SpaceError):
            space.open()  # no reopening

    def test_second_root_space_on_same_context_refused(self, context):
        linked_pair(context)
        with Space(context):
            with pytest.raises(SpaceError):
                Space(context).open()

    def test_fork_merges_into_parent_space(self, context):
        a, b = linked_pair(context)
        c = Variable(name="c", context=context)
        with Space(context) as space:
            space.assign(a, 1)
            child = space.fork()
            assert child.depth == 2
            child.assign(c, 9)
            assert child.commit()          # merges into the parent space
            assert c.value == 9
            assert [(var.name, value) for var, value, _ in space.log] \
                == [("a", 1), ("c", 9)]
            assert space.commit()
        assert a.value == 1 and c.value == 9

    def test_fork_discard_returns_to_fork_point(self, context):
        a, b = linked_pair(context)
        with Space(context) as space:
            space.assign(a, 1)
            child = space.fork()
            child.assign(a, 2)
            assert a.value == 2
            child.discard()
            assert a.value == 1
            assert [(var.name, value) for var, value, _ in space.log] \
                == [("a", 1)]

    def test_parent_frozen_while_child_open(self, context):
        a, _ = linked_pair(context)
        with Space(context) as space:
            child = space.fork()
            with pytest.raises(SpaceError):
                space.assign(a, 1)
            with pytest.raises(SpaceError):
                space.commit()
            child.discard()
            assert space.assign(a, 1)

    def test_disabled_context_assignments_confirm_immediately(self, context):
        a, b = linked_pair(context)
        with Space(context) as space:
            with context.propagation_disabled():
                a.set(5)
            assert a.value == 5 and b.value is None  # stored, unpropagated
            assert [(var.name, value) for var, value, _ in space.log] \
                == [("a", 5)]
        assert a.value is None

    def test_plan_cache_isolated_by_epochs(self, context):
        a, b = linked_pair(context)
        cache = PlanCache(context)
        for value in (1, 2, 1, 2):
            a.set(value)
        assert cache.plan_count == 1
        with Space(context) as space:
            assert cache.plan_count == 0  # entry epoch bump dropped plans
            for value in (3, 4, 3, 4):
                space.assign(a, value)
            assert cache.plan_count == 1  # warmed inside the space
        assert cache.plan_count == 0      # exit epoch bump dropped those
        a.set(9)                           # parent still fully functional
        assert b.value == 9


class TestSessionSpace:
    def test_commit_journals_exactly_one_batch_frame(self, directory):
        with make_session(directory) as session:
            base = journal_bytes(directory).count(b'"op":"batch"')
            with session.space() as space:
                assert space.assign("v:a", 5)
                assert space.assign("v:c", 11)
                assert space.commit()
            session.sync()
            data = journal_bytes(directory)
            assert data.count(b'"op":"batch"') == base + 1
            assert session.get("v:a") == (5, USER)
            assert session.get("v:b")[0] == 5

    def test_discard_leaves_fingerprint_and_position_identical(
            self, directory):
        with make_session(directory) as session:
            session.assign("v:a", 1)
            before = session.fingerprint()
            position = session.position
            with session.space() as space:
                space.assign("v:a", 7)
                space.assign("v:c", 3)
            assert session.fingerprint() == before
            assert session.position == position

    def test_commit_equals_direct_assign_many(self, directory):
        directory_b = tempfile.mkdtemp(prefix="repro-space-twin-")
        try:
            with make_session(directory) as spacey, \
                    make_session(directory_b) as direct:
                with spacey.space() as space:
                    assert space.assign("v:a", 5)
                    assert space.assign("v:c", 11)
                    assert space.commit()
                assert direct.assign_many([("v:a", 5), ("v:c", 11)])
                assert spacey.fingerprint() == direct.fingerprint()
        finally:
            shutil.rmtree(directory_b, ignore_errors=True)

    def test_commit_replays_after_reopen(self, directory):
        with make_session(directory) as session:
            with session.space() as space:
                space.assign("v:a", 5)
                assert space.commit()
            fingerprint = session.fingerprint()
        with Session("space", directory=directory, fsync="never") as again:
            assert again.fingerprint() == fingerprint

    def test_undo_reverts_the_whole_committed_batch(self, directory):
        with make_session(directory) as session:
            with session.space() as space:
                space.assign("v:a", 5)
                space.assign("v:c", 11)
                assert space.commit()
            assert session.undo()
            assert session.get("v:a")[0] is None
            assert session.get("v:c")[0] is None
            assert session.redo()
            assert session.get("v:a")[0] == 5
            assert session.get("v:c")[0] == 11

    def test_history_and_structure_refused_while_open(self, directory):
        with make_session(directory) as session:
            session.assign("v:a", 1)
            with session.space() as space:
                for operation in (
                        session.undo, session.redo, session.checkpoint,
                        lambda: session.make_variable("d"),
                        lambda: session.add_constraint(
                            "equality", ["v:a", "v:c"]),
                        lambda: session.retract("v:a")):
                    with pytest.raises(SessionError):
                        operation()
                space.assign("v:a", 2)
            # everything works again after the space closes
            assert session.undo()
            assert session.redo()

    def test_read_only_session_refuses_spaces(self, directory):
        with make_session(directory) as session:
            session.checkpoint()
        read_only = Session("space", directory=directory, read_only=True)
        try:
            with pytest.raises(SessionError):
                read_only.space()
        finally:
            read_only.close()

    def test_violating_space_round_not_in_parent_log(self, directory):
        with make_session(directory) as session:
            session.add_constraint("upper-bound", ["v:a"], params={"bound": 10})
            before = session.fingerprint()
            with session.space() as space:
                assert not space.assign("v:a", 99)
                assert len(space.violations) == 1
            assert session.violations == []
            assert session.fingerprint() == before


class TestObserverMetrics:
    def test_space_lifecycle_counters(self, context):
        a, _ = linked_pair(context)
        registry = MetricsRegistry()
        observer = Observer(context, metrics=registry).install()
        try:
            with Space(context) as space:
                space.assign(a, 1)
                child = space.fork()
                child.discard()
                space.commit()
            with Space(context):
                pass
        finally:
            observer.uninstall()
        snapshot = registry.snapshot()
        assert snapshot["engine.space.clone"] == 2
        assert snapshot["engine.space.fork"] == 1
        assert snapshot["engine.space.commit"] == 1
        assert snapshot["engine.space.discard"] == 2
        assert snapshot["engine.space.nest_depth"]["value"] == 0
