"""Hypothesis properties for computation spaces (satellite of issue 7).

* ``space.commit()`` leaves the parent fingerprint-identical to applying
  the same (accepted) assigns via ``assign_many`` directly.
* ``space.discard()`` leaves the parent byte-identical — fingerprint
  *and* journal position — to never having opened the space.
"""

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.session import Session

VAR_NAMES = ["a", "b", "c"]

value_strategy = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False,
              allow_infinity=False))
entry_strategy = st.tuples(
    st.integers(min_value=0, max_value=len(VAR_NAMES) - 1), value_strategy)
assigns_strategy = st.lists(entry_strategy, min_size=0, max_size=8)


def make_session(directory):
    """Three variables, an equality link, and a bound that makes large
    values violate — so generated assigns mix accepted and rejected."""
    session = Session("prop", directory=directory, fsync="never")
    for name in VAR_NAMES:
        session.make_variable(name)
    session.add_constraint("equality", ["v:a", "v:b"])
    session.add_constraint("upper-bound", ["v:a"], params={"bound": 10})
    return session


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(assigns=assigns_strategy)
def test_commit_equals_direct_assign_many(assigns):
    directory_a = tempfile.mkdtemp(prefix="repro-space-prop-a-")
    directory_b = tempfile.mkdtemp(prefix="repro-space-prop-b-")
    try:
        with make_session(directory_a) as spacey, \
                make_session(directory_b) as direct:
            with spacey.space() as space:
                for index, value in assigns:
                    space.assign(f"v:{VAR_NAMES[index]}", value)
                accepted = [(spacey.address_of(variable), value, just)
                            for variable, value, just in space.log]
                assert space.commit()
            if accepted:
                assert direct.assign_many(accepted)
            assert spacey.fingerprint() == direct.fingerprint()
    finally:
        shutil.rmtree(directory_a, ignore_errors=True)
        shutil.rmtree(directory_b, ignore_errors=True)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(prefix=assigns_strategy, assigns=assigns_strategy)
def test_discard_equals_never_opened(prefix, assigns):
    directory = tempfile.mkdtemp(prefix="repro-space-prop-d-")
    try:
        with make_session(directory) as session:
            for index, value in prefix:
                session.assign(f"v:{VAR_NAMES[index]}", value)
            before = session.fingerprint()
            position = session.position
            with session.space() as space:
                for index, value in assigns:
                    space.assign(f"v:{VAR_NAMES[index]}", value)
            assert session.fingerprint() == before
            assert session.position == position
    finally:
        shutil.rmtree(directory, ignore_errors=True)
