"""Tests for ranked module selection (section 9.3 extension)."""

import pytest

from repro.core import UpperBoundConstraint
from repro.selection import RankedSelector
from repro.stem import CellClass, Rect

D = 1.0
A = 10.0


def family():
    gen = CellClass("GEN", is_generic=True)
    gen.define_signal("x", "in")
    gen.define_signal("y", "out")
    gen.declare_delay("x", "y")

    fast_big = gen.subclass("FAST_BIG")
    fast_big.delay_var("x", "y").calculate(5 * D)
    fast_big.set_bounding_box(Rect.of_extent(3 * A, 1.0))

    slow_small = gen.subclass("SLOW_SMALL")
    slow_small.delay_var("x", "y").calculate(9 * D)
    slow_small.set_bounding_box(Rect.of_extent(1 * A, 1.0))

    balanced = gen.subclass("BALANCED")
    balanced.delay_var("x", "y").calculate(7 * D)
    balanced.set_bounding_box(Rect.of_extent(2 * A, 1.0))
    return gen, fast_big, slow_small, balanced


def placed(gen, delay_budget=None):
    top = CellClass("TOP")
    instance = gen.instantiate(top, "g")
    if delay_budget is not None:
        UpperBoundConstraint(instance.delay_var("x", "y"), delay_budget)
    return instance


class TestRanking:
    def test_delay_weight_prefers_fast(self):
        gen, fast_big, slow_small, balanced = family()
        instance = placed(gen)
        selector = RankedSelector(weights={"delay": 1.0})
        assert selector.best(instance) is fast_big

    def test_area_weight_prefers_small(self):
        gen, fast_big, slow_small, balanced = family()
        instance = placed(gen)
        selector = RankedSelector(weights={"area": 1.0})
        assert selector.best(instance) is slow_small

    def test_balanced_weights(self):
        gen, fast_big, slow_small, balanced = family()
        instance = placed(gen)
        ranking = RankedSelector(weights={"delay": 1.0,
                                          "area": 1.0}).rank(instance)
        # the balanced design is never the worst under equal weights
        names = [entry.cell.name for entry in ranking]
        assert names[-1] != "BALANCED"
        assert len(ranking) == 3

    def test_scores_sorted_ascending(self):
        gen, *_ = family()
        ranking = RankedSelector().rank(placed(gen))
        scores = [entry.score for entry in ranking]
        assert scores == sorted(scores)

    def test_only_valid_candidates_ranked(self):
        gen, fast_big, slow_small, balanced = family()
        instance = placed(gen, delay_budget=7.5 * D)
        ranking = RankedSelector(weights={"delay": 1.0}).rank(instance)
        names = {entry.cell.name for entry in ranking}
        assert names == {"FAST_BIG", "BALANCED"}

    def test_empty_when_nothing_valid(self):
        gen, *_ = family()
        instance = placed(gen, delay_budget=1 * D)
        assert RankedSelector().rank(instance) == []
        assert RankedSelector().best(instance) is None

    def test_metrics_reported(self):
        gen, fast_big, *_ = family()
        ranking = RankedSelector().rank(placed(gen))
        entry = next(e for e in ranking if e.cell is fast_big)
        assert entry.metrics["delay"] == pytest.approx(5 * D)
        assert entry.metrics["area"] == pytest.approx(3 * A * 1.0)

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError):
            RankedSelector(weights={"power": 1.0})

    def test_missing_characteristics_are_neutral(self):
        gen = CellClass("G2", is_generic=True)
        gen.define_signal("x", "in")
        gen.define_signal("y", "out")
        with_box = gen.subclass("BOXED")
        with_box.set_bounding_box(Rect.of_extent(A, 1.0))
        no_box = gen.subclass("UNBOXED")
        instance = placed(gen)
        ranking = RankedSelector(weights={"area": 1.0}).rank(instance)
        assert len(ranking) == 2  # both rank despite missing data
