"""Tests for module validation and selection (chapter 8)."""

import pytest

from repro.core import UpperBoundConstraint
from repro.selection import ModuleSelector, select_realizations
from repro.stem import CellClass, Rect, Transform
from repro.stem.types import ANALOG, DIGITAL, INTEGER_SIGNAL, WHOLE_SIGNAL

D = 1.0   # delay unit
A = 10.0  # area unit


def generic_adder():
    """The ADD8 generic of Fig. 8.1 with RC and CS realizations."""
    add8 = CellClass("ADD8", is_generic=True)
    add8.define_signal("x", "in")
    add8.define_signal("y", "out")
    add8.declare_delay("x", "y", estimate=5 * D)      # ideal: fastest child
    add8.set_bounding_box(Rect.of_extent(A, 1.0))     # ideal: smallest child

    rc = add8.subclass("ADD8.RC")
    rc.delay_var("x", "y").set(8 * D)
    rc.set_bounding_box(Rect.of_extent(A, 1.0))

    cs = add8.subclass("ADD8.CS")
    cs.delay_var("x", "y").set(5 * D)
    cs.set_bounding_box(Rect.of_extent(2.2 * A, 1.0))
    return add8, rc, cs


def alu_with(add8, *, area_budget, delay_budget, lu_delay=3 * D):
    """LU8 cascaded into the generic adder, with an overall delay spec
    and a placement-area spec on the adder instance (Fig. 8.1)."""
    alu = CellClass(f"ALU[{area_budget},{delay_budget}]")
    alu.define_signal("in1", "in")
    alu.define_signal("out1", "out")
    alu.declare_delay("in1", "out1")
    UpperBoundConstraint(alu.delay_var("in1", "out1"), delay_budget)

    lu8 = CellClass(f"LU8[{area_budget}]")
    lu8.define_signal("a", "in")
    lu8.define_signal("z", "out")
    lu8.declare_delay("a", "z", estimate=lu_delay)
    lu8.set_bounding_box(Rect.of_extent(2 * A, 1.0))

    lu = lu8.instantiate(alu, "lu")
    add = add8.instantiate(alu, "add")
    n0 = alu.add_net("n0"); n0.connect_io("in1"); n0.connect(lu, "a")
    n1 = alu.add_net("n1"); n1.connect(lu, "z"); n1.connect(add, "x")
    n2 = alu.add_net("n2"); n2.connect(add, "y"); n2.connect_io("out1")
    add.bounding_box_var.set(Rect.of_extent(area_budget, 1.0))
    alu.build_delay_network()
    return alu, add


class TestFig81:
    """The worked example: specs decide between RC and CS adders."""

    def test_tight_area_selects_ripple_carry(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=A, delay_budget=11 * D)
        assert select_realizations(instance) == [rc]

    def test_tight_delay_selects_carry_select(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=4.2 * A, delay_budget=8 * D)
        assert select_realizations(instance) == [cs]

    def test_loose_specs_select_both(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=4.2 * A,
                               delay_budget=11 * D)
        assert select_realizations(instance) == [rc, cs]

    def test_impossible_specs_select_none(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=A, delay_budget=8 * D)
        assert select_realizations(instance) == []

    def test_selection_leaves_design_untouched(self):
        add8, rc, cs = generic_adder()
        alu, instance = alu_with(add8, area_budget=A, delay_budget=11 * D)
        before_delay = alu.delay_var("in1", "out1").value
        before_inst = instance.delay_var("x", "y").value
        select_realizations(instance)
        assert alu.delay_var("in1", "out1").value == before_delay
        assert instance.delay_var("x", "y").value == before_inst

    def test_non_generic_instance_selects_itself(self):
        add8, rc, cs = generic_adder()
        top = CellClass("TOP")
        instance = rc.instantiate(top, "a")
        assert select_realizations(instance) == [rc]


class TestSignalTesting:
    def make_generic_with_interfaces(self):
        gen = CellClass("GEN", is_generic=True)
        gen.define_signal("x", "in")
        gen.define_signal("y", "out")
        good = gen.subclass("GOOD")
        missing = CellClass("MISSING", superclass=gen)
        # MISSING drops a signal: rebuild its interface artificially
        del missing.signals["y"]
        wrong_dir = gen.subclass("WRONGDIR")
        wrong_dir.signals["y"].direction = "in"
        return gen, good, missing, wrong_dir

    def test_missing_signal_rejected(self):
        gen, good, missing, wrong_dir = self.make_generic_with_interfaces()
        top = CellClass("TOP")
        instance = gen.instantiate(top, "g")
        results = select_realizations(instance, priorities=("signals",))
        assert good in results
        assert missing not in results
        assert wrong_dir not in results

    def test_type_clash_with_context_rejected(self):
        gen = CellClass("GEN2", is_generic=True)
        gen.define_signal("x", "in")
        analog_child = gen.subclass("ANALOG_IMPL")
        analog_child.signals["x"].electrical_type_var.set(ANALOG)
        digital_child = gen.subclass("DIGITAL_IMPL")
        digital_child.signals["x"].electrical_type_var.set(DIGITAL)

        top = CellClass("TOP2")
        top.define_signal("src", "in", electrical_type=DIGITAL)
        instance = gen.instantiate(top, "g")
        net = top.add_net("n")
        net.connect_io("src"); net.connect(instance, "x")
        results = select_realizations(instance, priorities=("signals",))
        assert digital_child in results
        assert analog_child not in results

    def test_width_clash_rejected(self):
        gen = CellClass("GEN3", is_generic=True)
        gen.define_signal("x", "in")
        wide = gen.subclass("WIDE8")
        wide.signals["x"].bit_width_var.constrain_by_structure(8)
        narrow = gen.subclass("NARROW4")
        narrow.signals["x"].bit_width_var.constrain_by_structure(4)

        top = CellClass("TOP3")
        top.define_signal("src", "in")
        top.signal("src").bit_width_var.constrain_by_structure(4)
        instance = gen.instantiate(top, "g")
        net = top.add_net("n")
        net.connect_io("src"); net.connect(instance, "x")
        results = select_realizations(instance, priorities=("signals",))
        assert results == [narrow]


class TestPruning:
    """Fig. 8.4: generic intermediates carry ideal estimates."""

    def build_tree(self):
        adder8 = CellClass("Adder8", is_generic=True)
        adder8.define_signal("x", "in")
        adder8.define_signal("y", "out")
        adder8.declare_delay("x", "y")

        ripple = adder8.subclass("RippleCarryAdder8", is_generic=True)
        ripple.delay_var("x", "y").set(8 * D)           # fastest descendant
        ripple.set_bounding_box(Rect.of_extent(8 * A, 1))  # smallest

        slow = ripple.subclass("RCAdd8S")
        slow.delay_var("x", "y").set(16 * D)
        slow.set_bounding_box(Rect.of_extent(8 * A, 1))
        fast = ripple.subclass("RCAdd8F")
        fast.delay_var("x", "y").set(8 * D)
        fast.set_bounding_box(Rect.of_extent(16 * A, 1))
        return adder8, ripple, slow, fast

    def instance_with_delay_budget(self, adder8, budget):
        top = CellClass(f"TOP[{budget}]")
        instance = adder8.instantiate(top, "add")
        UpperBoundConstraint(instance.delay_var("x", "y"), budget)
        return instance

    def test_generic_failure_prunes_subtree(self):
        adder8, ripple, slow, fast = self.build_tree()
        instance = self.instance_with_delay_budget(adder8, 6 * D)
        selector = ModuleSelector(priorities=("delays",))
        assert selector.select_realizations_for(instance) == []
        # only the generic RippleCarryAdder8 was tested, not its children
        assert selector.stats.candidates_tested == 1
        assert selector.stats.pruned_subtrees == 1

    def test_generic_pass_descends(self):
        adder8, ripple, slow, fast = self.build_tree()
        instance = self.instance_with_delay_budget(adder8, 10 * D)
        selector = ModuleSelector(priorities=("delays",))
        assert selector.select_realizations_for(instance) == [fast]
        assert selector.stats.candidates_tested == 3

    def test_pruning_disabled_tests_every_leaf(self):
        adder8, ripple, slow, fast = self.build_tree()
        instance = self.instance_with_delay_budget(adder8, 6 * D)
        selector = ModuleSelector(priorities=("delays",), prune=False)
        assert selector.select_realizations_for(instance) == []
        assert selector.stats.candidates_tested == 2  # both leaves

    def test_overoptimistic_ideal_estimates_are_designer_duty(self):
        """Section 8.2: pruning correctness depends on the estimates."""
        adder8, ripple, slow, fast = self.build_tree()
        ripple.delay_var("x", "y").calculate(20 * D)  # pessimistic "ideal"
        instance = self.instance_with_delay_budget(adder8, 10 * D)
        # wrong estimate prunes away the actually-valid fast adder
        assert select_realizations(instance, priorities=("delays",)) == []


class TestSelectiveTesting:
    def test_priority_subset_skips_other_kinds(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=A, delay_budget=8 * D)
        # testing only bBox ignores the (violated) delay budget
        results = select_realizations(instance, priorities=("bBox",))
        assert results == [rc]

    def test_invalid_priority_rejected(self):
        with pytest.raises(ValueError):
            ModuleSelector(priorities=("bBox", "timing"))

    def test_property_test_counter(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=4.2 * A,
                               delay_budget=11 * D)
        ordered = ModuleSelector(priorities=("bBox", "signals", "delays"))
        ordered.select_realizations_for(instance)
        assert ordered.stats.property_tests == 6  # 2 candidates x 3 kinds

    def test_failing_first_kind_short_circuits(self):
        add8, rc, cs = generic_adder()
        _, instance = alu_with(add8, area_budget=A, delay_budget=11 * D)
        selector = ModuleSelector(priorities=("bBox", "delays"))
        selector.select_realizations_for(instance)
        # CS fails bBox, so its delay test never runs: 2x bBox + 1x delays
        assert selector.stats.property_tests == 3
