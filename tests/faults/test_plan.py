"""FaultPlan semantics: determinism, counters, firing rules, file wrapper."""

import errno
import os

import pytest

from repro.faults import CrashPoint, FaultOpener, FaultPlan


class TestTriggers:
    def test_nth_counts_matching_calls_only(self):
        plan = FaultPlan()
        plan.fail("fsync", nth=3)
        assert plan.decide("fsync", "a") is None
        assert plan.decide("write", "a") is None  # different op: no count
        assert plan.decide("fsync", "b") is None
        action = plan.decide("fsync", "c")
        assert action is not None and action.kind == "error"
        assert plan.decide("fsync", "d") is None  # times=1 exhausted

    def test_pattern_scopes_the_rule(self):
        plan = FaultPlan()
        plan.fail("write", pattern="*wal-*", nth=1)
        assert plan.decide("write", "/tmp/checkpoint-7.json", 10) is None
        assert plan.decide("write", "/tmp/wal-000001.jsonl", 10) is not None

    def test_after_bytes_crossing_computes_torn_keep(self):
        plan = FaultPlan()
        plan.torn_write(at_byte=100, then="error")
        assert plan.decide("write", "f", 60) is None     # 0..60
        action = plan.decide("write", "f", 60)           # 60..120 crosses
        assert action is not None
        assert action.kind == "torn"
        assert action.keep == 40                         # 100 - 60
        assert plan.decide("write", "f", 60) is None     # already fired

    def test_probability_is_seeded_and_reproducible(self):
        def run(seed):
            plan = FaultPlan(seed)
            plan.fail("write", probability=0.5, times=None)
            return [plan.decide("write", "f", 1) is not None
                    for _ in range(64)]

        outcomes = run(7)
        assert outcomes == run(7)            # same seed, same faults
        assert any(outcomes) and not all(outcomes)
        assert outcomes != run(8)            # different seed differs

    def test_times_bounds_firing_not_matching(self):
        plan = FaultPlan()
        plan.fail("write", probability=1.0, times=2)
        fired = [plan.decide("write", "f", 1) is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_first_matching_rule_wins(self):
        plan = FaultPlan()
        plan.fail("write", errno=errno.ENOSPC, nth=1)
        plan.fail("write", errno=errno.EIO, nth=1)
        assert plan.decide("write", "f", 1).errno == errno.ENOSPC
        # Both rules counted the call: the second fires on its nth=1
        # having already *seen* one call — i.e. never.
        assert plan.decide("write", "f", 1) is None

    def test_history_and_summary(self):
        plan = FaultPlan()
        plan.fail_fsync()
        plan.drop("s2c", nth=1)
        plan.decide("fsync", "/j/wal-1.jsonl")
        plan.decide("s2c", "frame", 80)
        assert plan.fired() == 2
        assert plan.fired("fsync") == 1
        assert plan.summary() == {"fsync:error": 1, "s2c:drop": 1}
        assert plan.history[0] == ("fsync", "/j/wal-1.jsonl", "error")


class TestFaultOpener:
    def test_uninstalled_plan_is_passthrough(self, tmp_path):
        opener = FaultOpener()  # empty plan: every decide returns None
        path = str(tmp_path / "f.txt")
        with opener(path, "w") as handle:
            handle.write("hello")
            opener.fsync(handle)
        assert open(path).read() == "hello"
        assert opener.getsize(path) == 5

    def test_torn_write_keeps_prefix_then_crashes(self, tmp_path):
        plan = FaultPlan()
        plan.torn_write(at_byte=3)
        opener = FaultOpener(plan)
        path = str(tmp_path / "f.bin")
        handle = opener(path, "wb")
        with pytest.raises(CrashPoint):
            handle.write(b"abcdef")
        assert opener.crashed
        # The surviving prefix reached the OS before the "kill".
        assert open(path, "rb").read() == b"abc"
        # A dead opener never touches disk again.
        with pytest.raises(CrashPoint):
            opener(path, "ab")
        with pytest.raises(CrashPoint):
            opener.fsync_dir(str(tmp_path))

    def test_error_actions_raise_oserror_with_errno(self, tmp_path):
        plan = FaultPlan()
        plan.enospc("write")
        opener = FaultOpener(plan)
        handle = opener(str(tmp_path / "f"), "wb")
        with pytest.raises(OSError) as info:
            handle.write(b"x")
        assert info.value.errno == errno.ENOSPC
        handle.close()

    def test_replace_crash_windows(self, tmp_path):
        src, dst = str(tmp_path / "a"), str(tmp_path / "b")

        open(src, "w").write("1")
        plan = FaultPlan()
        plan.crash_on("replace")
        with pytest.raises(CrashPoint):
            FaultOpener(plan).replace(src, dst)
        assert os.path.exists(src) and not os.path.exists(dst)

        plan = FaultPlan()
        plan.crash_on("replace-done")
        with pytest.raises(CrashPoint):
            FaultOpener(plan).replace(src, dst)
        assert not os.path.exists(src) and os.path.exists(dst)
