"""Consistent hash ring: determinism, balance, minimal movement, pins."""

import pytest

from repro.fleet.hashring import HashRing


class TestDeterminism:
    def test_placement_is_stable_across_instances(self):
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
        for index in range(200):
            name = f"session-{index}"
            assert a.lookup(name) == b.lookup(name)

    def test_placement_does_not_depend_on_process_hash_seed(self):
        """blake2b, not builtin hash — the router and a restarted
        router must agree on placement."""
        ring = HashRing(["w0", "w1"])
        expected = {"alice": ring.lookup("alice"),
                    "bob": ring.lookup("bob")}
        again = HashRing(["w0", "w1"])
        assert {name: again.lookup(name) for name in expected} == expected


class TestMembership:
    def test_add_and_remove_are_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1
        ring.remove("w0")
        ring.remove("w0")
        assert len(ring) == 0
        assert ring.lookup("anything") is None

    def test_workers_sorted(self):
        ring = HashRing(["w2", "w0", "w1"])
        assert ring.workers == ["w0", "w1", "w2"]
        assert "w1" in ring
        assert "w9" not in ring


class TestBalanceAndMovement:
    def test_arcs_are_roughly_fair(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        counts = {worker: 0 for worker in ring.workers}
        total = 4000
        for index in range(total):
            counts[ring.lookup(f"s{index}")] += 1
        for worker, count in counts.items():
            share = count / total
            assert 0.10 < share < 0.45, \
                f"{worker} owns {share:.0%} of the keyspace"

    def test_removal_moves_only_the_dead_workers_sessions(self):
        ring = HashRing(["w0", "w1", "w2"])
        names = [f"s{index}" for index in range(500)]
        before = {name: ring.lookup(name) for name in names}
        ring.remove("w1")
        for name in names:
            after = ring.lookup(name)
            if before[name] != "w1":
                assert after == before[name], \
                    "a session not owned by the dead worker moved"
            else:
                assert after in ("w0", "w2")

    def test_dead_primary_lands_sessions_on_their_follower(self):
        """The failover invariant: remove(primary) re-routes each
        session exactly onto what lookup_pair called its follower."""
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for index in range(300):
            name = f"s{index}"
            primary, follower = ring.lookup_pair(name)
            trial = HashRing(["w0", "w1", "w2", "w3"])
            trial.remove(primary)
            assert trial.lookup(name) == follower


class TestFollower:
    def test_follower_is_distinct(self):
        ring = HashRing(["w0", "w1", "w2"])
        for index in range(100):
            primary, follower = ring.lookup_pair(f"s{index}")
            assert primary != follower
            assert follower is not None

    def test_single_worker_has_no_follower(self):
        ring = HashRing(["w0"])
        assert ring.lookup_pair("x") == ("w0", None)

    def test_empty_ring(self):
        ring = HashRing()
        assert ring.lookup_pair("x") == (None, None)


class TestPins:
    def test_pin_overrides_hashing(self):
        ring = HashRing(["w0", "w1"])
        name = "pinned-session"
        natural = ring.lookup(name)
        other = next(w for w in ring.workers if w != natural)
        ring.pin(name, other)
        assert ring.lookup(name) == other
        assert ring.pinned(name) == other
        assert ring.pins == {name: other}

    def test_unpin_restores_hashing(self):
        ring = HashRing(["w0", "w1"])
        natural = ring.lookup("s")
        other = next(w for w in ring.workers if w != natural)
        ring.pin("s", other)
        ring.unpin("s")
        assert ring.lookup("s") == natural

    def test_pin_to_unknown_worker_refused(self):
        ring = HashRing(["w0"])
        with pytest.raises(KeyError):
            ring.pin("s", "w9")

    def test_removing_a_worker_clears_its_pins(self):
        ring = HashRing(["w0", "w1"])
        natural = ring.lookup("s")
        other = next(w for w in ring.workers if w != natural)
        ring.pin("s", other)
        ring.remove(other)
        assert ring.pinned("s") is None
        assert ring.lookup("s") == natural

    def test_skip_beats_pin(self):
        """The follower computation must never return the pinned
        primary itself."""
        ring = HashRing(["w0", "w1"])
        ring.pin("s", "w0")
        assert ring.lookup("s", skip=("w0",)) == "w1"

    def test_vnodes_validation(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
