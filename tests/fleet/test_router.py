"""Router: sharded routing, failover, health aggregation, replication.

Uses :class:`repro.fleet.runner.LocalFleet` — real WorkerServers and a
real Router on loopback sockets, driven through the unmodified
:class:`SessionClient`.
"""

import pytest

from repro.fleet.runner import LocalFleet
from repro.session.client import ServerError


@pytest.fixture()
def fleet(tmp_path):
    with LocalFleet(str(tmp_path), workers=3, repl_interval=0.05) as local:
        yield local


def spread_sessions(fleet, count=12, prefix="s"):
    """Session names guaranteed to land on at least two workers."""
    names = [f"{prefix}{index}" for index in range(count)]
    owners = {fleet.worker_of(name) for name in names}
    assert len(owners) > 1, "hash spread degenerate — widen the count"
    return names


class TestRouting:
    def test_sessions_shard_across_workers_transparently(self, fleet):
        names = spread_sessions(fleet)
        with fleet.client() as client:
            for index, name in enumerate(names):
                handle = client.session(name)
                handle.make_var("x", 1)
                handle.assign("v:x", index)
            for index, name in enumerate(names):
                assert client.session(name).value("v:x") == index
        # each session's journal lives under its owning worker's root
        for name in names:
            owner = fleet.worker_of(name)
            server = fleet.workers[owner]
            assert name in server.manager.names()

    def test_ping_answered_by_the_router_itself(self, fleet):
        with fleet.client() as client:
            pong = client.call("ping")
            assert pong["pong"] is True
            assert pong["router"] is True

    def test_sessions_listing_is_the_union(self, fleet):
        names = spread_sessions(fleet, count=8, prefix="u")
        with fleet.client() as client:
            for name in names:
                client.session(name).make_var("x", 1)
            listed = client.call("sessions")["sessions"]
            assert set(names) <= set(listed)

    def test_internal_commands_blocked_from_clients(self, fleet):
        with fleet.client() as client:
            client.session("blocked").make_var("x", 1)
            for command in ("repl-export", "repl-apply", "repl-position",
                            "handover"):
                with pytest.raises(ServerError) as info:
                    client.call(command, session="blocked")
                assert info.value.kind == "bad-request"

    def test_session_required_for_session_commands(self, fleet):
        with fleet.client() as client:
            with pytest.raises(ServerError) as info:
                client.call("assign", var="v:x", value=1, just="USER")
            assert info.value.kind == "bad-request"


class TestHealth:
    def test_fleet_health_aggregates_workers(self, fleet):
        with fleet.client() as client:
            client.session("h0").make_var("x", 1)
            health = client.health()
            assert health["status"] == "ok"
            assert health["role"] == "router"
            assert health["replication"] == "sync"
            assert sorted(health["workers"]) == ["w0", "w1", "w2"]
            for report in health["workers"].values():
                assert report["status"] == "ok"
            assert health["ring"] == ["w0", "w1", "w2"]
            assert health["down"] == []
            owner = fleet.worker_of("h0")
            assert "h0" in health["workers"][owner]["open_sessions"]

    def test_health_reports_a_killed_worker_down(self, fleet):
        with fleet.client() as client:
            client.session("h1").make_var("x", 1)
            victim = fleet.worker_of("h1")
            fleet.kill_worker(victim)
            # touching the victim's session trips failover first
            client.session("h1").value("v:x")
            health = client.health()
            assert victim in health["down"]
            assert health["status"] == "degraded"
            assert health["workers"][victim]["status"] == "down"

    def test_metrics_counters_present(self, fleet):
        with fleet.client() as client:
            client.session("m0").make_var("x", 1)
            client.session("m0").assign("v:x", 2)
            metrics = client.health()["metrics"]
            assert metrics["fleet.requests"] >= 2
            owner = fleet.worker_of("m0")
            assert metrics[f"fleet.worker.{owner}.requests"] >= 2
            assert metrics.get("fleet.repl.ships", 0) >= 1


class TestReplication:
    def test_sync_mode_ships_before_the_ack(self, fleet):
        with fleet.client() as client:
            handle = client.session("r0")
            handle.make_var("x", 1)
            handle.assign("v:x", 7)
            position = handle.fingerprint(stats=False)["position"]
        primary, follower = fleet.router.ring.lookup_pair("r0")
        replica = fleet.workers[follower].replica
        assert replica.verify("r0") == position

    def test_fleet_sync_reports_positions(self, fleet):
        with fleet.client() as client:
            handle = client.session("r1")
            handle.make_var("x", 1)
            position = handle.fingerprint(stats=False)["position"]
            synced = client.call("fleet-sync", session="r1")["synced"]
            primary, follower = fleet.router.ring.lookup_pair("r1")
            assert synced == {"r1": {"primary": primary,
                                     "follower": follower,
                                     "position": position}}

    def test_background_loop_catches_async_followers_up(self, tmp_path):
        with LocalFleet(str(tmp_path), workers=2, replication="async",
                        repl_interval=0.05) as fleet:
            import time

            with fleet.client() as client:
                handle = client.session("lazy")
                handle.make_var("x", 1)
                handle.assign("v:x", 3)
                position = handle.fingerprint(stats=False)["position"]
            primary, follower = fleet.router.ring.lookup_pair("lazy")
            replica = fleet.workers[follower].replica
            deadline = time.time() + 5.0
            while time.time() < deadline:
                if replica.verify("lazy") == position:
                    break
                time.sleep(0.05)
            assert replica.verify("lazy") == position


class TestFailover:
    def test_sessions_resume_on_the_follower_after_kill(self, fleet):
        with fleet.client() as client:
            handle = client.session("f0")
            handle.make_var("x", 1)
            handle.assign("v:x", 11)
            fingerprint = handle.fingerprint()

            primary, follower = fleet.router.ring.lookup_pair("f0")
            fleet.kill_worker(primary)

            # same client, same handle — at most a retryable blip
            assert handle.fingerprint() == fingerprint
            handle.assign("v:x", 12)
            assert handle.value("v:x") == 12
            assert fleet.worker_of("f0") == follower
            metrics = client.health()["metrics"]
            assert metrics["fleet.failovers"] >= 1

    def test_retried_rid_replays_across_failover(self, fleet):
        """The exactly-once spine: a rid applied by the primary must
        answer ``replayed`` from the promoted follower, not re-apply."""
        with fleet.client() as client:
            handle = client.session("f1")
            handle.make_var("x", 1)
            first = client.call("assign", session="f1", var="v:x",
                                value=5, just="USER", rid="kill-rid")
            assert first["accepted"] and "replayed" not in first
            position = handle.fingerprint(stats=False)["position"]

            fleet.kill_worker(fleet.worker_of("f1"))

            replay = client.call("assign", session="f1", var="v:x",
                                 value=5, just="USER", rid="kill-rid")
            assert replay["replayed"] is True
            after = handle.fingerprint(stats=False)["position"]
            assert after == position, "rid re-applied after failover"
            metrics = client.health()["metrics"]
            assert metrics.get("fleet.rid_replays", 0) >= 1

    def test_all_sessions_of_the_dead_worker_move(self, fleet):
        names = spread_sessions(fleet, count=10, prefix="f2-")
        with fleet.client() as client:
            for name in names:
                client.session(name).make_var("x", len(name))
            victim = fleet.worker_of(names[0])
            moved = [name for name in names
                     if fleet.worker_of(name) == victim]
            fleet.kill_worker(victim)
            for name in names:
                assert client.session(name).value("v:x") == len(name)
            for name in moved:
                assert fleet.worker_of(name) != victim
