"""ReplicaStore: shipped WAL lines land in live-session layout.

The decisive property: a replica directory is opened by the ordinary
``Session`` recovery path and must reproduce the primary's fingerprint
bit-identically — replication is just "the same journal, elsewhere".
"""

import os

import pytest

from repro.fleet.replica import ReplicaError, ReplicaGap, ReplicaStore
from repro.session.journal import JournalWriter, encode_entry
from repro.session.session import Session


def ship_lines(directory):
    """All journal lines under ``directory``, as transport strings."""
    lines = []
    for name in sorted(os.listdir(directory)):
        if name.startswith("wal-"):
            with open(os.path.join(directory, name), "rb") as handle:
                lines.extend(line[:-1].decode()
                             for line in handle if line.endswith(b"\n"))
    return lines


class TestApply:
    def test_lines_land_verbatim_and_position_advances(self, tmp_path):
        store = ReplicaStore(str(tmp_path / "replica"))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2, 3)]
        assert store.apply("alpha", lines) == 3
        assert store.position("alpha") == 3
        assert ship_lines(store.session_dir("alpha")) == lines

    def test_reship_is_idempotent(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2)]
        store.apply("alpha", lines)
        assert store.apply("alpha", lines) == 2  # no-op, no error
        assert ship_lines(store.session_dir("alpha")) == lines

    def test_skip_ahead_raises_gap(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        line5 = encode_entry({"op": "assign", "seq": 5, "var": "v:x",
                              "value": 0})[:-1].decode()
        with pytest.raises(ReplicaGap):
            store.apply("alpha", [line5])

    def test_corrupt_line_refused(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        with pytest.raises(ReplicaError):
            store.apply("alpha", ['00000000 {"op":"assign","seq":1}'])

    def test_rotation_honours_segment_budget(self, tmp_path):
        store = ReplicaStore(str(tmp_path), segment_max_bytes=120)
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in range(1, 13)]
        store.apply("alpha", lines)
        segments = [name for name in os.listdir(store.session_dir("alpha"))
                    if name.startswith("wal-")]
        assert len(segments) > 1
        assert ship_lines(store.session_dir("alpha")) == lines


class TestStateRebuild:
    def test_position_rebuilt_from_disk(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2, 3)]
        store.apply("alpha", lines)
        fresh = ReplicaStore(str(tmp_path))
        assert fresh.position("alpha") == 3

    def test_torn_tail_is_repaired_on_scan(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2)]
        store.apply("alpha", lines)
        (segment,) = [os.path.join(store.session_dir("alpha"), name)
                      for name in os.listdir(store.session_dir("alpha"))
                      if name.startswith("wal-")]
        with open(segment, "ab") as handle:
            handle.write(b"deadbeef {\"to")  # torn mid-ship
        fresh = ReplicaStore(str(tmp_path))
        assert fresh.position("alpha") == 2
        line3 = encode_entry({"op": "assign", "seq": 3, "var": "v:x",
                              "value": 3})[:-1].decode()
        assert fresh.apply("alpha", [line3]) == 3
        assert ship_lines(store.session_dir("alpha")) == lines + [line3]


class TestCheckpoints:
    def test_checkpoint_supersedes_older_lines(self, tmp_path):
        """A shipped snapshot newer than everything held replaces the
        segments wholesale — recovery starts from it."""
        primary = tmp_path / "primary"
        session = Session("alpha", directory=str(primary))
        session.make_variable("x", 1)
        for value in range(5):
            session.assign("v:x", value)
        session.checkpoint()
        import json
        (ckpt,) = [os.path.join(primary, name)
                   for name in os.listdir(primary)
                   if name.startswith("ckpt-")]
        snapshot = json.load(open(ckpt))
        position = session.position
        session.close()

        store = ReplicaStore(str(tmp_path / "replica"))
        assert store.apply("alpha", [], checkpoint=snapshot) == position
        assert store.checkpoint_seq("alpha") == position
        # tail lines continue right after the snapshot
        line = encode_entry({"op": "assign", "seq": position + 1,
                             "var": "v:x", "value": 99})[:-1].decode()
        assert store.apply("alpha", [line]) == position + 1

    def test_stale_checkpoint_is_ignored(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2, 3)]
        store.apply("alpha", lines)
        store.apply("alpha", [], checkpoint={"seq": 2, "stale": True})
        store.apply("alpha", [], checkpoint={"seq": 2, "stale": True})
        assert store.position("alpha") == 3

    def test_checkpoint_without_seq_refused(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        with pytest.raises(ReplicaError):
            store.apply("alpha", [], checkpoint={"no": "seq"})


class TestPromotion:
    def test_replica_recovers_to_the_primary_fingerprint(self, tmp_path):
        """End to end without a network: run a primary session, ship
        its raw journal bytes, open the replica dir as a session, and
        compare fingerprints — including stats."""
        primary_dir = tmp_path / "primary"
        session = Session("alpha", directory=str(primary_dir))
        session.make_variable("width")
        session.make_variable("height")
        session.make_variable("area")
        session.add_constraint("sum", ["v:area", "v:width", "v:height"])
        for step in range(8):
            session.assign("v:width", step)
            session.assign("v:height", 2 * step)
        fingerprint = session.fingerprint()
        session.close()

        store = ReplicaStore(str(tmp_path / "replica"))
        store.apply("alpha", ship_lines(str(primary_dir)))
        promoted = Session("alpha",
                           directory=store.session_dir("alpha"))
        assert promoted.fingerprint() == fingerprint
        promoted.close()

    def test_verify_rescans_from_disk(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        lines = [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                               "value": seq})[:-1].decode()
                 for seq in (1, 2)]
        store.apply("alpha", lines)
        # another writer (a promoted session) extends the journal
        # behind the store's back
        writer = JournalWriter(store.session_dir("alpha"), next_seq=3)
        writer.append({"op": "assign", "var": "v:x", "value": 9})
        writer.close()
        assert store.verify("alpha") == 3

    def test_forget_drops_the_cache(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        line = encode_entry({"op": "assign", "seq": 1, "var": "v:x",
                             "value": 1})[:-1].decode()
        store.apply("alpha", [line])
        writer = JournalWriter(store.session_dir("alpha"), next_seq=2)
        writer.append({"op": "assign", "var": "v:x", "value": 2})
        writer.close()
        store.forget("alpha")
        assert store.position("alpha") == 2

    def test_names_lists_replicated_sessions(self, tmp_path):
        store = ReplicaStore(str(tmp_path))
        line = encode_entry({"op": "assign", "seq": 1, "var": "v:x",
                             "value": 1})[:-1].decode()
        store.apply("b-session", [line])
        store.apply("a-session", [line])
        assert store.names() == ["a-session", "b-session"]
