"""Live-fleet anti-entropy: the router's ``scrub`` command.

The acceptance path of the storage PR: a session's journal on its
primary worker gets torn mid-journal — damage local truncation cannot
fix — and the router repairs it by exporting the exact missing range
from the follower's replica and shipping it back, without losing a
single acknowledged entry or the exactly-once rid dedup.
"""

import pytest

from repro.fleet.runner import LocalFleet
from repro.session.client import ServerError
from repro.session.journal import _decode_line


@pytest.fixture()
def fleet(tmp_path):
    with LocalFleet(str(tmp_path), workers=3, repl_interval=0.05) as local:
        yield local


def populate(client, name, assigns=30):
    handle = client.session(name)
    handle.make_var("x", 0)
    for value in range(assigns):
        handle.assign("v:x", value)
    return handle


def split_segment(store, at_line):
    """Split the session's single segment in two at a line boundary —
    the layout a rotated journal would have."""
    (first, key), = store.segments()
    data = store.read_segment(key)
    lines = data.splitlines(keepends=True)
    head, tail = lines[:at_line], lines[at_line:]
    tail_first = _decode_line(tail[0])["seq"]
    store.delete_segment(key)
    for start, chunk in ((first, head), (tail_first, tail)):
        appender = store.create_segment(start, durable=True)
        for line in chunk:
            appender.write(line)
        appender.flush()
        appender.sync()
        appender.close()
    store.sync_root()
    return store.segments()


class TestFleetScrub:
    def test_torn_mid_journal_segment_is_reshipped_from_follower(
            self, fleet):
        name = "scrubbed"
        with fleet.client() as client:
            populate(client, name)
            client.call("assign", session=name, var="v:x", value=777,
                        rid="once:1")
            before = client.call("fingerprint", session=name)
            assert client.session(name).close()

            owner = fleet.worker_of(name)
            store = fleet.workers[owner].manager.store.session(name)
            segments = split_segment(store, at_line=10)
            # Tear the FIRST segment mid-line: not a torn tail, so
            # local truncation must refuse and the range must travel.
            first_key = segments[0][1]
            store.truncate_segment(first_key,
                                   store.segment_size(first_key) - 7)

            report = client.call("scrub", session=name)
            assert report["ok"], report
            assert report["worker"] == owner
            assert report["follower"] is not None
            assert report["shipped_ranges"] == 1
            assert report["session"] == name

            after = client.call("fingerprint", session=name)
            assert after == before
            assert client.session(name).value("v:x") == 777

    def test_retried_rid_still_dedupes_after_repair(self, fleet):
        """Exactly-once survives the repair: the rid dedup set is
        rebuilt from the re-shipped journal bytes."""
        name = "scrubbed-rid"
        with fleet.client() as client:
            populate(client, name)
            client.call("assign", session=name, var="v:x", value=123,
                        rid="once:2")
            position = client.call("fingerprint", session=name)["position"]
            assert client.session(name).close()

            owner = fleet.worker_of(name)
            store = fleet.workers[owner].manager.store.session(name)
            segments = split_segment(store, at_line=8)
            first_key = segments[0][1]
            store.truncate_segment(first_key,
                                   store.segment_size(first_key) - 5)
            assert client.call("scrub", session=name)["ok"]

            # The retry must replay, not re-apply.
            client.call("assign", session=name, var="v:x", value=123,
                        rid="once:2")
            assert client.call("fingerprint",
                               session=name)["position"] == position

    def test_clean_session_scrub_is_a_noop_report(self, fleet):
        name = "pristine"
        with fleet.client() as client:
            populate(client, name, assigns=5)
            assert client.session(name).close()
            report = client.call("scrub", session=name)
            assert report["ok"] and report["clean"]
            assert report.get("shipped_ranges", 0) == 0

    def test_open_session_is_scrubbed_but_never_repaired(self, fleet):
        """A live writer owns its tail: scrub reports, hands off."""
        name = "live"
        with fleet.client() as client:
            populate(client, name, assigns=5)
            report = client.call("scrub", session=name)
            assert report["open"] is True
            assert report["ok"]

    def test_scrub_without_a_session_name_is_rejected(self, fleet):
        with fleet.client() as client:
            with pytest.raises(ServerError) as info:
                client.call("scrub")
            assert info.value.kind == "bad-request"

    def test_workers_refuse_direct_scrub_frames_from_clients(self, fleet):
        name = "direct"
        with fleet.client() as client:
            populate(client, name, assigns=3)
            with pytest.raises(ServerError):
                client.call("store-scrub", session=name)
