"""Live migration: checkpoint + journal-tail handover + router remap."""

import threading

import pytest

from repro.fleet.runner import LocalFleet
from repro.session.client import ServerError


@pytest.fixture()
def fleet(tmp_path):
    with LocalFleet(str(tmp_path), workers=2, repl_interval=0.05) as local:
        yield local


def other_worker(fleet, name):
    owner = fleet.worker_of(name)
    return owner, next(w for w in fleet.router.ring.workers if w != owner)


class TestMigrate:
    def test_migrate_moves_pins_and_preserves_state(self, fleet):
        with fleet.client() as client:
            handle = client.session("mig0")
            handle.make_var("x", 1)
            handle.assign("v:x", 4)
            fingerprint = handle.fingerprint()
            position = fingerprint["position"]

            source, target = other_worker(fleet, "mig0")
            result = client.call("migrate", session="mig0", target=target)
            assert result["migrated"] is True
            assert result["from"] == source
            assert result["to"] == target
            assert result["position"] == position

            assert fleet.worker_of("mig0") == target
            assert fleet.router.ring.pinned("mig0") == target
            assert handle.fingerprint() == fingerprint
            assert "mig0" in fleet.workers[target].manager.names()
            handle.assign("v:x", 5)
            assert handle.value("v:x") == 5
            counters = client.health()["metrics"]
            assert counters["fleet.migrations"] == 1

    def test_migrate_to_current_owner_is_a_noop(self, fleet):
        with fleet.client() as client:
            client.session("mig1").make_var("x", 1)
            owner = fleet.worker_of("mig1")
            result = client.call("migrate", session="mig1", target=owner)
            assert result["migrated"] is False

    def test_migrate_to_unknown_worker_refused(self, fleet):
        with fleet.client() as client:
            client.session("mig2").make_var("x", 1)
            with pytest.raises(ServerError) as info:
                client.call("migrate", session="mig2", target="w9")
            assert info.value.kind == "bad-request"

    def test_migrate_requires_a_session(self, fleet):
        with fleet.client() as client:
            with pytest.raises(ServerError) as info:
                client.call("migrate", target="w0")
            assert info.value.kind == "bad-request"

    def test_migrated_session_survives_checkpointed_history(self, fleet):
        """Migration after a checkpoint ships snapshot + tail, not the
        whole journal; the recovered fingerprint must not notice."""
        with fleet.client() as client:
            handle = client.session("mig3")
            handle.make_var("x", 1)
            for value in range(6):
                handle.assign("v:x", value)
            handle.checkpoint()
            handle.assign("v:x", 99)
            fingerprint = handle.fingerprint()

            _source, target = other_worker(fleet, "mig3")
            result = client.call("migrate", session="mig3", target=target)
            assert result["migrated"] is True
            assert handle.fingerprint() == fingerprint


class TestMigrateUnderLoad:
    def test_concurrent_writes_all_land_exactly_once(self, fleet):
        """Migration mid-stream: a writer hammers the session while it
        moves; every assign applies exactly once and the final position
        is exact."""
        writes = 30
        errors = []
        started = threading.Event()

        def hammer():
            try:
                with fleet.client() as client:
                    handle = client.session("busy")
                    for step in range(writes):
                        handle.assign("v:x", 1000 + step)
                        if step == 3:
                            started.set()
            except Exception as error:  # pragma: no cover - fail below
                errors.append(error)
                started.set()

        with fleet.client() as client:
            handle = client.session("busy")
            handle.make_var("x", 1)
            base = handle.fingerprint(stats=False)["position"]

            thread = threading.Thread(target=hammer)
            thread.start()
            assert started.wait(10.0)
            _source, target = other_worker(fleet, "busy")
            result = client.call("migrate", session="busy", target=target)
            thread.join(30.0)
            assert not thread.is_alive()
            assert errors == []
            assert result["migrated"] is True

            final = handle.fingerprint(stats=False)
            assert final["position"] == base + writes
            assert handle.value("v:x") == 1000 + writes - 1
            assert fleet.worker_of("busy") == target
