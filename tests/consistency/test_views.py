"""Tests for views and controllers (sections 3.3.1, 6.5.2)."""

import pytest

from repro.consistency import Controller, FunctionView, View
from repro.stem import CellClass, Rect


class TestFunctionView:
    def test_lazy_calculation(self):
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: f"view of {model.name}")
        assert view.calculations == 0
        assert view.data == "view of X"
        assert view.calculations == 1
        assert view.data == "view of X"
        assert view.calculations == 1

    def test_erased_on_model_change(self):
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: len(model.subcells))
        assert view.data == 0
        child = CellClass("CHILD")
        child.instantiate(cell, "c1")
        assert view.outdated
        assert view.data == 1

    def test_selective_erasure_by_aspect(self):
        """A net-list-like view survives pure-layout changes (§6.5.2)."""
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: model.name,
                            aspects=["structure", "connectivity"])
        view.data
        cell.changed("layout")
        assert not view.outdated
        cell.changed("structure")
        assert view.outdated

    def test_aspectless_broadcast_always_erases(self):
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: model.name,
                            aspects=["structure"])
        view.data
        cell.changed(None)
        assert view.outdated

    def test_release(self):
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: model.name)
        view.data
        view.release()
        cell.changed("structure")
        assert not view.outdated


class TestViewBase:
    def test_calculate_is_abstract(self):
        cell = CellClass("X")
        view = View(cell)
        with pytest.raises(NotImplementedError):
            view.data


class TestController:
    def test_menu_dispatch(self):
        cell = CellClass("X")
        controller = Controller(cell)
        controller.add_action("set box",
                              lambda model, box: model.set_bounding_box(box))
        controller.add_action("get box", lambda model: model.bounding_box())
        controller.perform("set box", Rect.of_extent(4, 2))
        assert controller.perform("get box") == Rect.of_extent(4, 2)

    def test_menu_listing(self):
        controller = Controller(CellClass("X"))
        controller.add_action("b", lambda m: None)
        controller.add_action("a", lambda m: None)
        assert controller.menu() == ["a", "b"]

    def test_unknown_action(self):
        controller = Controller(CellClass("X"))
        with pytest.raises(KeyError):
            controller.perform("missing")

    def test_controller_links_view(self):
        cell = CellClass("X")
        view = FunctionView(cell, lambda model: model.name)
        controller = Controller(cell, view)
        assert controller.view is view
        assert controller.model is cell
