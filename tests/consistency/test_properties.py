"""Tests for property variables and implicit invocation (sections 6.3, 6.5.1)."""

import pytest

from repro.consistency import PropertyVariable, add_stored_view
from repro.core import UpdateConstraint, Variable


class Model:
    """A parent with a computed property and a call counter."""

    def __init__(self, base=10):
        self.name = "model"
        self.base = base
        self.calls = 0
        self.variables = {}

    def compute_area(self):
        self.calls += 1
        return self.base * 2

    def compute_scaled(self, factor):
        self.calls += 1
        return self.base * factor


class TestImplicitInvocation:
    def test_lazy_recalculation_on_read(self):
        model = Model()
        prop = PropertyVariable(model, "area", recalculate="compute_area")
        assert model.calls == 0
        assert prop.value == 20
        assert model.calls == 1

    def test_cached_value_not_recalculated(self):
        model = Model()
        prop = PropertyVariable(model, "area", recalculate="compute_area")
        assert prop.value == 20
        assert prop.value == 20
        assert model.calls == 1

    def test_arguments_passed_to_message(self):
        model = Model(base=5)
        prop = PropertyVariable(model, "scaled", recalculate="compute_scaled",
                                arguments=(3,))
        assert prop.value == 15

    def test_callable_recalculate(self):
        model = Model(base=7)
        prop = PropertyVariable(model, "neg",
                                recalculate=lambda m: -m.base)
        assert prop.value == -7

    def test_eval_flag_prevents_recursion(self):
        model = Model()
        prop = PropertyVariable(model, "self_ref")

        def recursive(_model):
            # reading the property inside its own recalculation must not loop
            return (prop.value or 0) + 1

        prop.recalculate_message = recursive
        assert prop.value == 1

    def test_stored_value_does_not_trigger(self):
        model = Model()
        prop = PropertyVariable(model, "area", recalculate="compute_area")
        assert prop.stored_value is None
        assert model.calls == 0

    def test_without_message_stays_none(self):
        prop = PropertyVariable(None, "empty")
        assert prop.value is None

    def test_none_result_not_stored(self):
        model = Model()
        prop = PropertyVariable(model, "nothing",
                                recalculate=lambda m: None)
        assert prop.value is None
        assert prop.stored_value is None


class TestUpdateConstraintIntegration:
    def test_erasure_then_lazy_recalculation(self):
        model = Model()
        source = Variable(1, name="source")
        prop = PropertyVariable(model, "area", recalculate="compute_area",
                                context=source.context)
        UpdateConstraint([source], [prop])
        assert prop.value == 20
        model.base = 50
        source.set(2)  # dependency changed: property erased
        assert prop.stored_value is None
        assert prop.value == 100  # recalculated on demand
        assert model.calls == 2

    def test_no_recalculation_without_reads(self):
        """Section 6.3: repeated updates cost nothing until the next read."""
        model = Model()
        source = Variable(1, name="source")
        prop = PropertyVariable(model, "area", recalculate="compute_area",
                                context=source.context)
        UpdateConstraint([source], [prop])
        for i in range(10):
            source.set(i + 2)
        assert model.calls == 0

    def test_add_stored_view_wires_everything(self):
        model = Model()
        source = Variable(1, name="source")
        prop = add_stored_view(model, "area", "compute_area",
                               watched=[source])
        assert model.variables["area"] is prop
        assert prop.value == 20
        source.set(5)
        assert prop.stored_value is None

    def test_recalculation_counter(self):
        model = Model()
        source = Variable(1, name="source")
        prop = add_stored_view(model, "area", "compute_area",
                               watched=[source])
        prop.value; prop.value
        source.set(2)
        prop.value
        assert prop.recalculations == 2
