"""Tests for process-corner delay values flowing through delay networks."""

import pytest

from repro.checking.corners import Corners, derate
from repro.core import (
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.stem import CellClass


class TestCornersValue:
    def test_ordering_invariant_enforced(self):
        with pytest.raises(ValueError):
            Corners(1.0, 2.0, 3.0)  # slow must be the largest

    def test_addition(self):
        total = Corners(10, 8, 6) + Corners(5, 4, 3)
        assert total == Corners(15, 12, 9)

    def test_scalar_mixing(self):
        assert Corners(10, 8, 6) + 2 == Corners(12, 10, 8)
        assert 2 + Corners(10, 8, 6) == Corners(12, 10, 8)

    def test_scaling(self):
        assert Corners(10, 8, 6) * 2 == Corners(20, 16, 12)
        with pytest.raises(ValueError):
            Corners(10, 8, 6) * -1

    def test_comparison_by_worst_case(self):
        a = Corners(10, 5, 1)
        b = Corners(9, 9, 9)
        assert a > b
        assert b < a
        assert a <= 10 and a >= 10  # vs scalar: worst case 10

    def test_derate(self):
        c = derate(10.0, slow_factor=1.5, fast_factor=0.5)
        assert c == Corners(15.0, 10.0, 5.0)
        with pytest.raises(ValueError):
            derate(10.0, slow_factor=0.9)

    def test_of_passthrough(self):
        c = Corners(3, 2, 1)
        assert Corners.of(c) is c
        assert Corners.of(5) == Corners(5, 5, 5)

    def test_is_close_to(self):
        assert Corners(1.0, 0.5, 0.1).is_close_to(
            Corners(1.0 + 1e-12, 0.5, 0.1))


class TestCornersInFunctionalNetworks:
    def test_sum_and_max_propagate_all_corners(self):
        d1 = Variable(derate(10.0), name="d1")
        d2 = Variable(derate(20.0), name="d2")
        d3 = Variable(derate(28.0), name="d3")
        path_a = Variable(name="path_a")
        path_b = Variable(name="path_b")
        worst = Variable(name="worst")
        UniAdditionConstraint(path_a, [d1, d2])
        UniAdditionConstraint(path_b, [d3])
        UniMaximumConstraint(worst, [path_a, path_b])
        # path_a: typ 30 slow 39; path_b: typ 28 slow 36.4 -> path_a wins
        assert worst.value == derate(30.0)
        assert worst.value.slow == pytest.approx(39.0)

    def test_worst_case_can_differ_from_typical_winner(self):
        """Corner analysis: the slow-corner winner decides."""
        a = Variable(Corners(40.0, 20.0, 10.0), name="a")  # wild device
        b = Variable(Corners(35.0, 30.0, 25.0), name="b")  # stable device
        worst = Variable(name="worst")
        UniMaximumConstraint(worst, [a, b])
        assert worst.value is a.value  # slow corner 40 beats 35

    def test_bound_checks_worst_case(self):
        d = Variable(name="d")
        UpperBoundConstraint(d, 12.0)
        assert d.set(Corners(12.0, 9.0, 7.0))
        assert not d.set(Corners(12.5, 9.0, 7.0))


class TestCornersInDelayNetworks:
    def test_hierarchical_corner_analysis(self):
        stage = CellClass("STAGE")
        stage.define_signal("a", "in")
        stage.define_signal("y", "out")
        stage.declare_delay("a", "y", estimate=derate(10.0))

        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        spec = top.declare_delay("in1", "out1")
        UpperBoundConstraint(spec, 30.0)  # worst case must fit 30

        s1 = stage.instantiate(top, "s1")
        s2 = stage.instantiate(top, "s2")
        nin = top.add_net("nin"); nin.connect_io("in1"); nin.connect(s1, "a")
        mid = top.add_net("mid"); mid.connect(s1, "y"); mid.connect(s2, "a")
        nout = top.add_net("nout"); nout.connect(s2, "y")
        nout.connect_io("out1")

        value = top.delay_value("in1", "out1")
        assert value == derate(20.0)
        assert value.slow == pytest.approx(26.0)
        # a slightly slower stage busts the worst-case budget even though
        # the typical case (2 x 12 = 24) would fit
        assert not stage.delay_var("a", "y").calculate(derate(12.0))
        assert top.delay_var("in1", "out1").value == derate(20.0)
