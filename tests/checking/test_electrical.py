"""Tests for electrical rule checking (RC-model extension of chapter 7)."""

import pytest

from repro.checking.electrical import (
    DriveLoadConstraint,
    check_cell,
    watch_net,
)
from repro.stem import CellClass


def driver_cell(max_load=None, max_fanout=None):
    cell = CellClass("DRV")
    cell.define_signal("y", "out", output_resistance=1e3,
                       max_load_capacitance=max_load, max_fanout=max_fanout)
    return cell


def sink_cell(c_in=1e-12):
    cell = CellClass("SNK")
    cell.define_signal("a", "in", load_capacitance=c_in)
    return cell


def wire_up(driver, sinks):
    top = CellClass("TOP")
    d = driver.instantiate(top, "d")
    net = top.add_net("n")
    net.connect(d, "y")
    instances = []
    for i, sink in enumerate(sinks):
        s = sink.instantiate(top, f"s{i}")
        net.connect(s, "a")
        instances.append(s)
    return top, net, d, instances


class TestIncrementalWatch:
    def test_within_limits(self):
        top, net, *_ = wire_up(driver_cell(max_load=5e-12),
                               [sink_cell(1e-12)] * 3)
        watch = watch_net(net)
        assert watch.refresh()

    def test_overload_detected_on_refresh(self, context):
        top, net, *_ = wire_up(driver_cell(max_load=2e-12),
                               [sink_cell(1e-12)] * 3)
        watch = watch_net(net)
        assert not watch.refresh()
        assert context.handler.records

    def test_incremental_detection_on_growth(self):
        sink = sink_cell(1e-12)
        top, net, d, _ = wire_up(driver_cell(max_load=2.5e-12), [sink] * 2)
        watch = watch_net(net)
        assert watch.refresh()
        extra = sink.instantiate(top, "extra")
        net.connect(extra, "a")
        assert not watch.refresh()

    def test_fanout_limit(self):
        top, net, *_ = wire_up(driver_cell(max_fanout=2),
                               [sink_cell()] * 3)
        watch = watch_net(net)
        assert not watch.refresh()

    def test_unlimited_driver_never_complains(self):
        top, net, *_ = wire_up(driver_cell(), [sink_cell(1.0)] * 10)
        assert watch_net(net).refresh()

    def test_release_detaches(self):
        top, net, *_ = wire_up(driver_cell(max_load=1e-12), [sink_cell()])
        watch = watch_net(net)
        watch.release()
        assert watch.load_constraint.arguments == []


class TestBatchSweep:
    def test_clean_design(self):
        top, net, *_ = wire_up(driver_cell(max_load=5e-12),
                               [sink_cell(1e-12)] * 2)
        assert check_cell(top) == []

    def test_overload_finding(self):
        top, net, *_ = wire_up(driver_cell(max_load=1e-12),
                               [sink_cell(1e-12)] * 2)
        findings = check_cell(top)
        assert [f.rule for f in findings] == ["overload"]
        assert "exceeds drive" in findings[0].detail

    def test_fanout_finding(self):
        top, net, *_ = wire_up(driver_cell(max_fanout=1),
                               [sink_cell()] * 2)
        assert [f.rule for f in check_cell(top)] == ["fanout"]

    def test_floating_net(self):
        top = CellClass("TOP")
        s = sink_cell().instantiate(top, "s")
        net = top.add_net("n")
        net.connect(s, "a")
        assert [f.rule for f in check_cell(top)] == ["floating"]

    def test_drive_conflict(self):
        top = CellClass("TOP")
        d1 = driver_cell().instantiate(top, "d1")
        d2 = driver_cell().instantiate(top, "d2")
        net = top.add_net("n")
        net.connect(d1, "y")
        net.connect(d2, "y")
        assert [f.rule for f in check_cell(top)] == ["drive-conflict"]

    def test_single_driver_check_optional(self):
        top = CellClass("TOP")
        s = sink_cell().instantiate(top, "s")
        net = top.add_net("n")
        net.connect(s, "a")
        assert check_cell(top, require_single_driver=False) == []

    def test_parent_io_counts_as_driver(self):
        top = CellClass("TOP")
        top.define_signal("x", "in")
        s = sink_cell().instantiate(top, "s")
        net = top.add_net("n")
        net.connect_io("x")
        net.connect(s, "a")
        assert check_cell(top) == []
