"""Tests for delay networks and hierarchical delay checking (section 7.3)."""

import pytest

from repro.core import UpperBoundConstraint, USER
from repro.stem import CellClass
from repro.checking.delay import enumerate_delay_paths


def leaf(name, d_in="a", d_out="y", delay=10.0, r_out=0.0, c_in=0.0):
    cell = CellClass(name)
    cell.define_signal(d_in, "in", load_capacitance=c_in)
    cell.define_signal(d_out, "out", output_resistance=r_out)
    cell.declare_delay(d_in, d_out, estimate=delay)
    return cell


class TestInstanceDelayAdjustment:
    def test_instance_inherits_class_estimate(self):
        cell = leaf("INV", delay=5.0)
        instance = cell.instantiate()
        assert instance.delay_var("a", "y").value == 5.0

    def test_rc_loading_penalty(self):
        """instance delay = class delay + R_driver(input net) * C_load(output net)."""
        driver = leaf("DRV", delay=1.0, r_out=3.0)
        middle = leaf("MID", delay=10.0, r_out=2.0, c_in=1.0)
        sink = leaf("SNK", delay=1.0, c_in=4.0)
        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        d = driver.instantiate(top, "d")
        m = middle.instantiate(top, "m")
        s = sink.instantiate(top, "s")
        top.add_net("n0").connect_io("in1")
        top.net("n0").connect(d, "a")
        n1 = top.add_net("n1")
        n1.connect(d, "y"); n1.connect(m, "a")
        n2 = top.add_net("n2")
        n2.connect(m, "y"); n2.connect(s, "a")
        n3 = top.add_net("n3")
        n3.connect(s, "y"); n3.connect_io("out1")
        # middle: driven through n1 (R=3.0), loads n2 with sink C=4.0
        assert m.delay_var("a", "y").value == pytest.approx(10.0 + 3.0 * 4.0)

    def test_class_delay_change_readjusts_instances(self):
        driver = leaf("DRV", delay=1.0, r_out=2.0)
        gate = leaf("GATE", delay=10.0, c_in=1.0)
        sink = leaf("SNK", delay=1.0, c_in=3.0)
        top = CellClass("TOP")
        d = driver.instantiate(top, "d")
        g = gate.instantiate(top, "g")
        s = sink.instantiate(top, "s")
        n1 = top.add_net("n1"); n1.connect(d, "y"); n1.connect(g, "a")
        n2 = top.add_net("n2"); n2.connect(g, "y"); n2.connect(s, "a")
        assert g.delay_var("a", "y").value == pytest.approx(16.0)
        gate.delay_var("a", "y").set(20.0)
        assert g.delay_var("a", "y").value == pytest.approx(26.0)

    def test_user_instance_delay_not_readjusted(self):
        cell = leaf("INV", delay=5.0)
        instance = cell.instantiate()
        instance.delay_var("a", "y").set(99.0, USER)
        cell.delay_var("a", "y").set(7.0)
        assert instance.delay_var("a", "y").value == 99.0


def cascade(n=3, delay=10.0, r_out=1.0, c_in=2.0):
    """n identical stages in series inside TOP, in1 -> out1."""
    stage = leaf("STAGE", delay=delay, r_out=r_out, c_in=c_in)
    top = CellClass("TOP")
    top.define_signal("in1", "in")
    top.define_signal("out1", "out")
    top.declare_delay("in1", "out1")
    instances = [stage.instantiate(top, f"s{i}") for i in range(n)]
    first_net = top.add_net("nin")
    first_net.connect_io("in1")
    first_net.connect(instances[0], "a")
    for i in range(n - 1):
        net = top.add_net(f"n{i}")
        net.connect(instances[i], "y")
        net.connect(instances[i + 1], "a")
    last = top.add_net("nout")
    last.connect(instances[-1], "y")
    last.connect_io("out1")
    return stage, top, instances


class TestPathEnumeration:
    def test_single_cascade_path(self):
        stage, top, instances = cascade(3)
        paths = enumerate_delay_paths(top, "in1", "out1")
        assert len(paths) == 1
        assert paths[0] == [i.delay_var("a", "y") for i in instances]

    def test_no_path_without_connectivity(self):
        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        top.declare_delay("in1", "out1")
        assert enumerate_delay_paths(top, "in1", "out1") == []

    def test_parallel_paths(self):
        stage = leaf("STAGE", delay=10.0)
        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        top.declare_delay("in1", "out1")
        s1 = stage.instantiate(top, "s1")
        s2 = stage.instantiate(top, "s2")
        nin = top.add_net("nin")
        nin.connect_io("in1"); nin.connect(s1, "a"); nin.connect(s2, "a")
        nout = top.add_net("nout")
        nout.connect(s1, "y"); nout.connect(s2, "y"); nout.connect_io("out1")
        paths = enumerate_delay_paths(top, "in1", "out1")
        assert len(paths) == 2

    def test_undeclared_subcell_delays_ignored(self):
        """Only declared (critical) delays participate (section 7.3)."""
        silent = CellClass("SILENT")
        silent.define_signal("a", "in")
        silent.define_signal("y", "out")
        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        top.declare_delay("in1", "out1")
        s = silent.instantiate(top, "s")
        nin = top.add_net("nin"); nin.connect_io("in1"); nin.connect(s, "a")
        nout = top.add_net("nout"); nout.connect(s, "y"); nout.connect_io("out1")
        assert enumerate_delay_paths(top, "in1", "out1") == []


class TestDelayNetwork:
    def test_cascade_total(self):
        stage, top, instances = cascade(3, delay=10.0, r_out=1.0, c_in=2.0)
        # middle stages are driven with R=1 and load C=2 -> penalty 2.0;
        # the first stage is driven by the parent io (R=0).
        value = top.delay_value("in1", "out1")
        expected = sum(i.delay_var("a", "y").value for i in instances)
        assert value == pytest.approx(expected)

    def test_longest_path_wins(self):
        fast = leaf("FAST", delay=1.0)
        slow = leaf("SLOW", delay=50.0)
        top = CellClass("TOP")
        top.define_signal("in1", "in")
        top.define_signal("out1", "out")
        top.declare_delay("in1", "out1")
        f = fast.instantiate(top, "f")
        s = slow.instantiate(top, "s")
        nin = top.add_net("nin")
        nin.connect_io("in1"); nin.connect(f, "a"); nin.connect(s, "a")
        nout = top.add_net("nout")
        nout.connect(f, "y"); nout.connect(s, "y"); nout.connect_io("out1")
        assert top.delay_value("in1", "out1") == pytest.approx(50.0)

    def test_incremental_update_through_hierarchy(self):
        stage, top, instances = cascade(2, delay=10.0, r_out=0.0, c_in=0.0)
        assert top.delay_value("in1", "out1") == pytest.approx(20.0)
        stage.delay_var("a", "y").set(15.0)
        assert top.delay_var("in1", "out1").value == pytest.approx(30.0)

    def test_spec_violation_detected_hierarchically(self, context):
        stage, top, instances = cascade(2, delay=10.0, r_out=0.0, c_in=0.0)
        UpperBoundConstraint(top.delay_var("in1", "out1"), 25.0)
        assert top.delay_value("in1", "out1") == pytest.approx(20.0)
        assert not stage.delay_var("a", "y").set(15.0)
        # everything restored
        assert stage.delay_var("a", "y").value == pytest.approx(10.0)
        assert top.delay_var("in1", "out1").value == pytest.approx(20.0)
        assert context.handler.records

    def test_structure_change_discards_network(self):
        stage, top, instances = cascade(2)
        top.delay_value("in1", "out1")
        assert top.delay_network is not None
        extra = stage.instantiate(top, "late")
        assert top.delay_network is None

    def test_network_rebuilt_on_demand_after_discard(self):
        stage, top, instances = cascade(2, delay=10.0, r_out=0.0, c_in=0.0)
        assert top.delay_value("in1", "out1") == pytest.approx(20.0)
        # grow the cascade: s1 -> extra -> out
        top.net("nout").disconnect(instances[-1], "y")
        extra = stage.instantiate(top, "s_extra")
        link = top.add_net("nlink")
        link.connect(instances[-1], "y"); link.connect(extra, "a")
        top.net("nout").connect(extra, "y")
        assert top.delay_var("in1", "out1").value is None
        value = top.delay_value("in1", "out1")
        assert value == pytest.approx(
            sum(i.delay_var("a", "y").value for i in instances + [extra]))


class TestLeastCommitmentFlow:
    """Section 7.3's workflow: estimate early, refine when designed."""

    def test_estimate_then_measured(self):
        adder = CellClass("ADDER")
        adder.define_signal("a", "in")
        adder.define_signal("sum", "out")
        adder.declare_delay("a", "sum", estimate=100.0)

        alu = CellClass("ALU")
        alu.define_signal("x", "in")
        alu.define_signal("y", "out")
        alu.declare_delay("x", "y")
        a1 = adder.instantiate(alu, "a1")
        nin = alu.add_net("nin"); nin.connect_io("x"); nin.connect(a1, "a")
        nout = alu.add_net("nout"); nout.connect(a1, "sum"); nout.connect_io("y")
        # evaluation possible before ADDER internals exist
        assert alu.delay_value("x", "y") == pytest.approx(100.0)
        # the real design turns out faster; the estimate is replaced
        assert adder.delay_var("a", "sum").calculate(80.0)
        assert alu.delay_var("x", "y").value == pytest.approx(80.0)

    def test_clear_delay_estimate(self):
        adder = CellClass("ADDER")
        adder.define_signal("a", "in")
        adder.define_signal("sum", "out")
        adder.declare_delay("a", "sum", estimate=100.0)
        adder.clear_delay_estimate("a", "sum")
        assert adder.delay_var("a", "sum").value is None
