"""Tests for the delay-path explosion guards (section 7.3)."""

import pytest

from repro.checking.delay import (
    DelayPathExplosion,
    build_delay_network,
    enumerate_delay_paths,
)
from repro.stem import CellClass


def diamond_mesh(layers=3):
    """A mesh with 2^layers parallel paths (pathological fan-out)."""
    stage = CellClass("STAGE")
    stage.define_signal("a", "in")
    stage.define_signal("y", "out")
    stage.declare_delay("a", "y", estimate=1.0)

    top = CellClass("TOP")
    top.define_signal("in1", "in")
    top.define_signal("out1", "out")
    top.declare_delay("in1", "out1")
    previous_nets = [top.add_net("nin")]
    previous_nets[0].connect_io("in1")
    for layer in range(layers):
        next_nets = []
        for branch in range(2):
            instance = stage.instantiate(top, f"s{layer}_{branch}")
            # every stage listens to every previous branch: paths multiply
            for net in previous_nets:
                net.connect(instance, "a")
            out_net = top.add_net(f"n{layer}_{branch}")
            out_net.connect(instance, "y")
            next_nets.append(out_net)
        previous_nets = next_nets
    for branch_net in previous_nets:
        branch_net.connect_io("out1")
    return stage, top


class TestGuards:
    def test_path_count_grows_exponentially(self):
        stage, top = diamond_mesh(3)
        paths = enumerate_delay_paths(top, "in1", "out1")
        assert len(paths) == 2 ** 3

    def test_max_paths_raises_instead_of_dropping(self):
        stage, top = diamond_mesh(3)
        with pytest.raises(DelayPathExplosion):
            enumerate_delay_paths(top, "in1", "out1", max_paths=4)

    def test_cutoff_limits_path_length(self):
        stage, top = diamond_mesh(3)
        # each path is 7 edges (4 net hops + 3 delay edges); cutoff below
        # that finds nothing
        assert enumerate_delay_paths(top, "in1", "out1", cutoff=5) == []

    def test_generous_limits_build_full_network(self):
        stage, top = diamond_mesh(2)
        network = build_delay_network(top, max_paths=16)
        assert len(network.path_variables[("in1", "out1")]) == 4
        assert top.delay_var("in1", "out1").value == pytest.approx(2.0)

    def test_build_propagates_guard(self):
        stage, top = diamond_mesh(3)
        with pytest.raises(DelayPathExplosion):
            build_delay_network(top, max_paths=2)
