"""Tests for bounding-box checking (section 7.2)."""

import pytest

from repro.core import (
    AreaBoundConstraint,
    AspectRatioPredicate,
    PitchMatchPredicate,
    USER,
)
from repro.stem import CellClass, Point, Rect, Transform
from repro.checking.bbox import calculate_bounding_box


class TestClassToInstance:
    def test_new_class_box_defaults_instances(self):
        cell = CellClass("C")
        i1 = cell.instantiate(transform=Transform.translation(0, 0))
        i2 = cell.instantiate(transform=Transform.translation(10, 0))
        cell.set_bounding_box(Rect.of_extent(4, 2))
        assert i1.bounding_box_var.value == Rect.of_extent(4, 2)
        assert i2.bounding_box_var.value == Rect.of_extent(4, 2, Point(10, 0))

    def test_user_instance_box_only_checked(self):
        cell = CellClass("C")
        instance = cell.instantiate()
        instance.bounding_box_var.set(Rect.of_extent(6, 3), USER)
        assert cell.set_bounding_box(Rect.of_extent(4, 2))
        assert instance.bounding_box_var.value == Rect.of_extent(6, 3)

    def test_class_growth_beyond_user_instance_box_violates(self):
        cell = CellClass("C")
        instance = cell.instantiate()
        instance.bounding_box_var.set(Rect.of_extent(4, 2), USER)
        assert not cell.set_bounding_box(Rect.of_extent(5, 2))

    def test_rotation_in_adjustment(self):
        cell = CellClass("C")
        instance = cell.instantiate(transform=Transform("R90"))
        cell.set_bounding_box(Rect.of_extent(4, 2))
        assert instance.bounding_box_var.value.extent == Point(2, 4)

    def test_instance_created_after_class_box_seeded(self):
        cell = CellClass("C")
        cell.set_bounding_box(Rect.of_extent(4, 2))
        instance = cell.instantiate(transform=Transform.translation(3, 3))
        assert instance.bounding_box() == Rect.of_extent(4, 2, Point(3, 3))


class TestInstanceChecking:
    def test_cannot_shrink_below_class(self):
        cell = CellClass("C")
        cell.set_bounding_box(Rect.of_extent(4, 2))
        instance = cell.instantiate()
        assert not instance.bounding_box_var.set(Rect.of_extent(3, 2))
        assert instance.bounding_box_var.set(Rect.of_extent(4, 2))
        assert instance.bounding_box_var.set(Rect.of_extent(9, 9))

    def test_no_upward_propagation(self):
        cell = CellClass("C")
        cell.set_bounding_box(Rect.of_extent(4, 2))
        instance = cell.instantiate()
        instance.bounding_box_var.set(Rect.of_extent(8, 8))
        assert cell.bounding_box() == Rect.of_extent(4, 2)


class TestParentInvalidation:
    """Fig. 7.8: subcell box changes procedurally reset the parent box."""

    def test_subcell_change_resets_parent(self):
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        i1 = leaf.instantiate(top, "L1")
        assert top.bounding_box() == Rect.of_extent(4, 2)
        i1.bounding_box_var.set(Rect.of_extent(5, 5))
        assert top.bounding_box_var.value is None or \
            top.bounding_box() == Rect.of_extent(5, 5)
        assert top.bounding_box() == Rect.of_extent(5, 5)

    def test_restored_violation_does_not_invalidate(self):
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        i1 = leaf.instantiate(top, "L1")
        before = top.bounding_box()
        assert not i1.bounding_box_var.set(Rect.of_extent(1, 1))
        assert top.bounding_box() == before

    def test_user_parent_box_not_reset(self):
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        i1 = leaf.instantiate(top, "L1")
        top.set_bounding_box(Rect.of_extent(20, 20), USER)
        i1.bounding_box_var.set(Rect.of_extent(5, 5))
        # the designer's explicit floorplan box is not silently erased
        assert top.bounding_box() == Rect.of_extent(20, 20)


class TestDesignerConstraints:
    def test_aspect_ratio_on_class_box(self):
        cell = CellClass("C")
        AspectRatioPredicate(cell.bounding_box_var, 2.0)
        assert cell.set_bounding_box(Rect.of_extent(4, 2))
        assert not cell.set_bounding_box(Rect.of_extent(5, 2))

    def test_area_bound_on_class_box(self):
        cell = CellClass("C")
        AreaBoundConstraint(cell.bounding_box_var, 10.0)
        assert cell.set_bounding_box(Rect.of_extent(4, 2))
        assert not cell.set_bounding_box(Rect.of_extent(4, 3))

    def test_pitch_matching_between_cells(self):
        a = CellClass("A")
        b = CellClass("B")
        PitchMatchPredicate(a.bounding_box_var, b.bounding_box_var, axis="y")
        a.set_bounding_box(Rect.of_extent(4, 2))
        assert b.set_bounding_box(Rect.of_extent(9, 2))
        assert not b.set_bounding_box(Rect.of_extent(9, 3))


class TestCalculateBoundingBox:
    def test_union_of_boxes(self):
        boxes = [Rect.of_extent(2, 2), Rect.of_extent(2, 2, Point(4, 0))]
        assert calculate_bounding_box(boxes) == Rect(Point(0, 0), Point(6, 2))

    def test_ignores_missing(self):
        boxes = [Rect.of_extent(2, 2), None]
        assert calculate_bounding_box(boxes) == Rect.of_extent(2, 2)

    def test_empty(self):
        assert calculate_bounding_box([]) is None
        assert calculate_bounding_box([None]) is None
