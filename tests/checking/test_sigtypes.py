"""Tests for incremental signal type checking (section 7.1)."""

import pytest

from repro.core import USER, default_context
from repro.stem import CellClass
from repro.stem.types import (
    ANALOG,
    BCD_SIGNAL,
    CMOS,
    DIGITAL,
    INTEGER_SIGNAL,
    TTL,
    WHOLE_SIGNAL,
)


def two_cell_net(out_kwargs=None, in_kwargs=None):
    """driver.p --net-- receiver.q inside TOP."""
    driver = CellClass("DRIVER")
    driver.define_signal("p", "out", **(out_kwargs or {}))
    receiver = CellClass("RECEIVER")
    receiver.define_signal("q", "in", **(in_kwargs or {}))
    top = CellClass("TOP")
    d = driver.instantiate(top, "d")
    r = receiver.instantiate(top, "r")
    net = top.add_net("n")
    ok = net.connect(d, "p") and net.connect(r, "q")
    return driver, receiver, top, d, r, net, ok


class TestBitWidths:
    def test_equal_widths_accepted(self):
        *_, net, ok = two_cell_net({"bit_width": 8}, {"bit_width": 8})
        assert ok
        assert net.bit_width_var.value == 8

    def test_width_inferred_over_net(self):
        driver, receiver, *_, net, ok = two_cell_net({"bit_width": 8}, {})
        assert ok
        assert receiver.signal("q").bit_width_var.value == 8

    def test_fig_7_1_width_mismatch(self, context):
        """8-bit structurally constrained signal vs 4-bit net: violation."""
        leaf = CellClass("LEAF")
        leaf.define_signal("in1", "in")
        leaf.signal("in1").bit_width_var.constrain_by_structure(8)
        top = CellClass("TOP")
        top.define_signal("x", "in", bit_width=4)
        top.signal("x").bit_width_var.set(4, USER)
        instance = leaf.instantiate(top, "L1")
        net = top.add_net("n")
        assert net.connect_io("x")
        assert not net.connect(instance, "in1")
        assert context.handler.records
        # the 8-bit structural width survived
        assert leaf.signal("in1").bit_width_var.value == 8

    def test_user_width_mismatch_also_violates(self):
        *_, ok = two_cell_net({"bit_width": 8}, {"bit_width": 4})
        # constructor widths are APPLICATION-justified, so inference
        # overwrites; force user-pinned widths instead:
        driver = CellClass("D2")
        driver.define_signal("p", "out")
        driver.signal("p").bit_width_var.set(8, USER)
        receiver = CellClass("R2")
        receiver.define_signal("q", "in")
        receiver.signal("q").bit_width_var.set(4, USER)
        top = CellClass("T2")
        d = driver.instantiate(top, "d")
        r = receiver.instantiate(top, "r")
        net = top.add_net("n")
        assert net.connect(d, "p")
        assert not net.connect(r, "q")

    def test_width_propagates_between_nets_through_shared_signal(self):
        """A width constrained by one net constrains the signal's other uses."""
        a = CellClass("A")
        a.define_signal("p", "out", bit_width=8)
        b = CellClass("B")
        b.define_signal("q", "in")
        b.define_signal("s", "out")
        top = CellClass("TOP")
        ia = a.instantiate(top, "ia")
        ib = b.instantiate(top, "ib")
        net1 = top.add_net("n1")
        assert net1.connect(ia, "p") and net1.connect(ib, "q")
        assert b.signal("q").bit_width_var.value == 8


class TestDataTypes:
    def test_type_inferred_from_connection(self):
        driver, receiver, *_, net, ok = two_cell_net(
            {"data_type": INTEGER_SIGNAL}, {})
        assert ok
        assert receiver.signal("q").data_type_var.value is INTEGER_SIGNAL
        assert net.data_type_var.value is INTEGER_SIGNAL

    def test_least_abstract_type_wins(self):
        driver, receiver, *_, net, ok = two_cell_net(
            {"data_type": INTEGER_SIGNAL}, {"data_type": BCD_SIGNAL})
        assert ok
        assert net.data_type_var.value is BCD_SIGNAL
        # the more abstract driver signal keeps its own (compatible) typing
        assert driver.signal("p").data_type_var.value in (INTEGER_SIGNAL,
                                                          BCD_SIGNAL)

    def test_incompatible_data_types_violate(self):
        *_, ok = two_cell_net({"data_type": BCD_SIGNAL},
                              {"data_type": WHOLE_SIGNAL})
        assert not ok

    def test_later_refinement_propagates(self):
        driver, receiver, *_, net, ok = two_cell_net(
            {"data_type": INTEGER_SIGNAL}, {})
        assert receiver.signal("q").data_type_var.set(BCD_SIGNAL)
        assert net.data_type_var.value is BCD_SIGNAL
        assert driver.signal("p").data_type_var.value is BCD_SIGNAL

    def test_incompatible_refinement_rejected(self):
        driver, receiver, *_, net, ok = two_cell_net(
            {"data_type": BCD_SIGNAL}, {})
        assert not receiver.signal("q").data_type_var.set(WHOLE_SIGNAL)


class TestElectricalTypes:
    def test_compatible_electrical_types(self):
        *_, net, ok = two_cell_net({"electrical_type": DIGITAL},
                                   {"electrical_type": TTL})
        assert ok
        assert net.electrical_type_var.value is TTL

    def test_analog_digital_clash(self):
        *_, ok = two_cell_net({"electrical_type": ANALOG},
                              {"electrical_type": DIGITAL})
        assert not ok

    def test_sibling_leaf_types_clash(self):
        *_, ok = two_cell_net({"electrical_type": TTL},
                              {"electrical_type": CMOS})
        assert not ok


class TestCrossInstanceConstraints:
    """Fig. 7.5: type variables are class-level, so every use constrains
    every other use of the cell."""

    def test_type_requirements_meet_through_shared_class(self):
        a = CellClass("A")
        a.define_signal("x", "in")
        top1 = CellClass("TOP1")
        top1.define_signal("src", "in", data_type=INTEGER_SIGNAL)
        i1 = a.instantiate(top1, "A.1")
        net1 = top1.add_net("n")
        assert net1.connect_io("src") and net1.connect(i1, "x")
        assert a.signal("x").data_type_var.value is INTEGER_SIGNAL

        # a second, separate use of A sees (and refines) the same typing
        top2 = CellClass("TOP2")
        top2.define_signal("src2", "in", data_type=BCD_SIGNAL)
        i2 = a.instantiate(top2, "A.2")
        net2 = top2.add_net("n")
        assert net2.connect_io("src2") and net2.connect(i2, "x")
        assert a.signal("x").data_type_var.value is BCD_SIGNAL

    def test_incompatible_second_use_rejected(self):
        a = CellClass("A")
        a.define_signal("x", "in", data_type=BCD_SIGNAL)
        top = CellClass("TOP")
        top.define_signal("src", "in", data_type=WHOLE_SIGNAL)
        instance = a.instantiate(top, "A.1")
        net = top.add_net("n")
        net.connect_io("src")
        assert not net.connect(instance, "x")


class TestCompiledInstanceWidths:
    def test_instance_owned_width(self):
        a = CellClass("A")
        a.define_signal("x", "in")
        i1 = a.instantiate()
        i2 = a.instantiate()
        w1 = i1.own_bit_width("x")
        w2 = i2.own_bit_width("x")
        assert w1.set(4)
        assert w2.set(8)  # different instances, different widths
        assert i1.bit_width_var("x") is w1
        assert i2.bit_width_var("x") is w2

    def test_own_width_checked_against_class(self):
        a = CellClass("A")
        a.define_signal("x", "in")
        a.signal("x").bit_width_var.set(8, USER)
        instance = a.instantiate()
        own = instance.own_bit_width("x")
        assert not own.set(4)
        assert own.set(8)

    def test_own_width_is_idempotent(self):
        a = CellClass("A")
        a.define_signal("x", "in")
        instance = a.instantiate()
        assert instance.own_bit_width("x") is instance.own_bit_width("x")


class TestDisconnect:
    def test_disconnect_erases_inferences(self):
        driver, receiver, top, d, r, net, ok = two_cell_net(
            {"data_type": INTEGER_SIGNAL}, {})
        assert receiver.signal("q").data_type_var.value is INTEGER_SIGNAL
        net.disconnect(d, "p")
        assert receiver.signal("q").data_type_var.value is None
        assert net.data_type_var.value is None
        assert ("p" not in d.connections)

    def test_disconnect_io(self):
        top = CellClass("TOP")
        top.define_signal("x", "in", bit_width=4)
        net = top.add_net("n")
        net.connect_io("x")
        assert net.bit_width_var.value == 4
        net.disconnect_io("x")
        assert net.endpoints == []
        assert "x" not in top.io_connections

    def test_disconnect_unknown_endpoint_is_noop(self):
        top = CellClass("TOP")
        net = top.add_net("n")
        net.disconnect_io("ghost")  # silently ignored
