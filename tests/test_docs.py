"""Documentation consistency checks."""

import importlib.util
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", REPO / "tools" / "gen_api_docs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiReference:
    def test_api_doc_is_current(self):
        """docs/api.md must match the live public surface.

        Regenerate with `python tools/gen_api_docs.py` when this fails.
        """
        generator = load_generator()
        expected = generator.render() + "\n"
        actual = (REPO / "docs" / "api.md").read_text()
        assert actual == expected

    def test_every_package_documented(self):
        text = (REPO / "docs" / "api.md").read_text()
        for package in ("repro.core", "repro.stem", "repro.spice",
                        "repro.checking", "repro.selection",
                        "repro.spaces", "repro.consistency", "repro.obs",
                        "repro.session", "repro.fleet", "repro.cli"):
            assert f"## `{package}`" in text


class TestExperimentRegeneration:
    def test_all_deterministic_experiment_checks_hold(self):
        """tools/run_experiments.py reproduces every counted claim."""
        spec = importlib.util.spec_from_file_location(
            "run_experiments", REPO / "tools" / "run_experiments.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        report = module.run()
        failing = [row for row in report.rows if not row[3]]
        assert not failing, report.render()


class TestReadmeExamplesExist:
    def test_readme_example_paths_exist(self):
        readme = (REPO / "README.md").read_text()
        for line in readme.splitlines():
            if line.startswith("| `examples/"):
                path = line.split("`")[1]
                assert (REPO / path).exists(), f"README names missing {path}"

    def test_all_examples_in_readme(self):
        readme = (REPO / "README.md").read_text()
        for script in sorted((REPO / "examples").glob("*.py")):
            assert f"examples/{script.name}" in readme, \
                f"{script.name} missing from README examples table"
