"""Shared fixtures: isolate each test in a fresh default context."""

import pytest

from repro.core import default_context, reset_default_context


@pytest.fixture(autouse=True)
def fresh_context():
    """Give every test a pristine process-wide propagation context."""
    yield reset_default_context()
    reset_default_context()


@pytest.fixture
def context():
    return default_context()
