"""Tests for the internal transient simulator (SPICE stand-in)."""

import math

import pytest

np = pytest.importorskip(
    "numpy", reason="SPICE analyses need the numpy solver")

from repro.spice import (
    DC,
    Pulse,
    SpiceParseError,
    parse_deck,
    parse_value,
    run_spice_deck,
)


class TestValueParsing:
    @pytest.mark.parametrize("token,expected", [
        ("100", 100.0),
        ("1.5", 1.5),
        ("1e-9", 1e-9),
        ("10k", 10e3),
        ("2.5n", 2.5e-9),
        ("3meg", 3e6),
        ("10p", 10e-12),
        ("1u", 1e-6),
        ("5m", 5e-3),
        ("-2.5", -2.5),
    ])
    def test_engineering_suffixes(self, token, expected):
        assert parse_value(token) == pytest.approx(expected)

    def test_trailing_unit_letters_ignored(self):
        assert parse_value("10kohm") == pytest.approx(10e3)
        assert parse_value("5pF") == pytest.approx(5e-12)

    def test_garbage_rejected(self):
        with pytest.raises(SpiceParseError):
            parse_value("abc")


class TestWaveforms:
    def test_dc(self):
        assert DC(5.0).value_at(0) == 5.0
        assert DC(5.0).value_at(1e9) == 5.0

    def test_pulse_phases(self):
        p = Pulse(0.0, 5.0, td=10e-9, tr=2e-9, tf=2e-9, pw=20e-9, per=100e-9)
        assert p.value_at(0.0) == 0.0
        assert p.value_at(10e-9) == 0.0
        assert p.value_at(11e-9) == pytest.approx(2.5)
        assert p.value_at(12e-9) == pytest.approx(5.0)
        assert p.value_at(20e-9) == 5.0
        assert p.value_at(33e-9) == pytest.approx(2.5)
        assert p.value_at(50e-9) == 0.0
        # periodic repeat
        assert p.value_at(111e-9) == pytest.approx(2.5)

    def test_pulse_spice_text_roundtrip(self):
        p = Pulse(0.0, 5.0, 1e-9, 1e-10, 1e-10, 5e-9, 10e-9)
        text = p.spice_text()
        assert text.startswith("PULSE(")
        deck = f"V1 1 0 {text}\n.TRAN 1n 10n\n.END"
        elements, _ = parse_deck(deck)
        assert isinstance(elements[0].waveform, Pulse)
        assert elements[0].waveform.v2 == 5.0


class TestDeckParsing:
    def test_full_deck(self):
        deck = """* comment
R1 1 2 10k
C1 2 0 1p
V1 1 0 DC 5
.TRAN 1n 100n
.END
"""
        elements, (dt, tstop) = parse_deck(deck)
        assert len(elements) == 3
        assert dt == pytest.approx(1e-9)
        assert tstop == pytest.approx(100e-9)

    def test_mos_card(self):
        deck = "M1 2 1 0 NMOS RON=2k VT=0.7\n.TRAN 1n 10n\n.END"
        elements, _ = parse_deck(deck)
        assert elements[0].kind == "NMOS"
        assert elements[0].params["r_on"] == pytest.approx(2e3)
        assert elements[0].params["v_t"] == pytest.approx(0.7)

    def test_missing_tran_rejected(self):
        with pytest.raises(SpiceParseError):
            parse_deck("R1 1 0 1k\n.END")

    def test_unknown_element_rejected(self):
        with pytest.raises(SpiceParseError):
            parse_deck("X1 1 0 THING\n.TRAN 1n 10n\n.END")

    def test_bad_mos_model_rejected(self):
        with pytest.raises(SpiceParseError):
            parse_deck("M1 1 2 0 JFET\n.TRAN 1n 10n\n.END")


class TestSimulation:
    def test_resistive_divider(self):
        deck = """* divider
V1 1 0 DC 10
R1 1 2 1k
R2 2 0 1k
.TRAN 1n 10n
.END"""
        out = run_spice_deck(deck)
        assert out.final_value("2") == pytest.approx(5.0, rel=1e-6)

    def test_rc_charge_time_constant(self):
        """v(t) = V(1 - e^(-t/RC)); check at t = RC."""
        deck = """* rc
V1 1 0 DC 1
R1 1 2 1k
C1 2 0 1n
.TRAN 10n 5u
.END"""
        out = run_spice_deck(deck)
        rc = 1e3 * 1e-9
        idx = np.searchsorted(out.time, rc)
        expected = 1 - math.exp(-1)
        assert out.v("2")[idx] == pytest.approx(expected, rel=0.05)

    def test_rc_final_value(self):
        deck = """V1 1 0 DC 3
R1 1 2 1k
C1 2 0 1n
.TRAN 10n 20u
.END"""
        out = run_spice_deck(deck)
        assert out.final_value("2") == pytest.approx(3.0, rel=1e-3)

    def test_nmos_switch_pulls_down(self):
        deck = """* inverter-ish pulldown
V1 1 0 DC 5
V2 3 0 DC 5
R1 1 2 1k
M1 2 3 0 NMOS RON=100 VT=1
.TRAN 1n 100n
.END"""
        out = run_spice_deck(deck)
        # divider: 5 * 100/(1000+100)
        assert out.final_value("2") == pytest.approx(5 * 100 / 1100, rel=0.01)

    def test_nmos_off_when_gate_low(self):
        deck = """V1 1 0 DC 5
V2 3 0 DC 0
R1 1 2 1k
M1 2 3 0 NMOS RON=100 VT=1
.TRAN 1n 100n
.END"""
        out = run_spice_deck(deck)
        assert out.final_value("2") == pytest.approx(5.0, rel=0.01)

    def test_pmos_switch(self):
        deck = """V1 1 0 DC 5
V2 3 0 DC 0
R1 2 0 1k
M1 2 3 1 PMOS RON=100 VT=1
.TRAN 1n 100n
.END"""
        out = run_spice_deck(deck)
        assert out.final_value("2") == pytest.approx(5 * 1000 / 1100, rel=0.01)

    def test_unknown_node_raises(self):
        deck = "V1 1 0 DC 5\nR1 1 0 1k\n.TRAN 1n 10n\n.END"
        out = run_spice_deck(deck)
        with pytest.raises(KeyError):
            out.v("99")


class TestMeasurements:
    def ramp_output(self):
        deck = """V1 1 0 PULSE(0 5 10n 1n 1n)
R1 1 2 1k
C1 2 0 10p
.TRAN 0.1n 200n
.END"""
        return run_spice_deck(deck)

    def test_crossing_time_rising(self):
        out = self.ramp_output()
        t = out.crossing_time("2", 2.5, rising=True)
        assert t is not None
        # RC=10ns: 50% at ~0.69*RC after the (fast) edge at ~10.5n
        assert t == pytest.approx(10.5e-9 + 0.693 * 10e-9, rel=0.1)

    def test_crossing_direction_filter(self):
        out = self.ramp_output()
        assert out.crossing_time("2", 2.5, rising=False) is None

    def test_no_crossing_returns_none(self):
        out = self.ramp_output()
        assert out.crossing_time("2", 99.0) is None

    def test_delay_between(self):
        out = self.ramp_output()
        delay = out.delay_between("1", "2", 2.5)
        assert delay == pytest.approx(0.693 * 10e-9, rel=0.1)
