"""Tests for netlist extraction and the SpiceSimulation/SpicePlot interface."""

import pytest

from repro.core import default_context
from repro.spice import (
    DC,
    Pulse,
    SpiceNet,
    SpicePlot,
    SpiceSimulation,
    capacitor,
    extract_netlist,
    inverter,
    nmos,
    resistor,
)
from repro.spice.simulator import HAVE_NUMPY
from repro.stem import CellClass

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="running simulations needs the numpy solver"
)


def rc_cell():
    """vin --R-- out --C-- gnd, with parent ios vin/out/gnd."""
    cell = CellClass("RC")
    cell.define_signal("vin", "in")
    cell.define_signal("out", "out")
    cell.define_signal("gnd", "inout")
    r = resistor(1e3, name="R_RC").instantiate(cell, "R1")
    c = capacitor(10e-12, name="C_RC").instantiate(cell, "C1")
    nin = cell.add_net("nin"); nin.connect_io("vin"); nin.connect(r, "p")
    nout = cell.add_net("nout"); nout.connect(r, "n"); nout.connect(c, "p")
    nout.connect_io("out")
    gnd = cell.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(c, "n")
    return cell


def inverter_chain(n=3):
    inv = inverter(c_load=10e-12, name=f"INVx{n}")
    chain = CellClass(f"CHAIN{n}")
    chain.define_signal("a", "in")
    chain.define_signal("y", "out")
    chain.define_signal("vdd", "inout")
    chain.define_signal("gnd", "inout")
    vdd = chain.add_net("vdd"); vdd.connect_io("vdd")
    gnd = chain.add_net("gnd"); gnd.connect_io("gnd")
    current = chain.add_net("nin"); current.connect_io("a")
    stage_nets = ["nin"]
    for i in range(n):
        stage = inv.instantiate(chain, f"I{i}")
        current.connect(stage, "a")
        vdd.connect(stage, "vdd")
        gnd.connect(stage, "gnd")
        current = chain.add_net(f"n{i + 1}")
        current.connect(stage, "y")
        stage_nets.append(f"n{i + 1}")
    current.connect_io("y")
    return chain, stage_nets


class TestExtraction:
    def test_rc_cards(self):
        netlist = extract_netlist(rc_cell())
        kinds = sorted(card.kind for card in netlist.cards)
        assert kinds == ["C", "R"]
        assert netlist.cards[0].parameters

    def test_ground_mapped_to_node_zero(self):
        netlist = extract_netlist(rc_cell())
        assert netlist.node_of("gnd") == "0"

    def test_shared_nodes(self):
        netlist = extract_netlist(rc_cell())
        r_card = next(c for c in netlist.cards if c.kind == "R")
        c_card = next(c for c in netlist.cards if c.kind == "C")
        assert r_card.nodes[1] == c_card.nodes[0]  # joined at "out"
        assert c_card.nodes[1] == "0"

    def test_correspondence_pointers(self):
        cell = rc_cell()
        netlist = extract_netlist(cell)
        for name, instance in netlist.card_objects.items():
            assert instance in cell.subcells

    def test_hierarchical_flattening(self):
        chain, _ = inverter_chain(3)
        netlist = extract_netlist(chain)
        mos = [c for c in netlist.cards if c.kind in ("NMOS", "PMOS")]
        caps = [c for c in netlist.cards if c.kind == "C"]
        assert len(mos) == 6
        assert len(caps) == 3

    def test_hierarchy_binding_shares_nodes(self):
        chain, _ = inverter_chain(2)
        netlist = extract_netlist(chain)
        # both inverters' pmos sources land on the same vdd node
        pmos_cards = [c for c in netlist.cards if c.kind == "PMOS"]
        sources = {c.nodes[2] for c in pmos_cards}
        assert len(sources) == 1

    def test_text_rendering(self):
        netlist = extract_netlist(rc_cell())
        text = netlist.text()
        assert text.startswith("* extracted from cell RC")
        assert "R1 " in text or "R1\t" in text

    def test_unknown_net_lookup(self):
        netlist = extract_netlist(rc_cell())
        with pytest.raises(KeyError):
            netlist.node_of("bogus")


class TestSpiceNetView:
    def test_view_recalculates_on_structure_change(self):
        cell = rc_cell()
        view = SpiceNet(cell)
        assert len(view.data.cards) == 2
        extra = capacitor(1e-12, name="C_EXTRA").instantiate(cell, "C2")
        cell.net("nout").connect(extra, "p")
        assert view.outdated
        assert len(view.data.cards) == 3

    def test_view_survives_layout_change(self):
        cell = rc_cell()
        view = SpiceNet(cell)
        view.data
        cell.changed("layout")
        assert not view.outdated


@needs_numpy
class TestSimulationFlow:
    def test_rc_simulation(self):
        cell = rc_cell()
        sim = SpiceSimulation(cell)
        sim.add_source("nin", DC(5.0))
        sim.set_tran(1e-9, 500e-9)
        out = sim.run()
        assert sim.runs == 1
        assert out.final_value(sim.node_of("nout")) == pytest.approx(5.0,
                                                                     rel=0.01)

    def test_deck_text_contains_stimulus_and_tran(self):
        cell = rc_cell()
        sim = SpiceSimulation(cell)
        sim.add_source("nin", Pulse(0, 5, td=1e-9))
        sim.set_tran(1e-9, 100e-9)
        deck = sim.deck_text()
        assert "PULSE(" in deck
        assert ".TRAN 1e-09 1e-07" in deck
        assert deck.strip().endswith(".END")

    def test_v_requires_run(self):
        sim = SpiceSimulation(rc_cell())
        with pytest.raises(RuntimeError):
            sim.v("nout")

    def test_output_marked_outdated_on_cell_change(self):
        cell = rc_cell()
        sim = SpiceSimulation(cell)
        sim.add_source("nin", DC(1.0))
        sim.run()
        assert not sim.outdated
        cell.changed("structure")
        assert sim.outdated
        sim.run()
        assert not sim.outdated

    def test_layout_change_does_not_outdate(self):
        cell = rc_cell()
        sim = SpiceSimulation(cell)
        sim.add_source("nin", DC(1.0))
        sim.run()
        cell.changed("layout")
        assert not sim.outdated


@needs_numpy
class TestInverterChain:
    """The Fig. 6.3 scenario: three cascaded inverters."""

    def test_three_inversions(self):
        chain, nets = inverter_chain(3)
        sim = SpiceSimulation(chain)
        sim.add_source("vdd", DC(5.0))
        sim.add_source("nin", Pulse(0.0, 5.0, td=10e-9, tr=1e-10))
        sim.set_tran(0.2e-9, 300e-9)
        sim.run()
        plot = SpicePlot(sim)
        # input ends high -> n1 low, n2 high, n3 low
        assert plot.final_value("n1") == pytest.approx(0.0, abs=0.1)
        assert plot.final_value("n2") == pytest.approx(5.0, abs=0.1)
        assert plot.final_value("n3") == pytest.approx(0.0, abs=0.1)

    def test_stage_delays_accumulate(self):
        chain, nets = inverter_chain(3)
        sim = SpiceSimulation(chain)
        sim.add_source("vdd", DC(5.0))
        # let the chain settle from rest (RC ~ 20ns) before the edge
        sim.add_source("nin", Pulse(0.0, 5.0, td=150e-9, tr=1e-10))
        sim.set_tran(0.2e-9, 500e-9)
        sim.run()
        plot = SpicePlot(sim)
        edge = plot.crossing_time("nin", 2.5, rising=True)
        d1 = plot.delay_between("nin", "n1", 2.5, after=edge - 1e-9)
        d3 = plot.delay_between("nin", "n3", 2.5, after=edge - 1e-9)
        assert d1 is not None and d3 is not None
        assert d3 > 2 * d1  # three stages accumulate delay
        # stage 1 falls through its nmos: ~0.69 * 1k * 10pF
        assert d1 == pytest.approx(0.69 * 1e3 * 10e-12, rel=0.2)

    def test_plot_outdates_with_simulation(self):
        chain, _ = inverter_chain(2)
        sim = SpiceSimulation(chain)
        sim.add_source("vdd", DC(5.0))
        sim.add_source("nin", DC(0.0))
        sim.set_tran(1e-9, 50e-9)
        sim.run()
        plot = SpicePlot(sim)
        assert not plot.outdated
        chain.changed("structure")
        assert plot.outdated
        sim.run()
        assert plot.outdated  # plot belongs to the previous run

    def test_plot_requires_output(self):
        sim = SpiceSimulation(rc_cell())
        with pytest.raises(ValueError):
            SpicePlot(sim)
