"""Tests for operating-point and DC-sweep analyses."""

import pytest

np = pytest.importorskip(
    "numpy", reason="SPICE analyses need the numpy solver")

from repro.spice import (
    DC,
    SpiceSimulation,
    inverter,
    run_dc_sweep,
    run_operating_point,
    SpiceParseError,
)
from repro.stem import CellClass


class TestOperatingPoint:
    def test_divider(self):
        deck = """V1 1 0 DC 10
R1 1 2 1k
R2 2 0 3k
.END"""
        op = run_operating_point(deck)
        assert op["2"] == pytest.approx(7.5)

    def test_capacitor_open_at_dc(self):
        deck = """V1 1 0 DC 5
R1 1 2 1k
C1 2 0 1n
.END"""
        op = run_operating_point(deck)
        assert op["2"] == pytest.approx(5.0)  # no DC path to ground

    def test_inverter_static_points(self):
        deck = """V1 1 0 DC 5
V2 3 0 DC 0
R1 2 0 1meg
M1 2 3 1 PMOS RON=2k VT=1
M2 2 3 0 NMOS RON=1k VT=1
.END"""
        op = run_operating_point(deck)
        assert op["2"] == pytest.approx(5.0, rel=0.01)  # input low -> high

    def test_works_without_tran_directive(self):
        op = run_operating_point("V1 1 0 DC 1\nR1 1 0 1k\n.END")
        assert op["1"] == pytest.approx(1.0)


class TestDCSweep:
    INVERTER_DECK = """* inverter transfer
V1 1 0 DC 5
V2 3 0 DC 0
R1 2 0 1meg
M1 2 3 1 PMOS RON=2k VT=1
M2 2 3 0 NMOS RON=1k VT=1
.END"""

    def test_transfer_curve_shape(self):
        sweep = run_dc_sweep(self.INVERTER_DECK, "V2",
                             np.linspace(0.0, 5.0, 26))
        out = sweep.v("2")
        assert out[0] == pytest.approx(5.0, rel=0.02)   # input 0 -> high
        assert out[-1] == pytest.approx(0.0, abs=0.05)  # input 5 -> low

    def test_transfer_crossing(self):
        sweep = run_dc_sweep(self.INVERTER_DECK, "V2",
                             np.linspace(0.0, 5.0, 51))
        switch_point = sweep.transfer_crossing("2", 2.5)
        assert switch_point is not None
        assert 0.5 <= switch_point <= 4.5

    def test_unknown_source_rejected(self):
        with pytest.raises(SpiceParseError):
            run_dc_sweep(self.INVERTER_DECK, "V9", [0, 1])

    def test_unknown_node_rejected(self):
        sweep = run_dc_sweep(self.INVERTER_DECK, "V2", [0.0, 5.0])
        with pytest.raises(KeyError):
            sweep.v("42")


class TestSimulationIntegration:
    def build_inverter_sim(self):
        inv = inverter(c_load=10e-12, name="INVOP")
        cell = CellClass("SINGLE")
        cell.define_signal("a", "in")
        cell.define_signal("y", "out")
        cell.define_signal("vdd", "inout")
        cell.define_signal("gnd", "inout")
        instance = inv.instantiate(cell, "I0")
        for net_name, signal in (("na", "a"), ("ny", "y"),
                                 ("vdd", "vdd"), ("gnd", "gnd")):
            net = cell.add_net(net_name)
            net.connect_io(signal)
            net.connect(instance, signal)
        sim = SpiceSimulation(cell)
        sim.add_source("vdd", DC(5.0))
        sim.add_source("na", DC(0.0))
        return sim

    def test_operating_point_by_net_name(self):
        sim = self.build_inverter_sim()
        op = sim.operating_point()
        assert op["ny"] == pytest.approx(5.0, rel=0.01)
        assert op["gnd"] == 0.0

    def test_dc_sweep_by_net_name(self):
        sim = self.build_inverter_sim()
        sweep = sim.dc_sweep("na", np.linspace(0.0, 5.0, 21))
        out = sweep.v(sim.node_of("ny"))
        assert out[0] > out[-1]

    def test_sweep_requires_source(self):
        sim = self.build_inverter_sim()
        with pytest.raises(ValueError):
            sim.dc_sweep("ny", [0, 1])
