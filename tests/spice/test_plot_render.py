"""Tests for ASCII waveform rendering (the plot window substitute)."""

import pytest

from repro.spice import DC, Pulse, SpicePlot, SpiceSimulation, capacitor, resistor
from repro.spice.simulator import HAVE_NUMPY
from repro.stem import CellClass

# Every render test feeds off a transient run, which needs the solver.
pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="running simulations needs the numpy solver"
)


def rc_sim():
    cell = CellClass("RCPLOT")
    cell.define_signal("vin", "in")
    cell.define_signal("gnd", "inout")
    r = resistor(1e3, name="Rp").instantiate(cell, "R1")
    c = capacitor(10e-12, name="Cp").instantiate(cell, "C1")
    n1 = cell.add_net("n1"); n1.connect_io("vin"); n1.connect(r, "p")
    n2 = cell.add_net("n2"); n2.connect(r, "n"); n2.connect(c, "p")
    gnd = cell.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(c, "n")
    sim = SpiceSimulation(cell)
    sim.add_source("n1", Pulse(0.0, 5.0, td=20e-9, tr=1e-10))
    sim.set_tran(0.5e-9, 120e-9)
    sim.run()
    return sim


class TestRender:
    def test_dimensions(self):
        plot = SpicePlot(rc_sim())
        text = plot.render(["n1", "n2"], width=60, height=10)
        lines = text.splitlines()
        assert len(lines) == 12  # 10 rows + axis + legend
        assert all(len(line) >= 60 for line in lines[:10])

    def test_legend_names_nets(self):
        plot = SpicePlot(rc_sim())
        text = plot.render(["n1", "n2"])
        assert "1=n1" in text
        assert "2=n2" in text

    def test_voltage_scale_labels(self):
        plot = SpicePlot(rc_sim())
        text = plot.render(["n1"])
        assert "5" in text.splitlines()[0]   # max label
        assert "0" in text.splitlines()[-3]  # min label

    def test_step_shape_visible(self):
        """The input step appears: glyph 1 at the bottom early, top late."""
        plot = SpicePlot(rc_sim())
        lines = plot.render(["n1"], width=60, height=10).splitlines()
        top_row = lines[0]
        bottom_row = lines[9]
        assert "1" in bottom_row[:20]       # low before the step
        assert "1" in top_row[-20:]         # high after the step

    def test_flat_waveform_does_not_crash(self):
        plot = SpicePlot(rc_sim())
        text = plot.render(["gnd"])  # constant zero
        assert "1=gnd" in text
