"""Tests for the hot-constraint profiler."""

import pytest

from repro.core import (
    EqualityConstraint,
    UniMaximumConstraint,
    Variable,
)
from repro.obs import HotConstraintProfiler, Observer


def network():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    eq = EqualityConstraint(v1, v2)
    mx = UniMaximumConstraint(v4, [v2, v3])
    return v1, eq, mx


class TestAggregation:
    def test_records_fires_and_time(self):
        profiler = HotConstraintProfiler()
        constraint = object()
        profiler.record_activation(constraint, 0.002)
        profiler.record_activation(constraint, 0.001)
        profiler.record_inference(constraint, 0.003)
        (entry,) = profiler.top(5)
        assert entry.activations == 2
        assert entry.inferences == 1
        assert entry.fires == 3
        assert entry.total_us == pytest.approx(6000.0)
        assert entry.mean_us == pytest.approx(2000.0)

    def test_top_orders_by_cumulative_time(self):
        profiler = HotConstraintProfiler()
        cold, hot = object(), object()
        profiler.record_activation(cold, 0.001)
        profiler.record_activation(hot, 0.010)
        entries = profiler.top(10)
        assert entries[0].constraint is hot
        assert profiler.top(1) == entries[:1]

    def test_clear(self):
        profiler = HotConstraintProfiler()
        profiler.record_activation(object(), 0.001)
        profiler.clear()
        assert len(profiler) == 0
        assert profiler.top(3) == []


class TestAgainstRealRounds:
    def test_profiles_real_propagation(self, context):
        v1, eq, mx = network()
        with Observer.full(context) as observer:
            assert v1.set(9)
        profiler = observer.profiler
        by_type = {entry.type_name: entry for entry in profiler.top(10)}
        assert by_type["EqualityConstraint"].constraint is eq
        assert by_type["UniMaximumConstraint"].inferences >= 1
        assert all(entry.total_us > 0 for entry in profiler.top(10))

    def test_description_names_the_network(self, context):
        v1, eq, mx = network()
        with Observer.full(context) as observer:
            assert v1.set(9)
        (hottest, *_rest) = observer.profiler.top(1)
        assert "V" in hottest.description  # argument variables visible

    def test_render_table(self, context):
        v1, eq, mx = network()
        with Observer.full(context) as observer:
            assert v1.set(9)
        table = observer.profiler.render(2)
        assert "cum µs" in table
        assert "UniMaximumConstraint" in table
        assert HotConstraintProfiler().render() \
            == "no constraint activity recorded"


class TestProvenance:
    def test_provenance_walks_to_owning_cell(self, context):
        from repro.stem import CellClass, Rect
        leaf = CellClass("ALU")
        top = CellClass("TOP")
        leaf.instantiate(top, "A1")
        with Observer.full(context) as observer:
            leaf.set_bounding_box(Rect.of_extent(10, 10))
        entries = observer.profiler.top(10)
        assert entries, "expected implicit-constraint activity"
        assert any("ALU" in entry.provenance for entry in entries)
        assert any("A1" in entry.provenance for entry in entries)
