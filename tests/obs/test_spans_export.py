"""Tests for span recording and Chrome-trace export."""

import json

import pytest

from repro.obs import SpanRecorder, chrome_trace, write_chrome_trace


class TestSpanRecorder:
    def test_nested_spans_record_depth(self):
        recorder = SpanRecorder()
        with recorder.span("outer", "round"):
            with recorder.span("inner", "inference"):
                pass
        inner, outer = recorder.spans
        assert inner.name == "inner" and inner.depth == 1
        assert outer.name == "outer" and outer.depth == 0
        assert outer.duration_us >= inner.duration_us

    def test_span_closes_when_body_raises(self):
        recorder = SpanRecorder()
        with pytest.raises(ValueError):
            with recorder.span("failing"):
                raise ValueError("boom")
        assert recorder.open_depth == 0
        assert recorder.spans[0].name == "failing"

    def test_unbalanced_end_is_tolerated(self):
        recorder = SpanRecorder()
        assert recorder.end() is None
        assert not recorder.spans

    def test_add_complete_uses_external_timings(self):
        recorder = SpanRecorder()
        start = recorder.origin + 1e-3
        span = recorder.add_complete("ext", "inference", start, start + 5e-4,
                                     constraint="eq")
        assert span.start_us == pytest.approx(1000.0)
        assert span.duration_us == pytest.approx(500.0)
        assert span.args == {"constraint": "eq"}

    def test_instants_and_clear(self):
        recorder = SpanRecorder()
        recorder.instant("violation", "round", reason="cycle")
        assert recorder.instants[0].name == "violation"
        recorder.clear()
        assert not recorder.instants and not recorder.spans

    def test_spans_of_filters_by_category(self):
        recorder = SpanRecorder()
        with recorder.span("a", "round"):
            pass
        with recorder.span("b", "compile"):
            pass
        assert [s.name for s in recorder.spans_of("compile")] == ["b"]


class TestChromeTraceExport:
    def _recorder(self):
        recorder = SpanRecorder()
        with recorder.span("round:assign", "round", subject="V1"):
            with recorder.span("infer", "inference"):
                pass
        recorder.instant("restore", "round", variables=2)
        return recorder

    def test_trace_event_structure(self):
        trace = chrome_trace(self._recorder())
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X", "i"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid",
                    "args"} <= set(event)
            assert event["dur"] >= 0
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"
        assert instant["args"] == {"variables": 2}

    def test_process_metadata_present(self):
        trace = chrome_trace(self._recorder(), process_name="engine-x")
        meta = next(e for e in trace["traceEvents"]
                    if e["name"] == "process_name")
        assert meta["args"]["name"] == "engine-x"

    def test_non_primitive_args_become_strings(self):
        recorder = SpanRecorder()
        with recorder.span("s", "round", subject=object()):
            pass
        trace = chrome_trace(recorder)
        json.dumps(trace)  # must be serializable despite the object arg

    def test_write_and_reload(self, tmp_path):
        path = str(tmp_path / "round.trace.json")
        written = write_chrome_trace(path, self._recorder(),
                                     metadata={"design": "demo"})
        assert written == path
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["otherData"] == {"design": "demo"}
        assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    def test_recorder_to_chrome_trace_shortcut(self):
        trace = self._recorder().to_chrome_trace(design="demo")
        assert trace["otherData"] == {"design": "demo"}
