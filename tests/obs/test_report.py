"""Tests for the BENCH_PROP.json benchmark report format."""

import json
from types import SimpleNamespace

from repro.obs.report import SCHEMA, BenchReport, write_bench_report


def fake_bench(name, median, group=None, extra=None):
    stats = SimpleNamespace(median=median, mean=median, stddev=0.0,
                            min=median, rounds=5)
    return SimpleNamespace(name=name, group=group, stats=stats,
                           extra_info=extra or {})


class TestRecord:
    def test_entries_sorted_and_rounded(self):
        report = BenchReport()
        report.record("b", median_s=2e-6)
        report.record("a", median_s=1.2345678e-6)
        data = report.to_dict()
        assert list(data["benchmarks"]) == ["a", "b"]
        assert data["benchmarks"]["a"]["median_us"] == 1.235
        assert data["schema"] == SCHEMA

    def test_extra_info_passes_through_sorted(self):
        report = BenchReport.from_pytest_benchmarks(
            [fake_bench("warm", 1e-6, extra={"plan_hits": 7,
                                             "plan_deopts": 1})])
        entry = report.to_dict()["benchmarks"]["warm"]
        assert entry["extra"] == {"plan_deopts": 1, "plan_hits": 7}
        assert list(entry["extra"]) == ["plan_deopts", "plan_hits"]

    def test_no_extra_key_when_empty(self):
        report = BenchReport.from_pytest_benchmarks([fake_bench("b", 1e-6)])
        assert "extra" not in report.to_dict()["benchmarks"]["b"]


class TestMerge:
    def test_merge_carries_benchmarks_the_session_did_not_run(self, tmp_path):
        path = str(tmp_path / "BENCH_PROP.json")
        first = BenchReport.from_pytest_benchmarks(
            [fake_bench("suite_a::one", 1e-6), fake_bench("suite_a::two", 2e-6)])
        first.write(path)

        second = BenchReport.from_pytest_benchmarks(
            [fake_bench("suite_b::three", 3e-6)])
        assert second.merge_previous(path) == 2
        second.write(path)

        with open(path) as handle:
            data = json.load(handle)
        assert sorted(data["benchmarks"]) == [
            "suite_a::one", "suite_a::two", "suite_b::three"]

    def test_current_run_wins_over_previous(self, tmp_path):
        path = str(tmp_path / "BENCH_PROP.json")
        BenchReport.from_pytest_benchmarks(
            [fake_bench("same", 9e-6)]).write(path)
        current = BenchReport.from_pytest_benchmarks(
            [fake_bench("same", 1e-6)])
        assert current.merge_previous(path) == 0
        assert current.to_dict()["benchmarks"]["same"]["median_us"] == 1.0

    def test_missing_truncated_or_foreign_file_merges_nothing(self, tmp_path):
        report = BenchReport()
        assert report.merge_previous(str(tmp_path / "absent.json")) == 0
        truncated = tmp_path / "truncated.json"
        truncated.write_text('{"schema": "repro-bench/1", "bench')
        assert report.merge_previous(str(truncated)) == 0
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps({"schema": "other/1",
                                       "benchmarks": {"x": {}}}))
        assert report.merge_previous(str(foreign)) == 0

    def test_write_bench_report_merges_by_default(self, tmp_path):
        path = str(tmp_path / "BENCH_PROP.json")
        assert write_bench_report(path, [fake_bench("a", 1e-6)]) == path
        assert write_bench_report(path, [fake_bench("b", 2e-6)]) == path
        with open(path) as handle:
            data = json.load(handle)
        assert sorted(data["benchmarks"]) == ["a", "b"]

    def test_write_bench_report_merge_false_overwrites(self, tmp_path):
        path = str(tmp_path / "BENCH_PROP.json")
        write_bench_report(path, [fake_bench("a", 1e-6)])
        write_bench_report(path, [fake_bench("b", 2e-6)], merge=False)
        with open(path) as handle:
            data = json.load(handle)
        assert list(data["benchmarks"]) == ["b"]
