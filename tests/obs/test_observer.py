"""Tests for the Observer hub and its engine instrumentation hooks."""

import pytest

from repro.core import (
    EqualityConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.obs import MetricsRegistry, Observer, SpanRecorder, observe


def network():
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


class TestLifecycle:
    def test_install_and_uninstall(self, context):
        observer = Observer.metrics_only(context)
        assert context.observer is None
        observer.install()
        assert context.observer is observer
        assert context.scheduler.observer is observer
        observer.uninstall()
        assert context.observer is None
        assert context.scheduler.observer is None

    def test_uninstall_is_idempotent(self, context):
        observer = Observer.metrics_only(context).install()
        observer.uninstall()
        observer.uninstall()
        assert context.observer is None

    def test_uninstalls_cleanly_when_round_raises(self, context):
        """The registry must not leak onto the context when a round
        raises inside the ``with`` body (same contract as the tracer)."""

        class Defective(EqualityConstraint):
            armed = False

            def propagate_variable(self, variable):
                if self.armed:
                    raise RuntimeError("defective")
                super().propagate_variable(variable)

        a, b = Variable(name="a"), Variable(name="b")
        Defective(a, b).armed = True
        with pytest.raises(RuntimeError, match="defective"):
            with observe(context):
                a.set(5)
        assert context.observer is None
        assert context.scheduler.observer is None
        assert a.value is None  # the round restored before re-raising

    def test_nested_observers_restore_previous(self, context):
        outer = Observer.metrics_only(context).install()
        with Observer.full(context) as inner:
            assert context.observer is inner
        assert context.observer is outer
        outer.uninstall()

    def test_observe_helper_configures_instruments(self, context):
        with observe(context, metrics=True, spans=True, profiler=True) as obs:
            assert isinstance(obs.metrics, MetricsRegistry)
            assert isinstance(obs.spans, SpanRecorder)
        with observe(context) as obs:
            assert obs.spans is None and obs.profiler is None


class TestEngineCounters:
    def test_counters_mirror_engine_stats(self, context):
        v1, *_ = network()
        context.stats.reset()
        with observe(context) as obs:
            assert v1.set(9)
        metrics = obs.metrics
        stats = context.stats
        assert metrics.counter("engine.activations.total").value \
            == stats.constraint_activations
        assert metrics.counter("engine.inference_runs").value \
            == stats.inference_runs
        assert metrics.counter("engine.rounds.assign").value == 1
        assert metrics.counter("engine.round_outcomes.ok").value == 1

    def test_per_type_activation_counts(self, context):
        v1, *_ = network()
        with observe(context) as obs:
            assert v1.set(9)
        snap = obs.metrics.snapshot()
        assert snap["engine.activations.by_type.EqualityConstraint"] == 1
        assert "engine.activations.by_type.UniMaximumConstraint" in snap

    def test_round_latency_and_wavefront_depth_histograms(self, context):
        v1, *_ = network()
        with observe(context) as obs:
            assert v1.set(9)
            assert v1.set(8)
        snap = obs.metrics.snapshot()
        assert snap["engine.round_latency_us"]["count"] == 2
        assert snap["engine.round_latency_us"]["sum"] > 0
        assert snap["engine.wavefront_depth"]["count"] == 2
        assert snap["engine.wavefront_depth"]["max"] >= 1
        assert snap["engine.last_round_latency_us"]["value"] > 0

    def test_agenda_queue_metrics(self, context):
        v1, *_ = network()
        with observe(context) as obs:
            assert v1.set(9)
        snap = obs.metrics.snapshot()
        enqueued = snap["agenda.enqueued.functional_constraints"]
        assert enqueued >= 1
        assert snap["agenda.popped.functional_constraints"] == enqueued
        assert snap["agenda.queue_length.functional_constraints"]["count"] \
            == enqueued
        assert snap["engine.scheduled.functional_constraints"] >= enqueued

    def test_violation_and_restore_counters(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        UpperBoundConstraint(b, bound=3)
        with observe(context) as obs:
            assert not a.set(5)
        snap = obs.metrics.snapshot()
        assert snap["engine.violations"] == 1
        assert snap["engine.round_outcomes.violation"] == 1
        assert snap["engine.restores"] == 1
        assert snap["engine.restored_variables"] >= 2

    def test_probe_rounds_counted_and_restored(self, context):
        v1, *_ = network()
        with observe(context) as obs:
            assert context.probe(v1, 11)
        snap = obs.metrics.snapshot()
        assert snap["engine.rounds.probe"] == 1
        assert snap["engine.round_outcomes.ok"] == 1
        assert snap["engine.restores"] == 1
        assert v1.value == 7

    def test_repropagate_rounds_counted(self, context):
        a = Variable(3, name="a")
        b = Variable(name="b")
        with observe(context) as obs:
            EqualityConstraint(a, b)
        assert obs.metrics.counter("engine.rounds.repropagate").value == 1
        assert b.value == 3

    def test_no_observer_costs_nothing_functional(self, context):
        """With no observer installed everything behaves identically."""
        v1, v2, v3, v4 = network()
        assert context.observer is None
        assert v1.set(9)
        assert v4.value == 9


class TestSpansFromRounds:
    def test_round_and_inference_spans(self, context):
        v1, *_ = network()
        with observe(context, spans=True) as obs:
            assert v1.set(9)
        rounds = obs.spans.spans_of("round")
        assert [s.name for s in rounds] == ["round:assign"]
        assert rounds[0].args["outcome"] == "ok"
        assert rounds[0].args["subject"].startswith("V1")
        infers = obs.spans.spans_of("inference")
        assert infers and all(s.name == "infer" for s in infers)
        # inference spans nest inside the round span on the timeline
        assert all(rounds[0].start_us <= s.start_us for s in infers)

    def test_violation_emits_instant_marks(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, bound=3)
        with observe(context, spans=True) as obs:
            assert not a.set(5)
        names = [mark.name for mark in obs.spans.instants]
        assert "violation" in names
        assert "restore" in names


class TestCompileSpans:
    def test_compile_and_write_back_counted_and_spanned(self, context):
        from repro.core import compile_network
        a = Variable(2, name="a")
        b = Variable(3, name="b")
        total = Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        with observe(context, spans=True) as obs:
            plan = compile_network([a, b])
            plan.write_back({a: 10})
        snap = obs.metrics.snapshot()
        assert snap["compile.compile"] == 1
        assert snap["compile.write_back"] == 1
        names = [s.name for s in obs.spans.spans_of("compile")]
        assert "compile" in names and "write_back" in names
        assert total.value == 13


class TestHierarchyCrossings:
    def test_cross_level_counters_and_spans(self, context):
        from repro.stem import CellClass, Rect
        leaf = CellClass("LEAF")
        top = CellClass("TOP")
        instance = leaf.instantiate(top, "L1")
        with observe(context, spans=True) as obs:
            leaf.set_bounding_box(Rect.of_extent(10, 10))
        assert instance.bounding_box_var.value is not None
        snap = obs.metrics.snapshot()
        assert snap["hierarchy.cross_level.scheduled"] >= 1
        assert snap["hierarchy.cross_level.inferences"] >= 1
        assert snap["hierarchy.cross_level.adopted"] >= 1
        crossings = obs.spans.spans_of("hierarchy")
        assert crossings and crossings[0].name == "cross-level"
