"""Tests for the metrics primitives and registry."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_US,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.snapshot() == 0
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5

    def test_reset(self):
        c = Counter("x")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestGauge:
    def test_tracks_last_and_extremes(self):
        g = Gauge("depth")
        assert g.snapshot() == {"value": None, "min": None, "max": None}
        for value in (5, 2, 9):
            g.set(value)
        assert g.snapshot() == {"value": 9, "min": 2, "max": 9}


class TestHistogram:
    def test_observations_land_in_single_buckets(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for value in (5, 10, 11, 100, 5000):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == 5126
        assert snap["min"] == 5 and snap["max"] == 5000
        assert snap["buckets"] == {"<=10": 2, "<=100": 2, "<=1000": 0,
                                   "+inf": 1}

    def test_bounds_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(10, 5))
        with pytest.raises(ValueError):
            Histogram("empty", buckets=())

    def test_quantile_estimate(self):
        h = Histogram("lat", buckets=(10, 100, 1000))
        for value in [1] * 90 + [500] * 10:
            h.observe(value)
        assert h.quantile(0.5) == 10
        assert h.quantile(0.99) == 1000
        assert Histogram("e", buckets=(1,)).quantile(0.5) is None


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_is_sorted_plain_json_data(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.gauge("a.depth").set(3)
        registry.histogram("m.lat", buckets=(1, 10)).observe(4)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # plain data: serializes without custom encoders
        assert snap["z.count"] == 2

    def test_diff_subtracts_counts_keeps_point_samples(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=(10,)).observe(5)
        before = registry.snapshot()
        registry.counter("c").inc(3)
        registry.histogram("h", buckets=(10,)).observe(100)
        after = registry.snapshot()
        delta = MetricsRegistry.diff(before, after)
        assert delta["c"] == 3
        assert delta["h"]["count"] == 1
        assert delta["h"]["buckets"]["+inf"] == 1
        assert delta["h"]["max"] == 100  # point sample: after side

    def test_diff_tolerates_missing_keys(self):
        delta = MetricsRegistry.diff({}, {"c": 4})
        assert delta["c"] == 4

    def test_merge_adds_counts_and_combines_extremes(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("c").inc(1)
        right.counter("c").inc(2)
        left.histogram("h", buckets=(10,)).observe(3)
        right.histogram("h", buckets=(10,)).observe(50)
        merged = MetricsRegistry.merge(left.snapshot(), right.snapshot())
        assert merged["c"] == 3
        assert merged["h"]["count"] == 2
        assert merged["h"]["min"] == 3
        assert merged["h"]["max"] == 50

    def test_reset_clears_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h", buckets=(1,)).observe(2)
        registry.reset()
        assert registry.counter("c").value == 0
        assert registry.histogram("h", buckets=(1,)).count == 0

    def test_from_stats_bridges_propagation_stats(self, context):
        from repro.core import Variable
        Variable(name="v").set(1)
        registry = MetricsRegistry.from_stats(context.stats)
        snap = registry.snapshot()
        assert snap["engine.stats.rounds"] == context.stats.rounds
        assert snap["engine.stats.external_assignments"] == 1
        assert set(snap) == {f"engine.stats.{name}"
                             for name in context.stats.snapshot()}

    def test_default_latency_buckets_are_ascending(self):
        assert list(LATENCY_BUCKETS_US) == sorted(LATENCY_BUCKETS_US)
