"""Tests for the observability subsystem (repro.obs)."""
