"""Plan chains: trace, promote, replay, guard-fail, deopt, invalidate.

The chain cache must be a *pure* cache for batched rounds: a cache-on
context and a cache-off twin running the identical batch sequence must
end byte-identical — values, justification sources, violation feedback
and the full :class:`PropagationStats` snapshot (the replayed stats
delta included).
"""

import pytest

from repro.core import (
    EqualityConstraint,
    PlanCache,
    PropagationContext,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    source_constraint,
)


def build_motifs(context, count=3):
    entries, outputs = [], []
    for index in range(count):
        v1 = Variable(7, name=f"V1_{index}", context=context)
        v2 = Variable(7, name=f"V2_{index}", context=context)
        v3 = Variable(5, name=f"V3_{index}", context=context)
        v4 = Variable(7, name=f"V4_{index}", context=context)
        EqualityConstraint(v1, v2)
        UniMaximumConstraint(v4, [v2, v3])
        entries.append(v1)
        outputs.append(v4)
    return entries, outputs


def warm(context, cache, entries, rounds=6):
    """Alternate batch values until the batch key promotes to a chain."""
    for index in range(rounds):
        value = 9 if index % 2 == 0 else 8
        assert context.assign_many([(entry, value) for entry in entries])
    assert cache.chain_for(entries) is not None, cache.stats()


def state_of(context, variables):
    return [(v.value, type(source_constraint(v.last_set_by)).__name__
             if source_constraint(v.last_set_by) else None)
            for v in variables] + [context.stats.snapshot()]


class TestChainLifecycle:
    def test_repeated_batches_promote_to_a_chain(self):
        context = PropagationContext()
        cache = PlanCache(context)
        entries, _ = build_motifs(context)
        assert context.assign_many([(entry, 9) for entry in entries])
        assert cache.chain_for(entries) is None
        for value in (8, 9, 8):
            assert context.assign_many(
                [(entry, value) for entry in entries])
        assert cache.chain_for(entries) is not None, cache.stats()

    def test_hot_batch_replays_as_chain_hit(self):
        context = PropagationContext()
        cache = PlanCache(context)
        entries, outputs = build_motifs(context)
        warm(context, cache, entries)
        hits = cache.hits
        assert context.assign_many([(entry, 9) for entry in entries])
        assert cache.hits == hits + 1 and cache.deopts == 0
        assert all(out.value == 9 for out in outputs)

    def test_chain_key_is_the_entry_tuple(self):
        context = PropagationContext()
        cache = PlanCache(context)
        entries, _ = build_motifs(context)
        warm(context, cache, entries)
        # A different entry order is a different batch shape.
        assert cache.chain_for(list(reversed(entries))) is None
        assert cache.chain_for(entries[:-1]) is None


class TestPurity:
    def test_cache_on_equals_cache_off_full_stats(self):
        cached = PropagationContext()
        PlanCache(cached)
        plain = PropagationContext()
        c_entries, c_outputs = build_motifs(cached)
        p_entries, p_outputs = build_motifs(plain)

        for index in range(10):
            value = 9 if index % 2 == 0 else 8
            assert cached.assign_many(
                [(entry, value) for entry in c_entries])
            assert plain.assign_many(
                [(entry, value) for entry in p_entries])

        assert state_of(cached, c_entries + c_outputs) == \
               state_of(plain, p_entries + p_outputs)

    def test_coalesced_batches_replay_identically(self):
        cached = PropagationContext()
        PlanCache(cached)
        plain = PropagationContext()
        c_entries, c_outputs = build_motifs(cached)
        p_entries, p_outputs = build_motifs(plain)

        def batch(entries, value):
            # A redundant duplicate of the first entry every round.
            return [(entries[0], value - 1)] + \
                   [(entry, value) for entry in entries]

        for index in range(8):
            value = 9 if index % 2 == 0 else 8
            assert cached.assign_many(batch(c_entries, value))
            assert plain.assign_many(batch(p_entries, value))
        assert cached.stats.coalesced_assignments == 8
        assert state_of(cached, c_entries + c_outputs) == \
               state_of(plain, p_entries + p_outputs)


class TestGuardsAndDeopt:
    def test_none_entry_fails_the_guard_and_deopts(self):
        """The entry guard protects only none-ness; a None value where
        the traces saw numbers deopts to the general batched round."""
        context = PropagationContext()
        cache = PlanCache(context)
        entries, outputs = build_motifs(context)
        warm(context, cache, entries)
        deopts = cache.deopts
        batch = [(entry, 9) for entry in entries]
        batch[1] = (entries[1], None)
        assert context.assign_many(batch)
        assert cache.deopts == deopts + 1
        # The general round applied the batch correctly.
        assert outputs[0].value == 9 and outputs[2].value == 9
        assert entries[1].value is None

    def test_mid_batch_check_failure_deopts_then_rejects_atomically(self):
        """Tightening a bound without touching topology leaves the chain
        installed; its certification check fails mid-replay, the chain
        undo list restores the partial writes, and the general round
        re-runs the batch — which now violates and rolls back whole."""
        context = PropagationContext()
        cache = PlanCache(context)
        entries, outputs = build_motifs(context)
        bound = UpperBoundConstraint(outputs[1], 100)
        warm(context, cache, entries)
        assert context.assign_many([(entry, 9) for entry in entries])
        values_before = [v.value for v in entries + outputs]

        bound.bound = 8  # no topology epoch bump: the chain survives
        deopts = cache.deopts
        assert context.assign_many(
            [(entry, 20) for entry in entries]) is False
        assert cache.deopts == deopts + 1
        assert [v.value for v in entries + outputs] == values_before
        assert context.handler.last.kind == "violation"

    def test_dropped_mismatch_is_a_miss_not_a_deopt(self):
        """A batch with different coalescing than the traced shape is a
        plain miss: the chain stays installed for the hot shape."""
        context = PropagationContext()
        cache = PlanCache(context)
        entries, _ = build_motifs(context)
        warm(context, cache, entries)
        deopts, misses = cache.deopts, cache.misses
        # Same entry tuple after coalescing, but one duplicate dropped.
        assert context.assign_many(
            [(entries[0], 3)] + [(entry, 9) for entry in entries])
        assert cache.deopts == deopts
        assert cache.misses == misses + 1
        assert cache.chain_for(entries) is not None
        # The hot shape still replays as a hit.
        hits = cache.hits
        assert context.assign_many([(entry, 8) for entry in entries])
        assert cache.hits == hits + 1

    def test_topology_change_invalidates_the_chain(self):
        context = PropagationContext()
        cache = PlanCache(context)
        entries, outputs = build_motifs(context)
        warm(context, cache, entries)
        # New constraint: epoch bump, stale chain must not replay.
        extra = Variable(9, name="extra", context=context)
        UniMaximumConstraint(extra, [outputs[0]])
        assert cache.chain_for(entries) is None
        assert context.assign_many([(entry, 11) for entry in entries])
        assert extra.value == 11
