"""Tests for reconvergent fan-out handling (thesis section 9.2.3).

The strict one-value-change rule breaks reconvergent fan-outs: when one
change reaches a functional constraint through two paths, the constraint
legitimately computes a transient and then a final value.  The engine
allows a constraint to *recompute* its own result when an input changed
after the result was computed, with a livelock guard for true cycles.
"""

import pytest

from repro.core import (
    FormulaConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    Variable,
)


class TestReconvergentFanout:
    def test_diamond_converges(self):
        """a feeds two sums that feed a max: the max settles correctly."""
        a = Variable(1, name="a")
        s1 = Variable(name="s1")
        s2 = Variable(name="s2")
        top = Variable(name="top")
        one = Variable(1, name="one")
        two = Variable(2, name="two")
        UniAdditionConstraint(s1, [a, one])
        UniAdditionConstraint(s2, [a, two])
        UniMaximumConstraint(top, [s1, s2])
        assert a.set(10)
        assert s1.value == 11
        assert s2.value == 12
        assert top.value == 12

    def test_shared_source_sum(self):
        """total = x + x-derived value: transient then final."""
        x = Variable(1, name="x")
        doubled = Variable(name="doubled")
        total = Variable(name="total")
        FormulaConstraint(doubled, [x], lambda v: 2 * v, label="x2")
        UniAdditionConstraint(total, [x, doubled])
        assert x.set(5)
        assert doubled.value == 10
        assert total.value == 15

    def test_two_instances_feeding_one_sum(self):
        """The Fig. 5.1 shape: one lower-level value fans out into a sum."""
        shared = Variable(name="shared")
        copy1 = Variable(name="copy1")
        copy2 = Variable(name="copy2")
        FormulaConstraint(copy1, [shared], lambda v: v, label="id1")
        FormulaConstraint(copy2, [shared], lambda v: v, label="id2")
        total = Variable(name="total")
        UniAdditionConstraint(total, [copy1, copy2])
        assert shared.set(10)
        assert total.value == 20

    def test_deep_reconvergence(self):
        """Several layers of fan-out/fan-in still converge."""
        a = Variable(name="a")
        layer1 = [Variable(name=f"l1_{i}") for i in range(3)]
        for i, v in enumerate(layer1):
            FormulaConstraint(v, [a], (lambda k: lambda x: x + k)(i),
                              label=f"+{i}")
        total = Variable(name="total")
        UniAdditionConstraint(total, layer1)
        top = Variable(name="top")
        UniMaximumConstraint(top, [total, a])
        assert a.set(4)
        assert total.value == (4 + 0) + (4 + 1) + (4 + 2)
        assert top.value == 15

    def test_cycles_still_detected(self):
        """Recompute permission must not mask genuine cyclic divergence."""
        v1 = Variable(name="V1")
        v2 = Variable(name="V2")
        FormulaConstraint(v2, [v1], lambda x: x + 1, label="+1")
        FormulaConstraint(v1, [v2], lambda x: x + 1, label="+1b")
        assert not v1.set(0)
        assert v1.value is None
        assert v2.value is None

    def test_fig_4_9_cycle_still_detected(self):
        v1, v2, v3 = (Variable(name=f"V{i}") for i in (1, 2, 3))
        FormulaConstraint(v2, [v1], lambda x: x + 1, label="+1")
        FormulaConstraint(v3, [v2], lambda x: x + 3, label="+3")
        FormulaConstraint(v1, [v3], lambda x: x + 2, label="+2")
        assert not v1.set(10)

    def test_converging_cycle_terminates_successfully(self):
        """An identity cycle through functional constraints settles."""
        a = Variable(name="a")
        b = Variable(name="b")
        FormulaConstraint(b, [a], lambda x: x, label="id_ab")
        FormulaConstraint(a, [b], lambda x: x, label="id_ba")
        assert a.set(3)
        assert (a.value, b.value) == (3, 3)
