"""Tests for dependency analysis (section 4.2.4, Figs. 4.11/4.12)."""

from repro.core import (
    EqualityConstraint,
    UniAdditionConstraint,
    Variable,
    antecedents,
    consequences,
    variable_consequences,
)


def chain():
    """a --eq1-- b --eq2-- c with a user value flowing from a."""
    a, b, c = (Variable(name=n) for n in "abc")
    eq1 = EqualityConstraint(a, b)
    eq2 = EqualityConstraint(b, c)
    a.set(5)
    return a, b, c, eq1, eq2


class TestAntecedents:
    def test_independent_variable_is_its_own_antecedent_set(self):
        a = Variable(5, name="a")
        assert antecedents(a) == {a}

    def test_chain_antecedents(self):
        a, b, c, eq1, eq2 = chain()
        assert antecedents(c) == {c, eq2, b, eq1, a}

    def test_middle_of_chain(self):
        a, b, c, eq1, eq2 = chain()
        assert antecedents(b) == {b, eq1, a}

    def test_functional_result_depends_on_all_inputs(self):
        x, y = Variable(1, name="x"), Variable(2, name="y")
        total = Variable(name="total")
        add = UniAdditionConstraint(total, [x, y])
        result = antecedents(total)
        assert result == {total, add, x, y}

    def test_equality_antecedent_excludes_non_dependency_argument(self):
        a, b, c = (Variable(name=n) for n in "abc")
        eq = EqualityConstraint(a, b, c)
        a.set(5)
        # b's value came from a (the dependency record), not from c
        assert antecedents(b) == {b, eq, a}


class TestConsequences:
    def test_leaf_has_only_itself(self):
        a, b, c, *_ = chain()
        assert consequences(c) == {c}

    def test_chain_consequences(self):
        a, b, c, *_ = chain()
        assert consequences(a) == {a, b, c}

    def test_variable_consequences_excludes_seed(self):
        a, b, c, *_ = chain()
        assert variable_consequences(a) == {b, c}

    def test_functional_inputs_have_result_as_consequence(self):
        x, y = Variable(1, name="x"), Variable(2, name="y")
        total = Variable(name="total")
        UniAdditionConstraint(total, [x, y])
        assert variable_consequences(x) == {total}
        assert variable_consequences(y) == {total}

    def test_result_has_no_consequences_through_its_constraint(self):
        x = Variable(1, name="x")
        total = Variable(name="total")
        UniAdditionConstraint(total, [x])
        assert variable_consequences(total) == set()

    def test_user_values_are_not_consequences(self):
        a, b = Variable(name="a"), Variable(name="b")
        EqualityConstraint(a, b)
        a.set(1)
        b.set(1)  # user now owns b's value
        assert variable_consequences(a) == set()


class TestDiamond:
    """Reconvergent shape: a feeds two sums that feed a maximum."""

    def make(self):
        a = Variable(2, name="a")
        k1 = Variable(1, name="k1")
        k2 = Variable(3, name="k2")
        s1 = Variable(name="s1")
        s2 = Variable(name="s2")
        top = Variable(name="top")
        c1 = UniAdditionConstraint(s1, [a, k1])
        c2 = UniAdditionConstraint(s2, [a, k2])
        from repro.core import UniMaximumConstraint
        c3 = UniMaximumConstraint(top, [s1, s2])
        return a, k1, k2, s1, s2, top, c1, c2, c3

    def test_all_paths_found_in_consequences(self):
        a, k1, k2, s1, s2, top, *_ = self.make()
        assert variable_consequences(a) == {s1, s2, top}

    def test_antecedents_collect_both_paths(self):
        a, k1, k2, s1, s2, top, c1, c2, c3 = self.make()
        result = antecedents(top)
        assert {a, k1, k2, s1, s2, top, c1, c2, c3} == result

    def test_cycle_safe_traversal(self):
        """Self-referential shapes terminate."""
        a, b = Variable(name="a"), Variable(name="b")
        EqualityConstraint(a, b)
        a.set(1)
        # force an artificial cycle in the dependency graph
        assert a in antecedents(a)
        assert consequences(b) == {b}
