"""Tests for justification objects and the default overwrite rule."""

import pytest

from repro.core import (
    APPLICATION,
    DEFAULT,
    TENTATIVE,
    UPDATE,
    USER,
    Constraint,
    ExternalJustification,
    PropagatedJustification,
    Variable,
    is_propagated,
    is_user,
    may_overwrite,
    source_constraint,
)


class TestExternalJustification:
    def test_interning_returns_same_object(self):
        assert ExternalJustification("USER") is USER
        assert ExternalJustification("APPLICATION") is APPLICATION

    def test_new_symbols_are_distinct(self):
        a = ExternalJustification("CUSTOM_A")
        b = ExternalJustification("CUSTOM_B")
        assert a is not b
        assert a is ExternalJustification("CUSTOM_A")

    def test_name_property(self):
        assert USER.name == "USER"
        assert TENTATIVE.name == "TENTATIVE"

    def test_repr_uses_smalltalk_symbol_style(self):
        assert repr(USER) == "#USER"
        assert repr(UPDATE) == "#UPDATE"


class TestPropagatedJustification:
    def test_carries_constraint_and_record(self):
        constraint = object()
        record = ("dep",)
        j = PropagatedJustification(constraint, record)
        assert j.constraint is constraint
        assert j.dependency_record == record

    def test_default_record_is_none(self):
        j = PropagatedJustification(object())
        assert j.dependency_record is None


class TestPredicates:
    def test_is_user(self):
        assert is_user(USER)
        assert not is_user(APPLICATION)
        assert not is_user(PropagatedJustification(object()))
        assert not is_user(None)

    def test_is_propagated(self):
        assert is_propagated(PropagatedJustification(object()))
        assert not is_propagated(USER)
        assert not is_propagated(None)

    def test_source_constraint(self):
        c = object()
        assert source_constraint(PropagatedJustification(c)) is c
        assert source_constraint(USER) is None
        assert source_constraint(None) is None


class TestOverwriteRule:
    """Section 4.2.4: user values outrank propagated/calculated values."""

    def test_user_values_are_protected(self):
        assert not may_overwrite(USER)

    @pytest.mark.parametrize("justification",
                             [APPLICATION, UPDATE, TENTATIVE, DEFAULT, None])
    def test_non_user_external_values_yield(self, justification):
        assert may_overwrite(justification)

    def test_propagated_values_yield(self):
        assert may_overwrite(PropagatedJustification(object()))


class TestVariableJustificationIntegration:
    def test_constructor_value_is_application(self):
        v = Variable(5)
        assert v.last_set_by is APPLICATION

    def test_constructor_none_has_no_justification(self):
        v = Variable()
        assert v.last_set_by is None

    def test_set_defaults_to_user(self):
        v = Variable()
        v.set(3)
        assert v.last_set_by is USER

    def test_calculate_uses_application(self):
        v = Variable()
        v.calculate(3)
        assert v.last_set_by is APPLICATION

    def test_explicit_justification_respected(self):
        v = Variable()
        v.set(3, DEFAULT)
        assert v.last_set_by is DEFAULT
