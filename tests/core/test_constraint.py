"""Tests for constraint network editing (sections 4.1.2, 4.2.5)."""

import pytest

from repro.core import (
    Constraint,
    EqualityConstraint,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
)


class TestAttach:
    """Fig. 4.13: adding a constraint re-propagates its arguments."""

    def test_attach_propagates_existing_values(self):
        a = Variable(name="a")
        b = Variable(name="b")
        a.set(5)
        EqualityConstraint(a, b)
        assert b.value == 5

    def test_user_values_take_precedence_on_attach(self):
        a = Variable(name="a")
        b = Variable(name="b")
        a.calculate(3)
        b.set(7)  # USER
        EqualityConstraint(a, b)
        assert a.value == 7

    def test_attach_detects_immediate_violation(self):
        a = Variable(name="a")
        b = Variable(name="b")
        a.set(3)
        b.set(7)
        eq = EqualityConstraint(a, b, attach=False)
        assert not eq.attach()
        # constraint stays attached for inspection, values restored
        assert eq in a.constraints
        assert a.value == 3
        assert b.value == 7

    def test_attach_is_idempotent(self):
        a = Variable(name="a")
        eq = EqualityConstraint(a, Variable(name="b"))
        assert eq.attach()

    def test_deferred_attach(self):
        a = Variable(5, name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b, attach=False)
        assert eq not in a.constraints
        assert b.value is None
        eq.attach()
        assert b.value == 5

    def test_functional_attach_computes_result(self):
        x = Variable(2, name="x")
        y = Variable(3, name="y")
        total = Variable(name="total")
        UniAdditionConstraint(total, [x, y])
        assert total.value == 5


class TestAddArgument:
    def test_add_argument_repropagates(self):
        a = Variable(5, name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        c = Variable(name="c")
        assert eq.add_argument(c)
        assert c.value == 5

    def test_duplicate_argument_ignored(self):
        a = Variable(name="a")
        eq = EqualityConstraint(a, Variable(name="b"))
        eq.add_argument(a)
        assert eq.arguments.count(a) == 1


class TestRemoval:
    """Fig. 4.14: removal erases values the constraint justified."""

    def test_remove_erases_dependent_values(self):
        a = Variable(name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        a.set(5)
        assert b.value == 5
        eq.remove()
        assert b.value is None
        assert a.value == 5  # the user value survives

    def test_remove_erases_transitive_consequences(self):
        a = Variable(name="a")
        b = Variable(name="b")
        c = Variable(name="c")
        eq1 = EqualityConstraint(a, b)
        EqualityConstraint(b, c)
        a.set(5)
        assert c.value == 5
        eq1.remove()
        assert b.value is None
        assert c.value is None

    def test_remove_unlinks_from_variables(self):
        a = Variable(name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        eq.remove()
        assert eq not in a.constraints
        assert eq not in b.constraints
        assert not eq.attached

    def test_remove_argument_repropagates_remaining(self):
        a = Variable(name="a")
        b = Variable(name="b")
        c = Variable(name="c")
        eq = EqualityConstraint(a, b, c)
        a.set(5)
        assert eq.remove_argument(c)
        assert c.value is None
        assert b.value == 5  # remaining args re-propagated

    def test_remove_argument_when_value_set_by_other_source(self):
        """Removing an argument whose value the constraint did not set."""
        a = Variable(name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        a.set(5)
        # a's value is USER; removing a erases the consequence b
        eq.remove_argument(a)
        assert a.value == 5
        assert b.value is None

    def test_remove_missing_argument_is_noop(self):
        eq = EqualityConstraint(Variable(name="a"), Variable(name="b"))
        assert eq.remove_argument(Variable(name="z"))

    def test_values_can_be_reassigned_after_removal(self):
        a = Variable(name="a")
        bound = UpperBoundConstraint(a, 10)
        assert not a.set(20)
        bound.remove()
        assert a.set(20)
        assert a.value == 20


class TestBaseProtocol:
    def test_default_inference_does_nothing(self):
        a = Variable(1, name="a")
        b = Variable(2, name="b")
        Constraint(a, b)
        assert a.set(5)
        assert b.value == 2

    def test_default_is_satisfied(self):
        assert Constraint(Variable()).is_satisfied()

    def test_default_membership_is_conservative(self):
        c = Constraint(Variable())
        assert c.test_membership_of(Variable(), None)

    def test_qualified_name_lists_arguments(self):
        a = Variable(name="a")
        b = Variable(name="b")
        name = EqualityConstraint(a, b).qualified_name()
        assert "a" in name and "b" in name

    def test_non_nil_values(self):
        a = Variable(1)
        b = Variable()
        c = Constraint(a, b)
        assert c.non_nil_values() == [1]

    def test_violate_raises(self):
        from repro.core import PropagationViolation
        c = Constraint(Variable())
        with pytest.raises(PropagationViolation):
            c.violate(reason="test")
