"""Plan cache: trace, promote, replay, guard, deoptimize, invalidate.

The cache must be a *pure* cache — every test that matters compares a
cache-on context against a cache-off twin running the identical
assignment sequence and asserts byte-identical outcomes: values,
justification sources, violation feedback and the full
:class:`PropagationStats` snapshot.
"""

import pytest

from repro.core import (
    CompatibleConstraint,
    EqualityConstraint,
    PlanCache,
    PropagationContext,
    PropagationControl,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpdateConstraint,
    UpperBoundConstraint,
    Variable,
    plan_cache_for,
    source_constraint,
)
from repro.core.plancache import NOT_DERIVED


def build_fig4_5(context):
    """The thesis's worked example: V1=V2 equality, V4=max(V2,V3)."""
    v1 = Variable(name="V1", context=context)
    v2 = Variable(name="V2", context=context)
    v3 = Variable(5, name="V3", context=context)
    v4 = Variable(name="V4", context=context)
    eq = EqualityConstraint(v1, v2)
    mx = UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4, eq, mx


def warm(v1, rounds=6):
    for index in range(rounds):
        assert v1.set(9 if index % 2 == 0 else 8)


def state_of(context, variables):
    return [(v.value, type(source_constraint(v.last_set_by)).__name__
             if source_constraint(v.last_set_by) else None)
            for v in variables] + [context.stats.snapshot()]


class TestLifecycle:
    def test_first_sighting_registers_then_traces_then_promotes(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, *_ = build_fig4_5(context)
        assert v1.set(9)  # occurrence 1: register
        assert cache.traces == 0 and cache.plan_for(v1) is None
        assert v1.set(8)  # occurrence 2: first trace
        assert cache.traces == 1 and cache.plan_for(v1) is None
        assert v1.set(9)  # occurrence 3: confirming trace -> promote
        assert cache.promotions == 1 and cache.plan_for(v1) is not None
        assert v1.set(8)  # occurrence 4: replay
        assert cache.hits == 1

    def test_hot_threshold_requires_at_least_two(self):
        with pytest.raises(ValueError):
            PlanCache(PropagationContext(), hot_threshold=1)

    def test_plan_cache_for_is_idempotent(self):
        context = PropagationContext()
        cache = plan_cache_for(context)
        assert plan_cache_for(context) is cache
        cache.uninstall()
        assert getattr(context, "plan_cache") is None

    def test_changed_signature_resets_confirmation(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, eq, mx = build_fig4_5(context)
        assert v1.set(9)
        assert v1.set(8)  # trace A recorded
        # a structural change mid-warm-up invalidates the key entirely
        ub = UpperBoundConstraint(v4, 100)
        warm(v1)
        plan = cache.plan_for(v1)
        assert plan is not None
        assert any(step[0] == "c" and step[1] is ub for step in plan.steps)


class TestReplayEqualsGeneralEngine:
    def test_hit_matches_cache_off_twin(self):
        on, off = PropagationContext(), PropagationContext()
        cache = PlanCache(on)
        vars_on = build_fig4_5(on)[:4]
        vars_off = build_fig4_5(off)[:4]
        for index in range(10):
            value = 9 if index % 2 == 0 else 8
            assert vars_on[0].set(value)
            assert vars_off[0].set(value)
        assert cache.hits > 0
        assert state_of(on, vars_on) == state_of(off, vars_off)

    def test_derivations_read_current_values_not_recorded_ones(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, *_ = build_fig4_5(context)
        warm(v1)
        assert cache.plan_for(v1) is not None
        # V3 rises above the values the trace saw; the replayed write to
        # V4 now derives an unchanged value, the apply-decision guard
        # fails, and the general engine recomputes the round.
        assert v3.set(50)
        assert v1.set(7)
        assert cache.deopts == 1
        assert (v2.value, v4.value) == (7, 50)

    def test_entry_none_shape_guard(self):
        on, off = PropagationContext(), PropagationContext()
        cache = PlanCache(on)
        vars_on = build_fig4_5(on)[:4]
        vars_off = build_fig4_5(off)[:4]
        warm(vars_on[0])
        warm(vars_off[0])
        assert cache.plan_for(vars_on[0]) is not None
        # retracting through the hot key must not replay the value plan
        assert vars_on[0].set(None)
        assert vars_off[0].set(None)
        assert state_of(on, vars_on) == state_of(off, vars_off)

    def test_deopt_on_violation_is_byte_identical(self):
        on, off = PropagationContext(), PropagationContext()
        cache = PlanCache(on)
        v1, v2, v3, v4, eq, mx = build_fig4_5(on)
        w1, w2, w3, w4, _, _ = build_fig4_5(off)
        ub_on = UpperBoundConstraint(v4, 100)
        ub_off = UpperBoundConstraint(w4, 100)
        warm(v1)
        warm(w1)
        assert cache.plan_for(v1) is not None
        ub_on.bound = 7
        ub_off.bound = 7
        assert v1.set(9) is False  # guard fails -> deopt -> violation
        assert w1.set(9) is False
        assert cache.deopts == 1
        assert cache.plan_for(v1) is None
        assert state_of(on, (v1, v2, v3, v4)) == state_of(off,
                                                          (w1, w2, w3, w4))

    def test_stats_delta_makes_hits_invisible_to_counters(self):
        on, off = PropagationContext(), PropagationContext()
        PlanCache(on)
        vars_on = build_fig4_5(on)[:4]
        vars_off = build_fig4_5(off)[:4]
        for index in range(20):
            value = index % 3 + 1
            assert vars_on[0].set(value) == vars_off[0].set(value)
        assert on.stats.snapshot() == off.stats.snapshot()


class TestCertification:
    def test_update_constraint_round_is_unplannable(self):
        context = PropagationContext()
        cache = PlanCache(context)
        source = Variable(1, name="src", context=context)
        derived = Variable(99, name="cachevar", context=context)
        UpdateConstraint([source], [derived])
        for value in (2, 3, 4, 5, 6):
            source.set(value)
        assert cache.unplannable >= 1
        assert cache.plan_for(source) is None
        assert derived.value is None  # erasure semantics kept intact

    def test_functional_silence_guard(self):
        context = PropagationContext()
        cache = PlanCache(context)
        total = Variable(name="total", context=context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        UniAdditionConstraint(total, [a, b])
        # b stays None: the adder is visited but silent in every round
        warm(a)
        plan = cache.plan_for(a)
        assert plan is not None
        assert any(step[0] == "g" for step in plan.steps)
        # completing the inputs breaks the silence guard -> deopt
        assert b.set(1)
        assert a.set(4)
        assert cache.deopts == 1
        assert total.value == 5

    def test_compatible_constraint_plans(self):
        context = PropagationContext()
        cache = PlanCache(context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        CompatibleConstraint(a, b)
        for _ in range(6):  # re-asserting the same value keeps b compatible
            assert a.set(9)
        assert cache.plan_for(a) is not None
        assert a.set(9) and b.value == 9
        assert cache.hits >= 1

    def test_trace_budget_disables_thrashing_key(self):
        context = PropagationContext()
        cache = PlanCache(context, max_trace_attempts=3)
        v1 = Variable(name="v1", context=context)
        v2 = Variable(name="v2", context=context)
        EqualityConstraint(v1, v2)
        ub = UpperBoundConstraint(v2, 100)
        for index in range(12):
            # flip the bound so every promoted plan deopts immediately
            ub.bound = 100 if index % 2 == 0 else (0 - 1)
            v1.set(index % 2)
        assert cache.unplannable >= 1

    def test_not_derived_sentinel_is_distinct(self):
        assert NOT_DERIVED is not None
        assert bool(NOT_DERIVED)


class TestInvalidation:
    def test_adding_a_constraint_invalidates(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, *_ = build_fig4_5(context)
        warm(v1)
        assert cache.plan_for(v1) is not None
        epoch = context.topology_epoch
        UpperBoundConstraint(v4, 100)
        assert context.topology_epoch > epoch
        assert cache.plan_for(v1) is None
        assert cache.invalidations >= 1

    def test_removing_a_constraint_invalidates(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, eq, mx = build_fig4_5(context)
        warm(v1)
        assert cache.plan_for(v1) is not None
        mx.remove()
        assert cache.plan_for(v1) is None
        # rounds after removal re-trace correctly: V4 no longer follows
        assert v1.set(3)
        assert v2.value == 3 and v4.value != 3

    def test_control_disable_and_enable_both_invalidate(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, eq, mx = build_fig4_5(context)
        control = PropagationControl(context)
        warm(v1)
        assert cache.plan_for(v1) is not None
        control.disable_constraint(mx)
        assert cache.plan_for(v1) is None
        warm(v1)  # re-promotes under the disabled shape
        assert cache.plan_for(v1) is not None
        assert v1.set(3) and v4.value != 3
        control.enable_constraint(mx)
        assert cache.plan_for(v1) is None

    def test_noop_control_calls_do_not_invalidate(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, eq, mx = build_fig4_5(context)
        control = PropagationControl(context)
        warm(v1)
        epoch = context.topology_epoch
        control.enable_constraint(mx)  # was never disabled: no change
        assert context.topology_epoch == epoch
        assert cache.plan_for(v1) is not None

    def test_stem_instantiation_bumps_epoch(self):
        from repro.stem import CellClass

        context = PropagationContext()
        cache = PlanCache(context)
        parent = CellClass("ADD", context=context)
        parent.define_signal("x", "in")
        top = CellClass("TOP", context=context)
        epoch = context.topology_epoch
        parent.instantiate(top, "A1")
        assert context.topology_epoch > epoch

    def test_clear_drops_everything(self):
        context = PropagationContext()
        cache = PlanCache(context)
        v1, *_ = build_fig4_5(context)
        warm(v1)
        assert cache.plan_count == 1
        cache.clear()
        assert cache.plan_count == 0 and cache.stats()["keys"] == 0


class TestObservability:
    def test_plan_events_reach_the_observer(self):
        from repro.obs import Observer

        context = PropagationContext()
        cache = PlanCache(context)
        v1, v2, v3, v4, *_ = build_fig4_5(context)
        with Observer.metrics_only(context) as observer:
            warm(v1)
            assert v1.set(3)
        snapshot = observer.metrics.snapshot()
        assert snapshot["plan.hit"] == cache.hits
        assert snapshot["plan.miss"] >= 1
        assert snapshot["plan.promotion"] == 1
        assert snapshot["plan.replay"] == cache.hits + cache.deopts

    def test_stats_keys_are_sorted(self):
        cache = PlanCache(PropagationContext())
        assert list(cache.stats()) == sorted(cache.stats())
