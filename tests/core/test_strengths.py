"""Tests for constraint strengths (§4.2.4's deferred precedence rule)."""

import pytest

from repro.core import EqualityConstraint, USER
from repro.core.strengths import (
    DEFAULT_STRENGTH,
    MEDIUM,
    REQUIRED,
    STRONG,
    StrengthAwareVariable,
    USER_STRENGTH,
    WEAK,
    strength_of_constraint,
    with_strength,
)

WeakEquality = with_strength(EqualityConstraint, WEAK, "WeakEquality")
StrongEquality = with_strength(EqualityConstraint, STRONG, "StrongEquality")
RequiredEquality = with_strength(EqualityConstraint, REQUIRED,
                                 "RequiredEquality")


class TestDeclaration:
    def test_default_strength(self):
        c = EqualityConstraint(StrengthAwareVariable(name="a"),
                               StrengthAwareVariable(name="b"))
        assert strength_of_constraint(c) == DEFAULT_STRENGTH

    def test_with_strength_factory(self):
        assert WeakEquality.strength == WEAK
        assert WeakEquality.__name__ == "WeakEquality"
        assert issubclass(StrongEquality, EqualityConstraint)


class TestOverwriteByStrength:
    def make(self):
        target = StrengthAwareVariable(name="target")
        weak_source = StrengthAwareVariable(name="weak_source")
        strong_source = StrengthAwareVariable(name="strong_source")
        WeakEquality(weak_source, target)
        StrongEquality(strong_source, target)
        return target, weak_source, strong_source

    def test_strong_overwrites_weak(self):
        target, weak_source, strong_source = self.make()
        weak_source.calculate(1)
        assert target.value == 1
        assert strong_source.calculate(2)
        assert target.value == 2

    def test_weak_defers_to_strong_silently(self):
        target, weak_source, strong_source = self.make()
        strong_source.calculate(2)
        assert target.value == 2
        # the weak constraint may not overwrite; and its own equality
        # check would now fail, so the weak source's new value violates
        assert not weak_source.calculate(1)
        assert target.value == 2

    def test_equal_strength_overwrites(self):
        target = StrengthAwareVariable(name="target")
        s1 = StrengthAwareVariable(name="s1")
        s2 = StrengthAwareVariable(name="s2")
        StrongEquality(s1, target)
        StrongEquality(s2, target)
        s1.calculate(1)
        assert s2.calculate(2)
        assert target.value == 2

    def test_user_value_needs_required_strength(self):
        target = StrengthAwareVariable(name="target")
        source = StrengthAwareVariable(name="source")
        target.set(5, USER)
        assert USER_STRENGTH == REQUIRED
        # a merely-strong constraint cannot move a designer decision
        StrongEquality(source, target)
        assert not source.calculate(7)
        assert target.value == 5

    def test_required_constraint_moves_user_value(self):
        target = StrengthAwareVariable(name="target")
        source = StrengthAwareVariable(name="source")
        target.set(5, USER)
        RequiredEquality(source, target)
        assert source.calculate(7)
        assert target.value == 7

    def test_agreeing_values_always_fine(self):
        target, weak_source, strong_source = self.make()
        strong_source.calculate(2)
        assert weak_source.calculate(2)  # agrees: no conflict

    def test_unknown_accepts_anything(self):
        target = StrengthAwareVariable(name="target")
        source = StrengthAwareVariable(name="source")
        WeakEquality(source, target)
        assert source.calculate(3)
        assert target.value == 3


class TestMixedWithPlainVariables:
    def test_plain_variables_ignore_strengths(self):
        from repro.core import Variable
        target = Variable(name="target")
        source = Variable(name="source")
        WeakEquality(source, target)
        source.calculate(1)
        assert target.value == 1  # plain rule: propagated overwrites
