"""Edge-case tests for the propagation engine."""

import pytest

from repro.core import (
    APPLICATION,
    Constraint,
    EqualityConstraint,
    FormulaConstraint,
    UPDATE,
    UniAdditionConstraint,
    UpperBoundConstraint,
    USER,
    Variable,
)


class TestInRoundExternalAssignment:
    """Tools assigning values while propagation runs (update hooks)."""

    def test_hook_triggered_reset_joins_the_round(self, context):
        """A post-store hook that erases another variable participates
        in the same round (the Fig. 7.8 pattern)."""
        erased = Variable(99, name="erased")

        class Hooked(Variable):
            def on_stored_by_assignment(self):
                if erased.raw_value is not None:
                    erased.set(None, UPDATE)

        trigger = Hooked(name="trigger")
        watcher = Variable(name="watcher")
        EqualityConstraint(erased, watcher)
        assert trigger.set(1)
        assert erased.value is None

    def test_hook_changes_restored_on_violation(self, context):
        """If the round later violates, hook-driven changes roll back too."""
        erased = Variable(99, name="erased")

        class Hooked(Variable):
            def on_stored_by_assignment(self):
                erased.set(None, UPDATE)

        trigger = Hooked(name="trigger")
        UpperBoundConstraint(trigger, 10)
        assert not trigger.set(50)
        assert trigger.value is None
        assert erased.value == 99  # the hook's erasure was undone

    def test_hook_not_run_during_restore(self, context):
        """Restores bypass hooks: no cascade from rollback."""
        calls = []

        class Counting(Variable):
            def on_stored_by_assignment(self):
                calls.append(self.value)

        v = Counting(name="v")
        UpperBoundConstraint(v, 10)
        v.set(5)
        assert calls == [5]
        v.set(50)          # violation: store (hook), restore (no hook)
        assert calls == [5, 50]


class TestProbeEdgeCases:
    def test_probe_inside_round_rejected(self, context):
        a = Variable(name="a")
        with context._round_scope():
            with pytest.raises(RuntimeError):
                context.probe(a, 1)

    def test_probe_with_disabled_propagation_accepts(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        with context.propagation_disabled():
            assert a.can_be_set_to(99)  # no checking while disabled

    def test_probe_does_not_count_as_violation_stat(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        context.stats.reset()
        a.can_be_set_to(99)
        assert context.stats.violations == 0

    def test_probe_same_value_is_cheap(self, context):
        a = Variable(5, name="a")
        b = Variable(5, name="b")
        EqualityConstraint(a, b)
        assert a.can_be_set_to(5)
        assert a.value == 5


class TestConstraintCreationDuringRound:
    def test_constraint_attached_mid_round_propagates_in_round(self, context):
        """E.g. a hook that instantiates constraints while propagating."""
        late = Variable(name="late")
        peer = Variable(name="peer")

        class Builder(Variable):
            built = False

            def on_stored_by_assignment(self):
                if not Builder.built:
                    Builder.built = True
                    EqualityConstraint(late, peer)

        trigger = Builder(name="trigger")
        late.set(3)
        assert trigger.set(1)
        assert peer.value == 3  # the new constraint propagated immediately


class TestJustificationInteractions:
    def test_update_overwrites_user_on_external_assignment(self):
        """External assignments always store, whatever was there."""
        v = Variable(name="v")
        v.set(5, USER)
        assert v.set(None, UPDATE)
        assert v.value is None

    def test_propagation_into_structure_justified_value(self):
        from repro.core.justification import STRUCTURE
        a = Variable(name="a")
        b = Variable(name="b")
        b.set(10, STRUCTURE)
        EqualityConstraint(a, b)
        assert not a.set(3)   # STRUCTURE protects like USER
        assert a.set(10)

    def test_tentative_values_are_overwritable(self):
        from repro.core import TENTATIVE
        a = Variable(name="a")
        b = Variable(name="b")
        b.set(10, TENTATIVE)
        EqualityConstraint(a, b)
        assert a.set(3)
        assert b.value == 3


class TestMultipleRounds:
    def test_state_does_not_leak_between_rounds(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        for value in range(20):
            assert a.set(value)
        assert b.value == 19
        assert not context.in_round

    def test_violation_then_success(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        assert not a.set(50)
        assert a.set(5)
        assert not a.set(11)
        assert a.value == 5

    def test_alternating_constraint_editing_and_assignment(self):
        a = Variable(1, name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        assert b.value == 1
        eq.remove()
        assert b.value is None
        a.set(2)
        EqualityConstraint(a, b)
        assert b.value == 2


class TestZeroAndFalsyValues:
    """Zero, empty string and False are real values, not 'unknown'."""

    def test_zero_propagates(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        assert a.set(0)
        assert b.value == 0

    def test_false_propagates(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        assert a.set(False)
        assert b.value is False

    def test_zero_checked_by_bounds(self):
        a = Variable(name="a")
        UpperBoundConstraint(a, -1)
        assert not a.set(0)

    def test_sum_of_zeros(self):
        x, y = Variable(0), Variable(0)
        total = Variable(name="total")
        UniAdditionConstraint(total, [x, y])
        assert total.value == 0


class TestConstraintBaseEdges:
    def test_empty_constraint_uses_default_context(self, context):
        c = Constraint(attach=False)
        assert c.context is context

    def test_remove_unattached_constraint(self):
        a = Variable(1, name="a")
        c = EqualityConstraint(a, Variable(name="b"), attach=False)
        c.remove()  # no-op, must not raise
        assert not c.attached

    def test_reattach_after_remove(self):
        a = Variable(1, name="a")
        b = Variable(name="b")
        eq = EqualityConstraint(a, b)
        eq.remove()
        # rebuild the same relation with a fresh constraint
        EqualityConstraint(a, b)
        assert b.value == 1
