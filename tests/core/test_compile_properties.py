"""Property-based equivalence: engine vs. compiled vs. proceduralized.

For randomly generated layered functional DAGs, the declarative engine,
the topologically sorted plan and the generated straight-line function
must compute identical values — the compilation extension's soundness
property.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PropagationContext,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
    Variable,
    compile_network,
)

CONSTRAINT_KINDS = [UniAdditionConstraint, UniMaximumConstraint,
                    UniMinimumConstraint]


@st.composite
def layered_dags(draw):
    """A random layered DAG description: inputs + per-node wiring."""
    n_inputs = draw(st.integers(min_value=2, max_value=5))
    n_nodes = draw(st.integers(min_value=1, max_value=10))
    nodes = []
    for index in range(n_nodes):
        pool_size = n_inputs + index
        arity = draw(st.integers(min_value=1, max_value=min(3, pool_size)))
        sources = draw(st.lists(st.integers(0, pool_size - 1),
                                min_size=arity, max_size=arity,
                                unique=True))
        kind = draw(st.integers(0, len(CONSTRAINT_KINDS) - 1))
        nodes.append((kind, sources))
    values = draw(st.lists(st.integers(-50, 50), min_size=n_inputs,
                           max_size=n_inputs))
    return n_inputs, nodes, values


def build(description):
    n_inputs, nodes, values = description
    context = PropagationContext()
    pool = [Variable(v, name=f"in{i}", context=context)
            for i, v in enumerate(values)]
    derived = []
    for index, (kind, sources) in enumerate(nodes):
        result = Variable(name=f"n{index}", context=context)
        CONSTRAINT_KINDS[kind](result, [pool[s] for s in sources])
        pool.append(result)
        derived.append(result)
    inputs = pool[:n_inputs]
    return inputs, derived


class TestCompiledEquivalence:
    @given(description=layered_dags())
    @settings(max_examples=60, deadline=None)
    def test_plan_matches_engine(self, description):
        inputs, derived = build(description)
        plan = compile_network(inputs)
        results = plan.evaluate()
        for variable in derived:
            assert results[variable] == variable.value

    @given(description=layered_dags())
    @settings(max_examples=60, deadline=None)
    def test_proceduralized_matches_engine(self, description):
        inputs, derived = build(description)
        plan = compile_network(inputs)
        fn = plan.proceduralize()
        out = fn(*[v.value for v in inputs])
        for variable in derived:
            assert out[fn.slot_of[variable]] == variable.value

    @given(description=layered_dags(), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_agreement_survives_updates(self, description, data):
        inputs, derived = build(description)
        plan = compile_network(inputs)
        index = data.draw(st.integers(0, len(inputs) - 1))
        new_value = data.draw(st.integers(-50, 50))
        assert inputs[index].set(new_value)
        results = plan.evaluate()
        for variable in derived:
            assert results[variable] == variable.value
