"""Wavefront-engine contracts: queue iteration, stats, restore paths.

The engine drives propagation from an explicit per-round event queue
instead of interpreter recursion.  These tests pin down the behaviours
that the queue design must guarantee beyond the ordering semantics the
rest of the suite already asserts: iteration depth independent of the C
stack, honest stats for mid-round tool assignments, the disabled-probe
contract, and full restoration when a defective constraint raises from
any entry point.
"""

import sys

import pytest

from repro.core import (
    Constraint,
    EqualityConstraint,
    PropagationTrace,
    Variable,
)
from repro.core.justification import UPDATE


class ExplodingAfterWrite(Constraint):
    """Writes a value to ``victim`` and then raises (a tool bug)."""

    def __init__(self, *variables, victim=None, attach=True):
        self.victim = victim
        self.armed = False
        super().__init__(*variables, attach=attach)

    def immediate_inference_by_changing(self, variable):
        if not self.armed:
            return
        if self.victim is not None and variable is not self.victim:
            self.victim.set_propagated(123, self)
        raise RuntimeError("inference bug")


class TestDeepChainIteration:
    def test_50k_chain_without_recursion(self):
        """A 50k-deep chain propagates on the default interpreter stack.

        The recursive engine needed ``sys.setrecursionlimit`` headroom of
        the chain length; the wavefront loop must neither hit
        ``RecursionError`` nor touch the interpreter's recursion limit.
        """
        limit_before = sys.getrecursionlimit()
        depth = 50_000
        variables = [Variable(name=f"v{i}") for i in range(depth + 1)]
        for left, right in zip(variables, variables[1:]):
            EqualityConstraint(left, right)
        assert variables[0].set(7)
        assert variables[-1].value == 7
        assert sys.getrecursionlimit() == limit_before

    def test_deep_chain_violation_restores_everything(self, context):
        """Rollback after a deep wavefront restores every visited variable."""
        depth = 5_000
        variables = [Variable(name=f"v{i}") for i in range(depth + 1)]
        for left, right in zip(variables, variables[1:]):
            EqualityConstraint(left, right)
        variables[-1].set(1)          # propagates 1 through the whole chain
        assert not variables[0].set(2)  # conflicts with the established value
        assert variables[0].value == 1  # restored, not left at 2
        assert variables[depth // 2].value == 1
        assert variables[-1].value == 1


class TestDisabledProbe:
    def test_disabled_probe_is_noop_accept(self, context):
        """With the CPSwitch off a probe accepts without storing/checking."""
        a = Variable(5, name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        rounds_before = context.stats.rounds
        with context.propagation_disabled():
            assert a.can_be_set_to(999) is True   # would violate if checked
        assert a.value == 5                        # nothing was stored
        assert b.value == 5
        assert context.stats.rounds == rounds_before  # no round ran


class TestInRoundAssignmentStats:
    def test_hook_assignment_counts_as_external(self, context):
        """A tool assignment joining an active round is still external."""
        erased = Variable(99, name="erased")

        class Hooked(Variable):
            def on_stored_by_assignment(self):
                if erased.raw_value is not None:
                    erased.set(None, UPDATE)

        trigger = Hooked(name="trigger")
        assert trigger.set(1)
        assert erased.value is None
        assert context.stats.external_assignments == 2

    def test_schedule_choke_point_traces(self, context):
        """Agenda deferral is counted and traced at ``context.schedule``."""
        from repro.core import FormulaConstraint

        x = Variable(name="x")
        r = Variable(name="r")
        FormulaConstraint(r, [x], lambda v: v + 1, label="+1")
        trace = PropagationTrace(context)
        trace.install()
        try:
            x.set(1)
        finally:
            trace.uninstall()
        assert r.value == 2
        kinds = [event.kind for event in trace.events]
        assert "schedule" in kinds
        assert kinds.index("schedule") < kinds.index("infer")
        assert context.stats.scheduled_entries >= 1


class TestRestoreOnToolBugs:
    def test_assign_path_restores_all_visited(self, context):
        """``assign``'s non-violation exception branch restores the round."""
        a = Variable(name="a")
        mid = Variable(name="mid")
        tail = Variable(name="tail")
        EqualityConstraint(mid, tail)
        bad = ExplodingAfterWrite(a, mid, victim=mid)
        bad.armed = True
        with pytest.raises(RuntimeError, match="inference bug"):
            a.set(1)
        assert a.value is None
        assert mid.value is None     # partial write rolled back
        assert tail.value is None
        assert not context.in_round
        assert context.scheduler.is_empty()

    def test_repropagate_path_restores_all_visited(self, context):
        """``repropagate_constraint`` restores too when inference raises."""
        a = Variable(name="a")
        mid = Variable(name="mid")
        bad = ExplodingAfterWrite(a, mid, victim=mid)
        a.set(5)                      # quiet: not armed yet
        bad.armed = True
        with pytest.raises(RuntimeError, match="inference bug"):
            context.repropagate_constraint(bad)
        assert a.value == 5           # re-asserted value restored
        assert mid.value is None      # mid-round write rolled back
        assert not context.in_round
        assert context.scheduler.is_empty()
