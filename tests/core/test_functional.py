"""Tests for functional constraints and agenda deferral (section 4.2.1)."""

from repro.core import (
    FormulaConstraint,
    ScaleOffsetConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
    Variable,
)


class TestUniAddition:
    def test_computes_sum(self):
        a, b, total = Variable(2), Variable(3), Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        assert total.value == 5

    def test_recomputes_on_input_change(self):
        a, b, total = Variable(2), Variable(3), Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        a.set(10)
        assert total.value == 13

    def test_incomplete_inputs_infer_nothing(self):
        a, b, total = Variable(2), Variable(name="b"), Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        assert total.value is None
        b.set(4)
        assert total.value == 6

    def test_result_change_does_not_drive_constraint(self, context):
        a, b, total = Variable(2), Variable(3), Variable(name="total")
        c = UniAdditionConstraint(total, [a, b])
        assert not c.permits_changes_by(total)
        assert c.permits_changes_by(a)

    def test_inconsistent_result_detected_by_final_check(self):
        a, b = Variable(2), Variable(3)
        total = Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        # total currently 5; a user value that disagrees is a violation
        assert not total.set(99)
        assert total.value == 5

    def test_agreeing_user_result_accepted(self):
        a, b = Variable(2), Variable(3)
        total = Variable(name="total")
        UniAdditionConstraint(total, [a, b])
        assert total.set(5)

    def test_works_with_non_numeric_addition(self):
        a, b = Variable("foo"), Variable("bar")
        joined = Variable(name="joined")
        UniAdditionConstraint(joined, [a, b])
        assert joined.value == "foobar"


class TestUniMaximumMinimum:
    def test_maximum(self):
        a, b, m = Variable(4), Variable(9), Variable(name="m")
        UniMaximumConstraint(m, [a, b])
        assert m.value == 9
        a.set(20)
        assert m.value == 20

    def test_minimum(self):
        a, b, m = Variable(4), Variable(9), Variable(name="m")
        UniMinimumConstraint(m, [a, b])
        assert m.value == 4
        b.set(1)
        assert m.value == 1

    def test_single_input(self):
        a, m = Variable(4), Variable(name="m")
        UniMaximumConstraint(m, [a])
        assert m.value == 4


class TestScaleOffset:
    def test_affine_mapping(self):
        x, y = Variable(10), Variable(name="y")
        ScaleOffsetConstraint(y, x, scale=2, offset=3)
        assert y.value == 23
        x.set(0)
        assert y.value == 3

    def test_identity_defaults(self):
        x, y = Variable(7), Variable(name="y")
        ScaleOffsetConstraint(y, x)
        assert y.value == 7


class TestFormula:
    def test_arbitrary_function(self):
        a, b, r = Variable(6), Variable(3), Variable(name="r")
        FormulaConstraint(r, [a, b], lambda x, y: x // y, label="div")
        assert r.value == 2

    def test_label_in_qualified_name(self):
        a, r = Variable(6, name="a"), Variable(name="r")
        c = FormulaConstraint(r, [a], lambda x: -x, label="neg")
        assert "neg" in c.qualified_name()


class TestChainedFunctionalNetworks:
    """Delay-network shape: sums feeding a maximum (Fig. 7.12)."""

    def make_delay_network(self):
        d1, d2, d3 = Variable(3, name="d1"), Variable(4, name="d2"), Variable(6, name="d3")
        path_a = Variable(name="path_a")
        path_b = Variable(name="path_b")
        worst = Variable(name="worst")
        UniAdditionConstraint(path_a, [d1, d2])   # 7
        UniAdditionConstraint(path_b, [d3])        # 6
        UniMaximumConstraint(worst, [path_a, path_b])
        return d1, d2, d3, path_a, path_b, worst

    def test_initial_evaluation(self):
        *_, worst = self.make_delay_network()
        assert worst.value == 7

    def test_update_flows_through_layers(self):
        d1, d2, d3, path_a, path_b, worst = self.make_delay_network()
        d3.set(20)
        assert path_b.value == 20
        assert worst.value == 20

    def test_agenda_defers_until_drain(self, context):
        """One external change triggers exactly one inference per constraint."""
        d1, d2, d3, path_a, path_b, worst = self.make_delay_network()
        context.stats.reset()
        d1.set(10)
        # path_a recomputed once, worst recomputed once
        assert context.stats.inference_runs == 2


class TestDependencyProtocol:
    def test_result_depends_on_every_input(self):
        a, b, r = Variable(1), Variable(2), Variable(name="r")
        c = UniAdditionConstraint(r, [a, b])
        assert c.test_membership_of(a, None)
        assert c.test_membership_of(b, None)
        assert not c.test_membership_of(r, None)
