"""Batched rounds: assign_many semantics, coalescing, atomic rollback.

The batched round must be *observably equivalent* to applying the same
assignments one by one — identical values and justification sources —
while running as one round: one satisfaction sweep, one violation
record, one atomic rollback covering every entry, one RoundBudget span.
"""

import pytest

from repro.core import (
    APPLICATION,
    USER,
    EqualityConstraint,
    FormulaConstraint,
    PropagationContext,
    RoundBudget,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    source_constraint,
)
from repro.obs import Observer


def build_motifs(context, count=4):
    """Independent fig. 4.5 motifs: V1=V2, V4=max(V2, V3)."""
    entries, outputs = [], []
    for index in range(count):
        v1 = Variable(7, name=f"V1_{index}", context=context)
        v2 = Variable(7, name=f"V2_{index}", context=context)
        v3 = Variable(5, name=f"V3_{index}", context=context)
        v4 = Variable(7, name=f"V4_{index}", context=context)
        EqualityConstraint(v1, v2)
        UniMaximumConstraint(v4, [v2, v3])
        entries.append(v1)
        outputs.append(v4)
    return entries, outputs


def network_image(variables):
    """Values plus justification identity — the rollback contract."""
    return [(v.raw_value, v.last_set_by) for v in variables]


def state_of(context, variables):
    return [(v.value,
             type(source_constraint(v.last_set_by)).__name__
             if source_constraint(v.last_set_by) else None)
            for v in variables] + [context.stats.snapshot()]


class TestBatchEquivalence:
    def test_batch_matches_sequential_twin(self):
        batched = PropagationContext()
        sequential = PropagationContext()
        b_entries, b_outputs = build_motifs(batched)
        s_entries, s_outputs = build_motifs(sequential)

        assert batched.assign_many(
            [(entry, 9 + index) for index, entry in enumerate(b_entries)])
        for index, entry in enumerate(s_entries):
            assert entry.set(9 + index)

        b_vars = b_entries + b_outputs
        s_vars = s_entries + s_outputs
        assert [(v.value, type(source_constraint(v.last_set_by)).__name__
                 if source_constraint(v.last_set_by) else None)
                for v in b_vars] == \
               [(v.value, type(source_constraint(v.last_set_by)).__name__
                 if source_constraint(v.last_set_by) else None)
                for v in s_vars]

    def test_batch_runs_one_round(self):
        context = PropagationContext()
        entries, _ = build_motifs(context)
        before = context.stats.rounds
        assert context.assign_many([(entry, 9) for entry in entries])
        assert context.stats.rounds == before + 1
        assert context.stats.external_assignments == len(entries)

    def test_pairs_take_call_justification_triples_their_own(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(2, name="b", context=context)
        assert context.assign_many(
            [(a, 10), (b, 20, APPLICATION)], justification=USER)
        assert a.last_set_by is USER
        assert b.last_set_by is APPLICATION

    def test_empty_batch_is_a_no_op(self):
        context = PropagationContext()
        before = context.stats.rounds
        assert context.assign_many([])
        assert context.stats.rounds == before


class TestCoalescing:
    def test_last_write_wins(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(2, name="b", context=context)
        assert context.assign_many([(a, 5), (b, 6), (a, 7)])
        assert a.value == 7 and b.value == 6
        assert context.stats.coalesced_assignments == 1
        # Only the surviving seeds count as external assignments.
        assert context.stats.external_assignments == 2

    def test_coalescing_matches_sequential_order(self):
        """The later entry keeps the later position: a duplicate must
        land *after* entries between the two occurrences, exactly as
        sequential application would leave it."""
        batched = PropagationContext()
        sequential = PropagationContext()

        def build(context):
            a = Variable(0, name="a", context=context)
            b = Variable(0, name="b", context=context)
            out = Variable(0, name="out", context=context)
            UniMaximumConstraint(out, [a, b])
            return a, b, out

        ba, bb, bout = build(batched)
        sa, sb, sout = build(sequential)
        assert batched.assign_many([(ba, 9), (bb, 3), (ba, 1)])
        for variable, value in [(sa, 9), (sb, 3), (sa, 1)]:
            assert variable.set(value)
        assert (ba.value, bb.value, bout.value) == \
               (sa.value, sb.value, sout.value)

    def test_no_duplicates_no_coalescing(self):
        context = PropagationContext()
        entries, _ = build_motifs(context)
        assert context.assign_many([(entry, 9) for entry in entries])
        assert context.stats.coalesced_assignments == 0


class TestAtomicRollback:
    def test_violation_in_late_entry_rolls_back_all(self):
        context = PropagationContext()
        entries, outputs = build_motifs(context, count=3)
        # Third motif rejects: its V4 may not exceed 8.
        UpperBoundConstraint(outputs[2], 8)
        watched = entries + outputs
        before = network_image(watched)

        assert context.assign_many(
            [(entries[0], 20), (entries[1], 30), (entries[2], 40)]) is False
        # Entries 0 and 1 completed before entry 2 violated — they
        # must be rolled back too, values AND justifications.
        assert network_image(watched) == before
        assert context.handler.last.kind == "violation"
        assert context.stats.violations == 1

    def test_violating_batch_matches_sequential_failure_values(self):
        """After a rejected batch the network must look exactly as if
        nothing happened — same as the sequential twin never applying
        the rejected assignment."""
        batched = PropagationContext()
        b_entries, b_outputs = build_motifs(batched, count=2)
        UpperBoundConstraint(b_outputs[1], 8)
        assert batched.assign_many(
            [(b_entries[0], 20), (b_entries[1], 30)]) is False
        assert b_entries[0].value == 7 and b_outputs[0].value == 7
        assert b_entries[1].value == 7 and b_outputs[1].value == 7

    def test_budget_abort_inside_batch_is_atomic(self):
        """A RoundBudget covers the whole batch: when a late entry's
        wavefront exhausts the step budget, the abort rolls back every
        entry (including the already-completed ones) and records a
        ``budget`` violation."""
        context = PropagationContext()
        chains = []
        for index in range(3):
            variables = [Variable(0, name=f"c{index}_{i}", context=context)
                         for i in range(8)]
            for left, right in zip(variables, variables[1:]):
                EqualityConstraint(left, right)
            chains.append(variables)
        watched = [v for chain in chains for v in chain]
        before = network_image(watched)

        # Two chains propagate within budget; the accumulated steps of
        # the third cross the limit mid-batch.
        context.round_budget = RoundBudget(max_steps=18)
        assert context.assign_many(
            [(chain[0], 5) for chain in chains]) is False
        assert network_image(watched) == before
        assert context.handler.last.kind == "budget"
        assert context.stats.budget_aborts == 1

    def test_generous_budget_admits_the_whole_batch(self):
        context = PropagationContext()
        entries, outputs = build_motifs(context)
        context.round_budget = RoundBudget(max_steps=10_000)
        assert context.assign_many([(entry, 9) for entry in entries])
        assert all(out.value == 9 for out in outputs)
        assert context.stats.budget_aborts == 0


class TestRoundIntegration:
    def test_batch_inside_active_round_joins_it(self):
        """assign_many from propagation code joins the open round —
        entries spread on the spot, no nested round opens."""
        context = PropagationContext()
        side_a = Variable(0, name="side_a", context=context)
        side_b = Variable(0, name="side_b", context=context)
        armed = []

        def spill(value):
            if armed:
                armed.clear()
                assert context.assign_many([(side_a, 41), (side_b, 42)])
            return value

        source = Variable(0, name="source", context=context)
        sink = Variable(0, name="sink", context=context)
        FormulaConstraint(sink, [source], spill)
        armed.append(True)
        rounds_before = context.stats.rounds
        assert source.set(5)
        assert sink.value == 5
        assert (side_a.value, side_b.value) == (41, 42)
        assert context.stats.rounds == rounds_before + 1

    def test_disabled_context_stores_without_checking(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        bound = Variable(1, name="bound", context=context)
        UpperBoundConstraint(bound, 3)
        context.enabled = False
        rounds_before = context.stats.rounds
        assert context.assign_many([(a, 50), (bound, 99)])
        # Stored unchecked: the out-of-bound value stands, no round ran.
        assert bound.value == 99
        assert context.stats.rounds == rounds_before
        context.enabled = True
        assert context.stats.violations == 0

    def test_observer_batch_metrics(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(2, name="b", context=context)
        with Observer.metrics_only(context) as observer:
            assert context.assign_many([(a, 5), (b, 6), (a, 7)])
        snapshot = observer.metrics.snapshot()
        assert snapshot["engine.batch.rounds"] == 1
        assert snapshot["engine.batch.entries"] == 3
        assert snapshot["engine.batch.coalesced"] == 1
        assert snapshot["engine.batch.last_size"]["value"] == 3
        assert snapshot["engine.rounds.batch"] == 1
