"""Tests for fine-grained propagation control (section 9.3 extension)."""

import pytest

from repro.core import (
    EqualityConstraint,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.core.control import PropagationControl, control_for


def small_network():
    a, b, c = (Variable(name=n) for n in "abc")
    eq1 = EqualityConstraint(a, b)
    eq2 = EqualityConstraint(b, c)
    return a, b, c, eq1, eq2


class TestIndividualConstraints:
    def test_disabled_constraint_does_not_propagate(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_constraint(eq2)
        a.set(5)
        assert b.value == 5
        assert c.value is None

    def test_disabled_constraint_does_not_check(self, context):
        a = Variable(name="a")
        bound = UpperBoundConstraint(a, 10)
        control_for(context).disable_constraint(bound)
        assert a.set(99)
        assert a.value == 99

    def test_reenable(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_constraint(eq2)
        a.set(5)
        control.enable_constraint(eq2)
        a.set(6)
        assert c.value == 6

    def test_disabled_listing(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_constraint(eq1)
        assert control.disabled_constraints() == [eq1]


class TestTypeSelector:
    def test_disable_type(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        total = Variable(name="total")
        EqualityConstraint(a, b)
        UniAdditionConstraint(total, [a, b])
        control_for(context).disable_type(UniAdditionConstraint)
        a.set(5)
        assert b.value == 5       # equality still live
        assert total.value is None  # additions disabled

    def test_subclasses_included(self, context):
        from repro.core import FormulaConstraint, FunctionalConstraint
        a = Variable(name="a")
        r = Variable(name="r")
        FormulaConstraint(r, [a], lambda x: x + 1)
        control_for(context).disable_type(FunctionalConstraint)
        a.set(5)
        assert r.value is None

    def test_enable_type(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_type(EqualityConstraint)
        a.set(5)
        assert b.value is None
        control.enable_type(EqualityConstraint)
        a.set(6)
        assert c.value == 6


class TestVariableSelector:
    def test_disable_constraints_touching_variable(self, context):
        a, b, c, eq1, eq2 = small_network()
        control_for(context).disable_variable(c)
        a.set(5)
        assert b.value == 5
        assert c.value is None

    def test_enable_variable(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_variable(c)
        a.set(5)
        control.enable_variable(c)
        a.set(6)
        assert c.value == 6


class TestNetworkSelector:
    def test_disable_whole_network(self, context):
        a, b, c, eq1, eq2 = small_network()
        # a second, unrelated network stays live
        x, y = Variable(name="x"), Variable(name="y")
        eq3 = EqualityConstraint(x, y)
        count = control_for(context).disable_network_of(b)
        assert count == 2
        a.set(5)
        assert b.value is None
        x.set(7)
        assert y.value == 7


class TestFilters:
    def test_predicate_filter(self, context):
        a, b, c, eq1, eq2 = small_network()
        control_for(context).add_filter(lambda constraint: c in
                                        constraint.arguments)
        a.set(5)
        assert b.value == 5
        assert c.value is None

    def test_clear_reenables_everything(self, context):
        a, b, c, eq1, eq2 = small_network()
        control = control_for(context)
        control.disable_type(EqualityConstraint)
        control.add_filter(lambda constraint: True)
        control.clear()
        a.set(5)
        assert c.value == 5


class TestControlFor:
    def test_installed_once(self, context):
        control = control_for(context)
        assert control_for(context) is control
        assert context.control is control

    def test_allows_by_default(self, context):
        a, b, c, eq1, eq2 = small_network()
        assert control_for(context).allows(eq1)
