"""Vectorized sweeps: plan compilation, both backends, engine parity.

The sweep is a pure whole-network evaluator; its ground truth is the
propagation engine.  Every value column must match what real rounds
produce, the mask must match real accept/reject decisions, and the two
backends must agree to the bit.
"""

import struct

import pytest

from repro.core import (
    CompatibleConstraint,
    EqualityConstraint,
    FormulaConstraint,
    HAVE_NUMPY,
    PropagationContext,
    RangeConstraint,
    ScaleOffsetConstraint,
    SweepError,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    compile_sweep,
    sweep,
)
from repro.stem.implicit import ClassInstVar, InstanceInstVar


def build_fig4_5(context):
    v1 = Variable(7, name="V1", context=context)
    v2 = Variable(7, name="V2", context=context)
    v3 = Variable(5, name="V3", context=context)
    v4 = Variable(7, name="V4", context=context)
    EqualityConstraint(v1, v2)
    UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4


class TestEngineParity:
    def test_values_match_real_propagation(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        candidates = [0.0, 2.5, 5.0, 6.0, 11.0]
        result = sweep([v1], candidates)

        for index, value in enumerate(candidates):
            assert v1.set(value)
            assert result.values[v1][index] == float(v1.value)
            assert result.values[v2][index] == float(v2.value)
            assert result.values[v4][index] == float(v4.value)

    def test_mask_matches_real_accept_reject(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        UpperBoundConstraint(v4, 6)
        candidates = [0.0, 3.0, 6.0, 6.5, 9.0]
        result = sweep([v1], candidates)

        accepted = [bool(v1.set(value)) for value in candidates]
        assert result.mask == accepted
        assert result.satisfied_count == sum(accepted)

    def test_sweep_stores_nothing(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        rounds = context.stats.rounds
        sweep([v1], [1.0, 2.0, 3.0])
        assert v1.value == 7 and v4.value == 7
        assert context.stats.rounds == rounds

    def test_constants_are_read_per_run(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        plan = compile_sweep([v1])
        assert plan.run([1.0]).values[v4] == [5.0]  # max(1, v3=5)
        assert v3.set(20)
        assert plan.run([1.0]).values[v4] == [20.0]

    def test_multi_input_sweep(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(2, name="b", context=context)
        total = Variable(3, name="total", context=context)
        UniAdditionConstraint(total, [a, b])
        result = sweep([a, b], [[1.0, 2.0, 3.0], [10.0, 20.0, 30.0]])
        assert result.values[total] == [11.0, 22.0, 33.0]


class TestCompilation:
    def test_unsupported_constraint_raises(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(1, name="b", context=context)
        CompatibleConstraint(a, b)
        with pytest.raises(SweepError, match="CompatibleConstraint"):
            compile_sweep([a])

    def test_duplicate_input_raises(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        with pytest.raises(SweepError, match="duplicate"):
            compile_sweep([a, a])

    def test_empty_inputs_raises(self):
        with pytest.raises(SweepError, match="at least one"):
            compile_sweep([])

    def test_scale_offset_and_range(self):
        context = PropagationContext()
        raw = Variable(0, name="raw", context=context)
        scaled = Variable(0, name="scaled", context=context)
        ScaleOffsetConstraint(scaled, raw, scale=2.0, offset=1.0)
        RangeConstraint(scaled, 3.0, 7.0)
        result = sweep([raw], [0.0, 1.0, 2.0, 3.0, 4.0])
        assert result.values[scaled] == [1.0, 3.0, 5.0, 7.0, 9.0]
        assert result.mask == [False, True, True, True, False]

    def test_formula_constraint_goes_element_wise(self):
        context = PropagationContext()
        x = Variable(0, name="x", context=context)
        y = Variable(0, name="y", context=context)
        FormulaConstraint(y, [x], lambda value: value * value + 1)
        result = sweep([x], [0.0, 2.0, 3.0])
        assert result.values[y] == [1.0, 5.0, 10.0]

    def test_reconvergent_paths_become_a_check(self):
        """Two independent derivations of one variable: the sweep masks
        agreement, exactly as propagation would flag disagreement."""
        context = PropagationContext()
        x = Variable(0, name="x", context=context)
        doubled = Variable(0, name="doubled", context=context)
        ScaleOffsetConstraint(doubled, x, scale=2.0, offset=0.0)
        shifted = Variable(0, name="shifted", context=context)
        ScaleOffsetConstraint(shifted, x, scale=1.0, offset=3.0)
        EqualityConstraint(doubled, shifted)  # 2x == x + 3 only at x=3
        result = sweep([x], [0.0, 3.0, 6.0])
        assert result.mask == [False, True, False]


class TestRunValidation:
    def test_unset_constant_raises_at_run(self):
        context = PropagationContext()
        v1 = Variable(7, name="V1", context=context)
        v3 = Variable(name="V3", context=context)  # no value
        v4 = Variable(7, name="V4", context=context)
        UniMaximumConstraint(v4, [v1, v3])
        plan = compile_sweep([v1])
        with pytest.raises(SweepError, match="has no value"):
            plan.run([1.0])

    def test_non_numeric_candidate_raises(self):
        context = PropagationContext()
        v1, *_ = build_fig4_5(context)
        plan = compile_sweep([v1])
        with pytest.raises(SweepError, match="non-numeric"):
            plan.run(["not-a-number"])

    def test_column_length_mismatch_raises(self):
        context = PropagationContext()
        a = Variable(1, name="a", context=context)
        b = Variable(2, name="b", context=context)
        total = Variable(3, name="total", context=context)
        UniAdditionConstraint(total, [a, b])
        plan = compile_sweep([a, b])
        with pytest.raises(SweepError, match="differ in length"):
            plan.run([[1.0, 2.0], [1.0]])

    def test_unknown_backend_raises(self):
        context = PropagationContext()
        v1, *_ = build_fig4_5(context)
        plan = compile_sweep([v1])
        with pytest.raises(SweepError, match="unknown sweep backend"):
            plan.run([1.0], backend="fortran")

    @pytest.mark.skipif(HAVE_NUMPY, reason="numpy is importable here")
    def test_numpy_backend_without_numpy_raises(self):
        context = PropagationContext()
        v1, *_ = build_fig4_5(context)
        plan = compile_sweep([v1])
        with pytest.raises(SweepError, match="numpy"):
            plan.run([1.0], backend="numpy")

    def test_python_backend_always_works(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        result = sweep([v1], [1.0, 9.0], backend="python")
        assert result.backend == "python"
        assert result.values[v4] == [5.0, 9.0]


class TestHierarchyLinks:
    def test_instance_variable_sweeps_through_its_link(self):
        """The implicit link to the class characteristic is inert in its
        checking-only direction — sweeping the instance side works."""
        context = PropagationContext()
        class_var = ClassInstVar(3, name="classVar", context=context)
        instance_var = InstanceInstVar(3, name="instVar", context=context)
        class_var.register_instance_var(instance_var)
        derived = Variable(0, name="derived", context=context)
        ScaleOffsetConstraint(derived, instance_var, scale=2.0, offset=0.0)
        result = sweep([instance_var], [1.0, 2.0])
        assert result.values[derived] == [2.0, 4.0]

    def test_varying_class_characteristic_is_rejected(self):
        """Class-to-instance adoption is procedural; a sweep that would
        need it has no vector form."""
        context = PropagationContext()
        class_var = ClassInstVar(3, name="classVar", context=context)
        instance_var = InstanceInstVar(3, name="instVar", context=context)
        class_var.register_instance_var(instance_var)
        with pytest.raises(SweepError, match="hierarchy link"):
            compile_sweep([class_var])


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy backend not importable")
class TestBackendIdentity:
    def test_backends_bit_equal_on_awkward_floats(self):
        context = PropagationContext()
        v1, v2, v3, v4 = build_fig4_5(context)
        UpperBoundConstraint(v4, 61.875)
        plan = compile_sweep([v1])
        candidates = [value * 0.644 + 0.125 for value in range(101)]

        with_numpy = plan.run(candidates, backend="numpy")
        pure_python = plan.run(candidates, backend="python")
        assert with_numpy.backend == "numpy"
        assert with_numpy.mask == pure_python.mask
        for variable, column in with_numpy.values.items():
            assert struct.pack(f"<{len(column)}d", *column) == \
                   struct.pack(f"<{len(column)}d",
                               *pure_python.values[variable])

    def test_auto_backend_prefers_numpy(self):
        context = PropagationContext()
        v1, *_ = build_fig4_5(context)
        assert compile_sweep([v1]).run([1.0]).backend == "numpy"
