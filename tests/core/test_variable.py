"""Tests for Variable objects (section 4.1.1)."""

import pytest

from repro.core import (
    APPLICATION,
    USER,
    Constraint,
    EqualityConstraint,
    PropagationContext,
    Variable,
)


class Parent:
    def __init__(self, name):
        self.name = name


class TestIdentification:
    def test_qualified_name_with_parent(self):
        v = Variable(parent=Parent("ADDER"), name="boundingBox")
        assert v.qualified_name() == "ADDER.boundingBox"

    def test_qualified_name_free_standing(self):
        v = Variable(name="x")
        assert v.qualified_name() == "x"

    def test_qualified_name_anonymous(self):
        v = Variable()
        assert v.qualified_name().startswith("<variable@")

    def test_repr_shows_name_and_value(self):
        v = Variable(3, name="x")
        assert "x" in repr(v)
        assert "3" in repr(v)


class TestValueAccess:
    def test_initial_value(self):
        assert Variable(5).value == 5
        assert Variable().value is None

    def test_value_is_read_only_property(self):
        v = Variable(5)
        with pytest.raises(AttributeError):
            v.value = 6

    def test_is_dependent_false_for_external(self):
        v = Variable(5)
        assert not v.is_dependent()
        v.set(6)
        assert not v.is_dependent()

    def test_is_dependent_true_for_propagated(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        a.set(1)
        assert b.is_dependent()
        assert not a.is_dependent()

    def test_reset_erases_silently(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        a.set(1)
        b.reset()
        assert b.value is None
        assert b.last_set_by is None
        assert a.value == 1  # no propagation from reset


class TestConstraintLinks:
    def test_creation_registers_with_variables(self):
        a, b = Variable(name="a"), Variable(name="b")
        eq = EqualityConstraint(a, b)
        assert eq in a.constraints
        assert eq in b.constraints

    def test_all_constraints_default(self):
        a, b = Variable(name="a"), Variable(name="b")
        eq = EqualityConstraint(a, b)
        assert a.all_constraints() == [eq]

    def test_add_constraint_is_idempotent(self):
        a = Variable(name="a")
        c = Constraint(a)
        a.add_constraint(c)
        assert a.constraints.count(c) == 1

    def test_remove_constraint_missing_is_noop(self):
        a = Variable(name="a")
        a.remove_constraint(object())  # must not raise

    def test_base_variable_has_no_implicit_constraints(self):
        assert Variable().implicit_constraints() == ()


class TestContextOwnership:
    def test_default_context_used(self, context):
        assert Variable().context is context

    def test_explicit_context(self):
        ctx = PropagationContext()
        v = Variable(context=ctx)
        assert v.context is ctx

    def test_cross_context_constraint_rejected(self):
        ctx = PropagationContext()
        a = Variable(name="a")
        b = Variable(name="b", context=ctx)
        with pytest.raises(ValueError):
            EqualityConstraint(a, b)


class TestClassifyPropagated:
    def test_equal_value_ignored(self):
        v = Variable(5)
        assert v.classify_propagated(5, None) == "ignore"

    def test_none_current_applies(self):
        v = Variable()
        assert v.classify_propagated(5, None) == "apply"

    def test_user_current_violates(self):
        v = Variable()
        v.set(5, USER)
        assert v.classify_propagated(6, None) == "violate"

    def test_application_current_applies(self):
        v = Variable()
        v.calculate(5)
        assert v.classify_propagated(6, None) == "apply"

    def test_values_equal_hook(self):
        class Tolerant(Variable):
            def values_equal(self, a, b):
                return a is not None and b is not None and abs(a - b) < 0.5

        v = Tolerant(5.0)
        assert v.classify_propagated(5.2, None) == "ignore"
        assert v.classify_propagated(6.0, None) == "apply"


class TestSetReturnValues:
    def test_set_returns_true_on_success(self):
        assert Variable().set(1)

    def test_set_equal_value_still_true(self):
        v = Variable(1)
        assert v.set(1)
