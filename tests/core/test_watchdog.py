"""The propagation watchdog: RoundBudget aborts runaway rounds cleanly."""

import time

import pytest

from repro.core import (
    BudgetExceeded,
    EqualityConstraint,
    FormulaConstraint,
    PropagationContext,
    RoundBudget,
    Variable,
    default_context,
    plan_cache_for,
)
from repro.obs import Observer


def chain(n, context=None, fn=None):
    """x0 -> x1 -> ... -> xn, each link one constraint dispatch."""
    context = context or default_context()
    variables = [Variable(0, name=f"x{i}", context=context)
                 for i in range(n + 1)]
    for left, right in zip(variables, variables[1:]):
        if fn is None:
            EqualityConstraint(left, right)
        else:
            FormulaConstraint(right, [left], fn)
    return variables


def network_image(variables):
    return [(v.raw_value, v.last_set_by) for v in variables]


class TestRoundBudgetValidation:
    def test_requires_at_least_one_limit(self):
        with pytest.raises(ValueError):
            RoundBudget()

    def test_rejects_nonpositive_limits(self):
        with pytest.raises(ValueError):
            RoundBudget(max_steps=0)
        with pytest.raises(ValueError):
            RoundBudget(max_seconds=0.0)


class TestStepBudget:
    def test_round_within_budget_is_untouched(self):
        variables = chain(10)
        default_context().round_budget = RoundBudget(max_steps=1000)
        assert variables[0].set(5)
        assert variables[-1].value == 5

    def test_runaway_round_aborts_and_restores(self):
        variables = chain(50)
        context = default_context()
        context.round_budget = RoundBudget(max_steps=5)
        before = network_image(variables)
        assert variables[0].set(9) is False
        # Byte-identical rollback: values AND justifications.
        assert network_image(variables) == before
        record = context.handler.last
        assert record.kind == "budget"
        assert "step budget" in record.reason
        assert context.stats.budget_aborts == 1
        assert context.stats.violations == 1

    def test_no_budget_means_no_limit(self):
        variables = chain(50)
        assert default_context().round_budget is None
        assert variables[0].set(9)
        assert variables[-1].value == 9

    def test_observer_counts_budget_aborts(self):
        variables = chain(50)
        context = default_context()
        context.round_budget = RoundBudget(max_steps=5)
        with Observer.metrics_only(context) as observer:
            assert variables[0].set(9) is False
        snapshot = observer.metrics.snapshot()
        assert snapshot["engine.budget.aborts"] == 1
        assert snapshot["engine.round_outcomes.budget"] == 1
        assert snapshot["engine.budget.last_steps"]["value"] >= 5

    def test_budget_exceeded_carries_structured_detail(self):
        variables = chain(50)
        context = PropagationContext()
        vs = [Variable(0, name=f"y{i}", context=context) for i in range(9)]
        for left, right in zip(vs, vs[1:]):
            EqualityConstraint(left, right)
        context.round_budget = RoundBudget(max_steps=3)
        context.handler.clear()
        assert vs[0].set(1) is False
        record = context.handler.last
        assert record.kind == "budget"
        # The signal's counters surfaced in the reason string.
        assert "3" in record.reason


class TestWallTimeBudget:
    def test_slow_round_aborts(self):
        def slowly(value):
            time.sleep(0.002)
            return value

        variables = chain(100, fn=slowly)
        context = default_context()
        context.round_budget = RoundBudget(max_seconds=0.01)
        before = network_image(variables)
        assert variables[0].set(3) is False
        assert network_image(variables) == before
        record = context.handler.last
        assert record.kind == "budget"
        assert "wall-time" in record.reason
        assert context.stats.budget_aborts == 1


class TestPlanCacheInteraction:
    def test_budget_guards_the_deopt_path_and_never_caches_aborts(self):
        context = default_context()
        variables = chain(50)
        cache = plan_cache_for(context)
        context.round_budget = RoundBudget(max_steps=5)
        before = network_image(variables)
        # First round records; it aborts, so nothing may be cached.
        assert variables[0].set(9) is False
        assert network_image(variables) == before
        assert cache.stats()["promotions"] == 0
        # Second round (same trigger) must abort identically, not replay
        # a half-baked plan.
        assert variables[0].set(9) is False
        assert network_image(variables) == before
        assert context.stats.budget_aborts == 2

    def test_cached_plan_still_works_once_budget_is_lifted(self):
        context = default_context()
        variables = chain(10)
        plan_cache_for(context)
        context.round_budget = RoundBudget(max_steps=1000)
        assert variables[0].set(4)
        assert variables[0].set(6)
        assert variables[-1].value == 6
