"""Tests for constraint network compilation (section 9.3 extension)."""

import pytest

from repro.core import (
    FormulaConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    Variable,
)
from repro.core.compile import CompilationError, CompiledNetwork, compile_network


def delay_like_network():
    """Two paths summed, then maxed — the chapter 7 delay shape."""
    d1 = Variable(3, name="d1")
    d2 = Variable(4, name="d2")
    d3 = Variable(6, name="d3")
    path_a = Variable(name="path_a")
    path_b = Variable(name="path_b")
    worst = Variable(name="worst")
    UniAdditionConstraint(path_a, [d1, d2])
    UniAdditionConstraint(path_b, [d3])
    UniMaximumConstraint(worst, [path_a, path_b])
    return d1, d2, d3, path_a, path_b, worst


class TestCompilation:
    def test_topological_order(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        order = [c.result_variable for c in plan.constraints]
        assert order.index(worst) > order.index(path_a)
        assert order.index(worst) > order.index(path_b)
        assert set(plan.derived) == {path_a, path_b, worst}

    def test_cycle_rejected(self):
        a = Variable(name="a")
        b = Variable(name="b")
        FormulaConstraint(b, [a], lambda x: x + 1, attach=False).attach()
        FormulaConstraint(a, [b], lambda x: x - 1)
        with pytest.raises(CompilationError):
            compile_network([a])

    def test_non_functional_constraints_ignored(self):
        from repro.core import EqualityConstraint
        a = Variable(1, name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        plan = compile_network([a])
        assert plan.constraints == []


class TestEvaluation:
    def test_matches_engine_results(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        results = plan.evaluate()
        assert results[path_a] == 7
        assert results[path_b] == 6
        assert results[worst] == 7

    def test_override_inputs_without_mutation(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        results = plan.evaluate({d3: 100})
        assert results[worst] == 100
        assert d3.value == 6          # untouched
        assert worst.value == 7       # engine value untouched

    def test_missing_inputs_yield_none(self):
        d1 = Variable(name="d1")
        total = Variable(name="total")
        UniAdditionConstraint(total, [d1])
        plan = compile_network([d1])
        assert plan.evaluate()[total] is None

    def test_write_back(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        plan.write_back({d1: 10})
        assert d1.value == 10
        assert path_a.value == 14
        assert worst.value == 14

    def test_external_constant_inputs(self):
        """A derived node may mix plan inputs with outside constants."""
        x = Variable(5, name="x")
        k = Variable(100, name="k")  # not listed as an input
        total = Variable(name="total")
        UniAdditionConstraint(total, [x, k])
        plan = compile_network([x])
        assert plan.evaluate({x: 7})[total] == 107


class TestProceduralization:
    def test_generated_function_matches_plan(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        fn = plan.proceduralize()
        out = fn(3, 4, 6)
        assert out[fn.slot_of[worst]] == 7
        out = fn(10, 4, 6)
        assert out[fn.slot_of[worst]] == 14

    def test_source_is_inspectable(self):
        d1, d2, d3, *_ = delay_like_network()
        fn = compile_network([d1, d2, d3]).proceduralize()
        assert "def _compiled(" in fn.source

    def test_agrees_with_engine_on_updates(self):
        d1, d2, d3, path_a, path_b, worst = delay_like_network()
        plan = compile_network([d1, d2, d3])
        fn = plan.proceduralize()
        for update in (1, 5, 9):
            d1.set(update)
            assert fn(d1.value, d2.value, d3.value)[fn.slot_of[worst]] \
                == worst.value

    def test_constants_frozen_at_compile_time(self):
        x = Variable(5, name="x")
        k = Variable(100, name="k")
        total = Variable(name="total")
        UniAdditionConstraint(total, [x, k])
        fn = compile_network([x]).proceduralize()
        assert fn(1)[fn.slot_of[total]] == 101
        k.set(200)  # the procedural form is rigid (thesis section 6.5.2)
        assert fn(1)[fn.slot_of[total]] == 101
