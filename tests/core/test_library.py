"""Tests for the general-purpose constraint library."""

from repro.core import (
    APPLICATION,
    CompatibleConstraint,
    EqualityConstraint,
    UpdateConstraint,
    Variable,
)


class TestEqualityConstraint:
    def test_three_way_equality(self):
        a, b, c = (Variable(name=n) for n in "abc")
        EqualityConstraint(a, b, c)
        a.set(5)
        assert (b.value, c.value) == (5, 5)

    def test_any_argument_drives(self):
        a, b, c = (Variable(name=n) for n in "abc")
        EqualityConstraint(a, b, c)
        c.set(9)
        assert (a.value, b.value) == (9, 9)

    def test_none_values_not_propagated(self):
        a, b = Variable(name="a"), Variable(5, name="b")
        EqualityConstraint(a, b)
        assert a.value == 5  # attach propagated b's value

    def test_is_satisfied_ignores_nones(self):
        a, b, c = Variable(3), Variable(), Variable(3)
        eq = EqualityConstraint(a, b, c, attach=False)
        assert eq.is_satisfied()

    def test_is_satisfied_detects_mismatch(self):
        eq = EqualityConstraint(Variable(3), Variable(4), attach=False)
        assert not eq.is_satisfied()

    def test_is_satisfied_single_value(self):
        assert EqualityConstraint(Variable(3), Variable(), attach=False).is_satisfied()

    def test_dependency_record_is_activating_variable(self):
        a, b = Variable(name="a"), Variable(name="b")
        eq = EqualityConstraint(a, b)
        a.set(1)
        assert b.last_set_by.dependency_record is a
        assert eq.test_membership_of(a, a)
        assert not eq.test_membership_of(b, a)


class Typed:
    """Minimal value with compatibility semantics for CompatibleConstraint."""

    def __init__(self, lineage):
        self.lineage = tuple(lineage)

    def is_compatible_with(self, other):
        n = min(len(self.lineage), len(other.lineage))
        return self.lineage[:n] == other.lineage[:n]

    def __eq__(self, other):
        return isinstance(other, Typed) and self.lineage == other.lineage

    def __hash__(self):
        return hash(self.lineage)

    def __repr__(self):
        return "/".join(self.lineage)


class TestCompatibleConstraint:
    def test_compatible_values_accepted(self):
        a = Variable(Typed(["digital"]), name="a")
        b = Variable(name="b")
        CompatibleConstraint(a, b)
        assert b.set(Typed(["digital", "ttl"]))

    def test_incompatible_values_violate(self):
        a = Variable(name="a")
        b = Variable(name="b")
        CompatibleConstraint(a, b)
        a.set(Typed(["digital"]))
        assert not b.set(Typed(["analog"]))
        # restored to the value propagated from a
        assert b.value == Typed(["digital"])

    def test_propagates_to_untyped_arguments(self):
        a = Variable(name="a")
        b = Variable(name="b")
        CompatibleConstraint(a, b)
        a.set(Typed(["digital", "cmos"]))
        assert b.value == Typed(["digital", "cmos"])

    def test_is_satisfied_pairwise(self):
        good = CompatibleConstraint(
            Variable(Typed(["d"])), Variable(Typed(["d", "ttl"])), attach=False)
        assert good.is_satisfied()
        bad = CompatibleConstraint(
            Variable(Typed(["d"])), Variable(Typed(["a"])), attach=False)
        assert not bad.is_satisfied()

    def test_plain_values_compare_by_equality(self):
        a, b = Variable(1), Variable(1)
        assert CompatibleConstraint(a, b, attach=False).is_satisfied()
        assert not CompatibleConstraint(Variable(1), Variable(2),
                                        attach=False).is_satisfied()


class TestUpdateConstraint:
    """Section 6.5.1: watched data erase derived property values."""

    def make(self):
        source = Variable(1, name="source")
        derived = Variable(100, name="derived", justification=APPLICATION)
        update = UpdateConstraint([source], [derived])
        return source, derived, update

    def test_watched_change_erases_target(self):
        source, derived, _ = self.make()
        source.set(2)
        assert derived.value is None

    def test_target_recalculation_does_not_erase_siblings(self):
        source = Variable(1, name="source")
        t1 = Variable(10, name="t1")
        t2 = Variable(20, name="t2")
        UpdateConstraint([source], [t1, t2])
        t1.calculate(11)
        assert t2.value == 20

    def test_watched_and_targets_accessors(self):
        source, derived, update = self.make()
        assert update.watched == [source]
        assert update.targets == [derived]

    def test_erasure_cascades_through_chained_updates(self):
        a = Variable(1, name="a")
        b = Variable(10, name="b")
        c = Variable(100, name="c")
        UpdateConstraint([a], [b])
        UpdateConstraint([b], [c])
        a.set(2)
        assert b.value is None
        assert c.value is None

    def test_already_none_target_untouched(self, context):
        source = Variable(1, name="source")
        derived = Variable(name="derived")
        UpdateConstraint([source], [derived])
        context.stats.reset()
        source.set(2)
        assert derived.value is None
        assert context.stats.propagated_assignments == 0

    def test_always_satisfied(self):
        _, _, update = self.make()
        assert update.is_satisfied()
