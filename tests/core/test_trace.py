"""Tests for propagation tracing."""

import pytest

from repro.core import (
    EqualityConstraint,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.core.trace import PropagationTrace, trace


def network():
    a = Variable(name="a")
    b = Variable(name="b")
    total = Variable(name="total")
    one = Variable(1, name="one")
    EqualityConstraint(a, b)
    UniAdditionConstraint(total, [b, one])
    return a, b, total


class TestRecording:
    def test_events_recorded_during_round(self, context):
        a, b, total = network()
        with trace(context) as t:
            a.set(5)
        kinds = [event.kind for event in t.events]
        assert "round-start" in kinds
        assert "store" in kinds       # b := 5, total := 6
        assert "infer" in kinds       # the scheduled addition ran
        assert kinds[-1] == "round-end"

    def test_no_recording_outside_block(self, context):
        a, b, total = network()
        with trace(context) as t:
            a.set(5)
        before = len(t.events)
        a.set(6)
        assert len(t.events) == before

    def test_ignore_events(self, context):
        a, b, total = network()
        a.set(5)
        with trace(context) as t:
            a.set(5)  # agreeing value: propagation stops at b
        assert t.events_of("ignore")

    def test_violation_and_restore_events(self, context):
        a, b, total = network()
        UpperBoundConstraint(total, 3)
        with trace(context) as t:
            assert not a.set(5)
        assert t.events_of("violation")
        restores = t.events_of("restore")
        assert restores and "restored" in restores[0].detail

    def test_store_detail_names_constraint_and_value(self, context):
        a, b, total = network()
        with trace(context) as t:
            a.set(7)
        stores = t.events_of("store")
        assert any(":= 7" in event.detail for event in stores)

    def test_sink_receives_lines(self, context):
        a, b, total = network()
        lines = []
        with trace(context, lines.append):
            a.set(5)
        assert any(line.startswith("round-start") for line in lines)

    def test_render(self, context):
        a, b, total = network()
        with trace(context) as t:
            a.set(5)
        text = t.render()
        assert "round-start" in text and "round-end" in text

    def test_clear(self, context):
        a, b, total = network()
        with trace(context) as t:
            a.set(5)
            t.clear()
            assert t.events == []

    def test_uninstall_idempotent(self, context):
        t = PropagationTrace(context)
        t.install()
        t.uninstall()
        t.uninstall()
        assert context.tracer is None

    def test_tracing_cost_is_zero_when_absent(self, context):
        """The context works identically with no tracer installed."""
        a, b, total = network()
        assert context.tracer is None
        assert a.set(5)
        assert total.value == 6


class _DefectiveConstraint(UpperBoundConstraint):
    """A constraint whose propagation body raises mid-round (once armed,
    so that construction-time repropagation still succeeds)."""

    armed = False

    def propagate_variable(self, variable):
        if self.armed:
            raise RuntimeError("defective constraint implementation")
        super().propagate_variable(variable)


class TestLifecycleLeaks:
    """Install/uninstall must leave the context exactly as found —
    including when the traced round raises inside the ``with`` body."""

    def test_uninstalls_when_round_raises(self, context):
        a = Variable(name="a")
        _DefectiveConstraint(a, bound=10).armed = True
        with pytest.raises(RuntimeError, match="defective"):
            with trace(context) as t:
                a.set(5)
        assert context.tracer is None
        assert not t._installed

    def test_uninstalls_when_violating_round_raises_through_handler(
            self, context):
        from repro.core import RaisingHandler
        context.handler = RaisingHandler()
        a, b, total = network()
        UpperBoundConstraint(total, bound=3)
        with pytest.raises(Exception):
            with trace(context):
                a.set(5)
        assert context.tracer is None

    def test_nested_tracers_restore_previous(self, context):
        outer = PropagationTrace(context).install()
        with trace(context) as inner:
            assert context.tracer is inner
        assert context.tracer is outer
        outer.uninstall()
        assert context.tracer is None

    def test_nested_tracer_restores_previous_when_body_raises(self, context):
        outer = PropagationTrace(context).install()
        a = Variable(name="a")
        _DefectiveConstraint(a, bound=10).armed = True
        with pytest.raises(RuntimeError):
            with trace(context):
                a.set(5)
        assert context.tracer is outer
        outer.uninstall()

    def test_double_install_is_idempotent(self, context):
        t = PropagationTrace(context)
        t.install()
        t.install()
        t.uninstall()
        assert context.tracer is None
