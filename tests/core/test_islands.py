"""Constraint-graph islands: partition correctness and parallel parity.

The contract under test:

* the incrementally-maintained :class:`IslandIndex` always agrees with
  the from-scratch BFS reference partition, whatever sequence of
  attach / remove / disable / enable operations produced the network
  (hypothesis property);
* an ``assign_many`` batch drained island-by-island — serial or
  threaded executor, plan cache on or off — is observably identical to
  the fused batched round: values, justification sources, violation
  outcome, atomic rollback, and every ``PropagationStats`` counter;
* the topology epoch advances exactly once per logical structural edit
  (the satellite regression for the deduplicated choke points).
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import (
    EqualityConstraint,
    IslandIndex,
    PlanCache,
    PropagationContext,
    ScaleOffsetConstraint,
    SerialIslandExecutor,
    ThreadIslandExecutor,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    bfs_partition,
    compile_island_sweeps,
    control_for,
    install_islands,
    source_constraint,
)
from repro.obs import Observer


def canonical(partition):
    """Order-free identity of a partition (sets of variable ids)."""
    return frozenset(frozenset(id(v) for v in group) for group in partition)


def index_partition(index, variables):
    """The index's partition restricted to ``variables`` via island_of."""
    groups = {}
    for variable in variables:
        members = index.island_of(variable)
        key = min(id(member) for member in members)
        groups[key] = frozenset(id(member) for member in members)
    return frozenset(groups.values())


def build_motifs(context, count=4):
    """Independent fig. 4.5 motifs: V1=V2, V4=max(V2, V3)."""
    entries, outputs = [], []
    for index in range(count):
        v1 = Variable(7, name=f"V1_{index}", context=context)
        v2 = Variable(7, name=f"V2_{index}", context=context)
        v3 = Variable(5, name=f"V3_{index}", context=context)
        v4 = Variable(7, name=f"V4_{index}", context=context)
        EqualityConstraint(v1, v2)
        UniMaximumConstraint(v4, [v2, v3])
        entries.append(v1)
        outputs.append(v4)
    return entries, outputs


def state_of(context, variables):
    """Values, justification sources and stats — the parity contract."""
    return [(v.value,
             type(source_constraint(v.last_set_by)).__name__
             if source_constraint(v.last_set_by) else None)
            for v in variables] + [context.stats.snapshot()]


class TestIndexMaintenance:
    def test_links_merge_eagerly(self):
        context = PropagationContext()
        index = install_islands(context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        c = Variable(name="c", context=context)
        EqualityConstraint(a, b)
        assert index.stats()["islands"] == 1
        EqualityConstraint(b, c)
        stats = index.stats()
        assert stats["islands"] == 1
        assert stats["largest_island"] == 3
        assert stats["island_merges"] >= 2

    def test_removal_splits_lazily(self):
        context = PropagationContext()
        index = install_islands(context)
        chain = [Variable(name=f"v{i}", context=context) for i in range(4)]
        constraints = [EqualityConstraint(left, right)
                       for left, right in zip(chain, chain[1:])]
        assert index.stats()["islands"] == 1
        constraints[1].remove()
        stats = index.stats()
        assert stats["islands"] == 2
        assert stats["island_splits"] == 1
        assert canonical(index.islands()) == canonical(bfs_partition(chain))

    def test_control_flips_do_not_touch_the_partition(self):
        """Disabling coarsens the *effective* graph only: the raw-graph
        partition — and therefore grouping safety — is unchanged."""
        context = PropagationContext()
        index = install_islands(context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        constraint = EqualityConstraint(a, b)
        before = index.stats()
        control = control_for(context)
        control.disable_constraint(constraint)
        assert index.stats() == before
        control.enable_constraint(constraint)
        assert index.stats() == before

    def test_late_installed_index_absorbs_existing_structure(self):
        """Entries of one pre-existing island must land in one group even
        when the index never observed the links that built it."""
        context = PropagationContext()
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        EqualityConstraint(a, b)
        lone = Variable(name="lone", context=context)
        index = install_islands(context)  # after construction
        groups = index.group_entries([(a, 1, None), (b, 2, None),
                                      (lone, 3, None)])
        assert [len(group) for group in groups] == [2, 1]

    def test_islands_listing_is_deterministic(self):
        context = PropagationContext()
        index = install_islands(context)
        pairs = []
        for tag in ("z", "m", "a"):
            left = Variable(name=f"{tag}1", context=context)
            right = Variable(name=f"{tag}2", context=context)
            EqualityConstraint(left, right)
            pairs.append((left, right))
        listing = index.islands()
        assert [[v.qualified_name() for v in group] for group in listing] \
            == [["a1", "a2"], ["m1", "m2"], ["z1", "z2"]]
        assert listing == index.islands()

    def test_stats_keys_are_sorted(self):
        context = PropagationContext()
        index = install_islands(context)
        assert list(index.stats()) == sorted(index.stats())

    def test_rebind_restarts_empty_on_the_new_context(self):
        context = PropagationContext()
        index = install_islands(context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        EqualityConstraint(a, b)
        fresh = PropagationContext()
        index.rebind(fresh)
        assert fresh.islands is index
        assert context.islands is None
        assert index.stats()["islands"] == 0


class TestPartitionProperty:
    """The incremental partition equals the BFS reference partition."""

    @given(script=st.lists(
        st.tuples(st.sampled_from(["attach", "remove", "disable",
                                   "enable"]),
                  st.integers(min_value=0, max_value=9),
                  st.integers(min_value=0, max_value=9)),
        min_size=0, max_size=24))
    @settings(max_examples=120, deadline=None)
    def test_matches_bfs_after_any_edit_sequence(self, script):
        context = PropagationContext()
        index = install_islands(context)
        variables = [Variable(name=f"v{i}", context=context)
                     for i in range(10)]
        constraints = []
        control = None
        for op, i, j in script:
            if op == "attach":
                if i != j:
                    constraints.append(
                        EqualityConstraint(variables[i], variables[j]))
            elif op == "remove":
                attached = [c for c in constraints if c.attached]
                if attached:
                    attached[i % len(attached)].remove()
            else:
                if control is None:
                    control = control_for(context)
                attached = [c for c in constraints if c.attached]
                if attached:
                    target = attached[i % len(attached)]
                    if op == "disable":
                        control.disable_constraint(target)
                    else:
                        control.enable_constraint(target)
        assert index_partition(index, variables) \
            == canonical(bfs_partition(variables))

    @given(script=st.lists(
        st.tuples(st.sampled_from(["attach", "remove"]),
                  st.integers(min_value=0, max_value=7),
                  st.integers(min_value=0, max_value=7)),
        min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_matches_bfs_through_undo_and_redo(self, script):
        """Session undo/redo replays structural edits; the partition must
        track them exactly (undo of an add is a remove and vice versa)."""
        from repro.session import Session

        session = Session("islands-prop")
        index = session.context.islands
        variables = [session.make_variable(f"v{i}") for i in range(8)]
        for op, i, j in script:
            if op == "attach":
                if i != j:
                    session.add_constraint("equality",
                                           [variables[i], variables[j]])
            else:
                cids = sorted(session.constraints)
                if cids:
                    session.remove_constraint(cids[i % len(cids)])
        undone = 0
        while session.can_undo() and undone < 4:
            session.undo()
            undone += 1
            assert index_partition(index, variables) \
                == canonical(bfs_partition(variables))
        for _ in range(undone):
            session.redo()
            assert index_partition(index, variables) \
                == canonical(bfs_partition(variables))


class ExplodingConstraint(UpperBoundConstraint):
    """A bound constraint that raises an unexpected error on demand."""

    detonate = False

    def immediate_inference_by_changing(self, variable):
        if self.detonate:
            raise RuntimeError("boom")
        super().immediate_inference_by_changing(variable)


def executors():
    return [None, SerialIslandExecutor(), ThreadIslandExecutor(4)]


class TestBatchParity:
    @pytest.mark.parametrize("cache", [False, True])
    @pytest.mark.parametrize("workers", [0, 4])
    def test_island_rounds_match_fused_twin(self, cache, workers):
        fused = PropagationContext()
        island = PropagationContext()
        if cache:
            PlanCache(fused)
            PlanCache(island)
        install_islands(island, workers=workers)
        f_entries, f_outputs = build_motifs(fused)
        i_entries, i_outputs = build_motifs(island)

        for round_no in range(3):  # register, trace, promote+replay
            values = [9 + round_no + k for k in range(len(f_entries))]
            assert fused.assign_many(list(zip(f_entries, values)))
            assert island.assign_many(list(zip(i_entries, values)))
            assert state_of(fused, f_entries + f_outputs) \
                == state_of(island, i_entries + i_outputs)

    @pytest.mark.parametrize("workers", [0, 4])
    def test_violating_batch_rolls_back_every_island(self, workers):
        fused = PropagationContext()
        island = PropagationContext()
        install_islands(island, workers=workers)
        images = []
        for context in (fused, island):
            entries, outputs = build_motifs(context, count=3)
            UpperBoundConstraint(outputs[1], 10)
            images.append((entries, outputs))
        f_entries, f_outputs = images[0]
        i_entries, i_outputs = images[1]
        batch = lambda entries: [(entries[0], 9), (entries[1], 99),
                                 (entries[2], 12)]
        assert not fused.assign_many(batch(f_entries))
        assert not island.assign_many(batch(i_entries))
        assert state_of(fused, f_entries + f_outputs) \
            == state_of(island, i_entries + i_outputs)
        # Both twins recorded exactly one violation, handled identically.
        assert fused.stats.violations == island.stats.violations == 1

    @pytest.mark.parametrize("workers", [0, 4])
    def test_error_in_one_island_restores_and_reraises(self, workers):
        fused = PropagationContext()
        island = PropagationContext()
        install_islands(island, workers=workers)
        results = []
        for context in (fused, island):
            entries, outputs = build_motifs(context, count=3)
            bomb = ExplodingConstraint(outputs[2], 1000)
            results.append((entries, outputs, bomb))
        for entries, outputs, bomb in results:
            bomb.detonate = True
            with pytest.raises(RuntimeError, match="boom"):
                (entries[0].context).assign_many(
                    [(entries[0], 9), (entries[2], 12)])
            bomb.detonate = False
        f_entries, f_outputs, _ = results[0]
        i_entries, i_outputs, _ = results[1]
        assert state_of(fused, f_entries + f_outputs) \
            == state_of(island, i_entries + i_outputs)

    def test_single_island_batch_stays_fused(self):
        """Entries within one island take the ordinary fused path."""
        context = PropagationContext()
        install_islands(context, workers=4)
        chain = [Variable(name=f"v{i}", context=context) for i in range(3)]
        EqualityConstraint(chain[0], chain[1])
        EqualityConstraint(chain[1], chain[2])
        with Observer.metrics_only(context) as observer:
            assert context.assign_many([(chain[0], 5), (chain[0], 6)])
        snapshot = observer.metrics.snapshot()
        assert "engine.island.batches" not in snapshot
        assert all(v.value == 6 for v in chain)

    def test_observer_counts_island_rounds(self):
        context = PropagationContext()
        install_islands(context, workers=4)
        entries, _ = build_motifs(context, count=3)
        with Observer.metrics_only(context) as observer:
            assert context.assign_many(
                [(entry, 9 + k) for k, entry in enumerate(entries)])
        snapshot = observer.metrics.snapshot()
        assert snapshot["engine.island.batches"] == 1
        assert snapshot["engine.island.groups"] == 3
        assert snapshot["engine.island.rounds"] == 3

    def test_observer_counts_fallbacks(self):
        context = PropagationContext()
        install_islands(context, workers=4)
        entries, outputs = build_motifs(context, count=2)
        UpperBoundConstraint(outputs[0], 10)
        with Observer.metrics_only(context) as observer:
            assert not context.assign_many([(entries[0], 99),
                                            (entries[1], 9)])
        snapshot = observer.metrics.snapshot()
        assert snapshot["engine.island.fallbacks"] == 1

    @given(values=st.lists(st.integers(min_value=-50, max_value=50),
                           min_size=2, max_size=6),
           workers=st.sampled_from([0, 4]),
           cache=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_parity_property(self, values, workers, cache):
        """Twin contexts — fused vs island-structured (either executor,
        cache on or off) — agree on every value, justification source
        and stats counter for arbitrary batch values."""
        fused = PropagationContext()
        island = PropagationContext()
        if cache:
            PlanCache(fused)
            PlanCache(island)
        install_islands(island, workers=workers)
        count = len(values)
        f_entries, f_outputs = build_motifs(fused, count=count)
        i_entries, i_outputs = build_motifs(island, count=count)
        for _ in range(2):
            assert fused.assign_many(list(zip(f_entries, values))) \
                == island.assign_many(list(zip(i_entries, values)))
            assert state_of(fused, f_entries + f_outputs) \
                == state_of(island, i_entries + i_outputs)


class TestEpochDiscipline:
    """One logical structural edit advances the topology epoch once."""

    def test_attach_of_multi_argument_constraint_bumps_once(self):
        context = PropagationContext()
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        c = Variable(name="c", context=context)
        before = context.topology_epoch
        constraint = UniMaximumConstraint(a, [b, c])
        assert context.topology_epoch == before + 1
        before = context.topology_epoch
        constraint.remove()
        assert context.topology_epoch == before + 1

    def test_argument_edits_bump_once_each(self):
        context = PropagationContext()
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        constraint = EqualityConstraint(a, b)
        d = Variable(name="d", context=context)
        before = context.topology_epoch
        constraint.add_argument(d)
        assert context.topology_epoch == before + 1
        before = context.topology_epoch
        constraint.remove_argument(d)
        assert context.topology_epoch == before + 1

    def test_hierarchy_registration_bumps_once(self):
        from repro.stem.implicit import ClassInstVar, InstanceInstVar

        context = PropagationContext()
        class_var = ClassInstVar(name="class", context=context)
        instance_var = InstanceInstVar(name="instance", context=context)
        before = context.topology_epoch
        class_var.register_instance_var(instance_var)
        assert context.topology_epoch == before + 1
        before = context.topology_epoch
        class_var.unregister_instance_var(instance_var)
        assert context.topology_epoch == before + 1

    def test_control_mutation_bumps_once(self):
        context = PropagationContext()
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        constraint = EqualityConstraint(a, b)
        control = control_for(context)
        before = context.topology_epoch
        control.disable_constraint(constraint)
        assert context.topology_epoch == before + 1
        before = context.topology_epoch
        control.enable_constraint(constraint)
        assert context.topology_epoch == before + 1


class TestIslandSweeps:
    def test_compile_island_sweeps_splits_disjoint_closures(self):
        context = PropagationContext()
        install_islands(context)
        plans_inputs = []
        for index in range(3):
            source = Variable(name=f"s{index}", context=context)
            result = Variable(name=f"r{index}", context=context)
            ScaleOffsetConstraint(result, source, scale=2, offset=index)
            plans_inputs.append((source, result))
        plans = compile_island_sweeps([pair[0] for pair in plans_inputs],
                                      context=context)
        assert len(plans) == 3
        for index, (plan, (source, result)) in enumerate(
                zip(plans, plans_inputs)):
            outcome = plan.run([1.0, 2.0], backend="python")
            assert outcome.values[result] == [2.0 + index, 4.0 + index]

    def test_same_island_inputs_share_one_plan(self):
        context = PropagationContext()
        install_islands(context)
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        total = Variable(name="total", context=context)
        from repro.core import UniAdditionConstraint
        UniAdditionConstraint(total, [a, b])
        plans = compile_island_sweeps([a, b], context=context)
        assert len(plans) == 1
        outcome = plans[0].run([[1.0, 2.0], [10.0, 20.0]],
                               backend="python")
        assert outcome.values[total] == [11.0, 22.0]

    def test_without_an_index_bfs_grouping_applies(self):
        context = PropagationContext()  # no island index installed
        x = Variable(name="x", context=context)
        y = Variable(name="y", context=context)
        rx = Variable(name="rx", context=context)
        ScaleOffsetConstraint(rx, x, scale=3)
        plans = compile_island_sweeps([x, y], context=context)
        assert len(plans) == 2


class TestExecutors:
    def test_serial_executor_runs_in_order(self):
        executor = SerialIslandExecutor()
        assert executor.run([lambda: 1, lambda: 2, lambda: 3]) == [1, 2, 3]
        assert not executor.parallel
        executor.close()

    def test_thread_executor_preserves_result_order(self):
        executor = ThreadIslandExecutor(4)
        try:
            import time

            def task(index):
                def run():
                    time.sleep(0.002 * (3 - index))
                    return index
                return run

            assert executor.run([task(i) for i in range(4)]) == [0, 1, 2, 3]
            assert executor.parallel
        finally:
            executor.close()

    def test_install_islands_executor_selection(self):
        context = PropagationContext()
        index = install_islands(context)
        assert context.island_executor is None
        assert install_islands(context, workers=1) is index
        assert isinstance(context.island_executor, SerialIslandExecutor)
        install_islands(context, workers=3)
        assert isinstance(context.island_executor, ThreadIslandExecutor)
