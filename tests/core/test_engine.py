"""Tests for the propagation engine (thesis sections 4.2, 5.2, 5.3)."""

import pytest

from repro.core import (
    APPLICATION,
    USER,
    ConstraintViolationError,
    EqualityConstraint,
    FormulaConstraint,
    PropagationContext,
    RaisingHandler,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
    WarningHandler,
    default_context,
)


def fig_4_5_network():
    """V1 = V2, V4 = max(V2, V3), all satisfying initial values."""
    v1 = Variable(7, name="V1")
    v2 = Variable(7, name="V2")
    v3 = Variable(5, name="V3")
    v4 = Variable(7, name="V4")
    eq = EqualityConstraint(v1, v2)
    mx = UniMaximumConstraint(v4, [v2, v3])
    return v1, v2, v3, v4, eq, mx


class TestFig45Propagation:
    """The worked example of Fig. 4.5."""

    def test_initial_network_is_consistent(self):
        v1, v2, v3, v4, eq, mx = fig_4_5_network()
        assert (v1.value, v2.value, v3.value, v4.value) == (7, 7, 5, 7)
        assert eq.is_satisfied()
        assert mx.is_satisfied()

    def test_setting_v1_propagates_through_both_constraints(self):
        v1, v2, v3, v4, eq, mx = fig_4_5_network()
        assert v1.set(9)
        assert v2.value == 9   # via equality
        assert v4.value == 9   # via maximum
        assert v3.value == 5   # untouched

    def test_propagated_values_record_their_source(self):
        v1, v2, v3, v4, eq, mx = fig_4_5_network()
        v1.set(9)
        assert v2.source_constraint() is eq
        assert v4.source_constraint() is mx
        assert v1.last_set_by is USER

    def test_lowering_below_other_max_input(self):
        v1, v2, v3, v4, eq, mx = fig_4_5_network()
        v1.set(2)
        assert v2.value == 2
        assert v4.value == 5  # max(2, 5)


class TestTerminationCriteria:
    """Section 4.2.2: where the wavefront stops."""

    def test_agreeing_value_stops_propagation(self, context):
        a = Variable(4, name="a")
        b = Variable(4, name="b")
        EqualityConstraint(a, b)
        before = context.stats.propagated_assignments
        assert a.set(4)
        assert context.stats.propagated_assignments == before
        assert context.stats.ignored_propagations > 0

    def test_user_value_blocks_disagreeing_propagation(self):
        a = Variable(name="a")
        b = Variable(name="b")
        b.set(10, USER)
        EqualityConstraint(a, b)
        assert not a.set(3)
        # restored: a keeps the (re-propagated) value from attach
        assert b.value == 10

    def test_user_value_allows_agreeing_propagation(self):
        a = Variable(name="a")
        b = Variable(name="b")
        b.set(10, USER)
        EqualityConstraint(a, b)
        assert a.value == 10  # attach propagated the user value to a
        assert a.set(10)

    def test_application_value_is_overwritten(self):
        a = Variable(name="a")
        b = Variable(name="b")
        b.calculate(10)
        EqualityConstraint(a, b)
        assert a.set(3)
        assert b.value == 3


class TestCyclicConstraints:
    """Fig. 4.9: cyclic networks terminate via the one-value-change rule."""

    def make_cycle(self):
        v1 = Variable(name="V1")
        v2 = Variable(name="V2")
        v3 = Variable(name="V3")
        FormulaConstraint(v2, [v1], lambda x: x + 1, label="+1")
        FormulaConstraint(v3, [v2], lambda x: x + 3, label="+3")
        FormulaConstraint(v1, [v3], lambda x: x + 2, label="+2")
        return v1, v2, v3

    def test_unsatisfiable_cycle_violates(self):
        v1, v2, v3 = self.make_cycle()
        assert not v1.set(10)

    def test_cycle_violation_restores_all_values(self):
        v1, v2, v3 = self.make_cycle()
        v1.set(10)
        assert v1.value is None
        assert v2.value is None
        assert v3.value is None

    def test_violation_is_recorded_with_reason(self, context):
        v1, v2, v3 = self.make_cycle()
        v1.set(10)
        record = context.handler.last
        assert record is not None
        assert "one-value-change" in record.reason

    def test_satisfiable_cycle_converges(self):
        """An identity cycle terminates by the agreeing-value criterion."""
        a = Variable(name="a")
        b = Variable(name="b")
        c = Variable(name="c")
        EqualityConstraint(a, b)
        EqualityConstraint(b, c)
        EqualityConstraint(c, a)
        assert a.set(42)
        assert (a.value, b.value, c.value) == (42, 42, 42)

    def test_relaxed_n_change_rule(self):
        """Section 9.2.3's quick fix: allow N changes per round."""
        context = PropagationContext(max_changes_per_variable=3)
        v1 = Variable(name="V1", context=context)
        v2 = Variable(name="V2", context=context)
        FormulaConstraint(v2, [v1], lambda x: x + 1)
        FormulaConstraint(v1, [v2], lambda x: x + 1)
        assert not v1.set(0)  # still diverges, but only after 3 changes


class TestViolationHandling:
    """Sections 4.2.3 and 5.2."""

    def test_failed_assignment_returns_false(self):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        assert not a.set(11)

    def test_network_restored_after_final_check_violation(self):
        a = Variable(3, name="a")
        b = Variable(3, name="b")
        EqualityConstraint(a, b)
        UpperBoundConstraint(b, 10)
        assert not a.set(11)
        assert a.value == 3
        assert b.value == 3

    def test_warning_handler_collects_messages(self):
        handler = WarningHandler()
        context = PropagationContext(handler=handler)
        a = Variable(name="a", context=context)
        UpperBoundConstraint(a, 10)
        a.set(99)
        assert len(handler.messages) == 1
        assert "violation" in handler.messages[0]

    def test_raising_handler_raises_after_restore(self):
        handler = RaisingHandler()
        context = PropagationContext(handler=handler)
        a = Variable(1, name="a", context=context)
        UpperBoundConstraint(a, 10)
        with pytest.raises(ConstraintViolationError):
            a.set(99)
        assert a.value == 1

    def test_per_constraint_violation_handler(self):
        special = WarningHandler()
        a = Variable(name="a")
        bound = UpperBoundConstraint(a, 10)
        bound.violation_handler = special
        a.set(99)
        assert len(special.messages) == 1
        assert not default_context().handler.records

    def test_successful_assignment_leaves_no_records(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        assert a.set(5)
        assert not context.handler.records


class TestDisableSwitch:
    """Section 5.3: the CPSwitch."""

    def test_disabled_context_stores_without_checking(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        context.enabled = False
        assert a.set(99)
        assert a.value == 99

    def test_disabled_context_does_not_propagate(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        context.enabled = False
        a.set(5)
        assert b.value is None

    def test_propagation_disabled_context_manager(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        with context.propagation_disabled():
            a.set(5)
        assert context.enabled
        assert b.value is None
        # propagation resumes afterwards
        a.set(6)
        assert b.value == 6

    def test_constraints_still_added_while_disabled(self, context):
        a = Variable(5, name="a")
        b = Variable(name="b")
        with context.propagation_disabled():
            EqualityConstraint(a, b)
        assert b.value is None  # no local propagation on creation


class TestProbe:
    """Fig. 8.2's canBeSetTo: — tentative propagation with restore."""

    def test_acceptable_value(self):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        assert a.can_be_set_to(5)
        assert a.value is None  # restored

    def test_rejected_value(self):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        assert not a.can_be_set_to(11)
        assert a.value is None

    def test_probe_propagates_through_network(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        UpperBoundConstraint(b, 10)
        assert not a.can_be_set_to(11)
        assert a.can_be_set_to(9)
        assert b.value is None

    def test_probe_does_not_notify_handler(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        a.can_be_set_to(11)
        assert not context.handler.records

    def test_probe_restores_prior_values(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        a.set(3)
        assert a.can_be_set_to(7)
        assert a.value == 3
        assert b.value == 3
        assert a.last_set_by is USER


class TestStats:
    def test_round_and_assignment_counters(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        context.stats.reset()
        a.set(1)
        assert context.stats.external_assignments == 1
        assert context.stats.propagated_assignments == 1
        assert context.stats.rounds == 1

    def test_violation_counter(self, context):
        a = Variable(name="a")
        UpperBoundConstraint(a, 10)
        context.stats.reset()
        a.set(99)
        assert context.stats.violations == 1

    def test_snapshot_keys(self, context):
        snap = context.stats.snapshot()
        assert "inference_runs" in snap
        assert "constraint_activations" in snap


class TestRoundDiscipline:
    def test_rounds_do_not_nest(self, context):
        with context._round_scope():
            with pytest.raises(RuntimeError):
                with context._round_scope():
                    pass

    def test_propagated_assignment_requires_round(self):
        a = Variable(name="a")
        with pytest.raises(RuntimeError):
            a.set_propagated(1, constraint=object())

    def test_scheduler_cleared_after_violation(self, context):
        v1 = Variable(name="V1")
        v2 = Variable(name="V2")
        FormulaConstraint(v2, [v1], lambda x: x + 1)
        UpperBoundConstraint(v1, 5)
        v1.set(99)
        assert context.scheduler.is_empty()
