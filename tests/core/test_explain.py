"""Tests for violation diagnosis and recommendations (§9.3 extension)."""

import pytest

from repro.core import (
    EqualityConstraint,
    PropagationContext,
    UniAdditionConstraint,
    UpperBoundConstraint,
    USER,
    Variable,
)
from repro.core.explain import Diagnosis, ExplainingHandler, explain


def budget_scene():
    """part_a + part_b = total <= 100, with part_a fixed by the user."""
    context = PropagationContext(handler=ExplainingHandler())
    part_a = Variable(name="part_a", context=context)
    part_b = Variable(name="part_b", context=context)
    total = Variable(name="total", context=context)
    UniAdditionConstraint(total, [part_a, part_b])
    bound = UpperBoundConstraint(total, 100)
    part_a.set(60, USER)
    return context, part_a, part_b, total, bound


class TestDiagnosis:
    def test_violation_produces_diagnosis(self):
        context, part_a, part_b, total, bound = budget_scene()
        assert not part_b.set(50)
        diagnosis = context.handler.last_diagnosis
        assert diagnosis is not None
        assert diagnosis.record.constraint is bound

    def test_independent_antecedents_found(self):
        context, part_a, part_b, total, bound = budget_scene()
        part_b.set(50)
        diagnosis = context.handler.last_diagnosis
        # after rollback, the surviving independent decision is part_a=60
        assert part_a in diagnosis.independent_antecedents

    def test_relax_spec_recommended_for_bounds(self):
        context, part_a, part_b, total, bound = budget_scene()
        part_b.set(50)
        actions = [r.action for r in
                   context.handler.last_diagnosis.recommendations]
        assert "relax-spec" in actions
        assert "disable-and-proceed" in actions

    def test_change_design_points_at_antecedents(self):
        context, part_a, part_b, total, bound = budget_scene()
        part_b.set(50)
        recommendations = context.handler.last_diagnosis.recommendations
        targets = [r.target for r in recommendations
                   if r.action == "change-design"]
        assert part_a in targets

    def test_render_is_readable(self):
        context, part_a, part_b, total, bound = budget_scene()
        part_b.set(50)
        text = context.handler.last_diagnosis.render()
        assert "violation:" in text
        assert "recommended actions:" in text
        assert "part_a" in text

    def test_user_decision_called_out(self):
        """A protected user value blocking propagation is diagnosed."""
        context = PropagationContext(handler=ExplainingHandler())
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        b.set(10, USER)
        EqualityConstraint(a, b)
        assert not a.set(3)
        diagnosis = context.handler.last_diagnosis
        actions = {r.action for r in diagnosis.recommendations}
        assert "revise-decision" in actions

    def test_sink_receives_rendered_text(self):
        received = []
        context = PropagationContext(handler=ExplainingHandler(received.append))
        a = Variable(name="a", context=context)
        UpperBoundConstraint(a, 10)
        a.set(99)
        assert received and "violation:" in received[0]

    def test_explain_standalone(self):
        """explain() works on any record, outside a handler."""
        context, part_a, part_b, total, bound = budget_scene()
        part_b.set(50)
        record = context.handler.last
        diagnosis = explain(record)
        assert isinstance(diagnosis, Diagnosis)
        assert str(diagnosis) == diagnosis.render()

    def test_consequences_listed(self):
        context = PropagationContext(handler=ExplainingHandler())
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        c = Variable(name="c", context=context)
        EqualityConstraint(a, b)
        EqualityConstraint(b, c)
        a.set(5)
        bound = UpperBoundConstraint(a, 10)
        assert not a.set(50)
        diagnosis = context.handler.last_diagnosis
        assert b in diagnosis.affected_consequences
        assert c in diagnosis.affected_consequences
