"""PropagationControl selectors composing with the compiled path.

Section 9.3 suggestion 2 (fine-grained control) must hold through
section 9.3 suggestion 3 (network compilation): a constraint disabled by
any selector is *inert* — it neither computes nor overwrites its result —
whether the network is evaluated declaratively or through a
:class:`CompiledNetwork` plan, including ``write_back`` joining an
active round.
"""

import pytest

from repro.core import (
    PropagationControl,
    UniAdditionConstraint,
    UniMaximumConstraint,
    Variable,
    compile_network,
    control_for,
)


def chain(context=None):
    """a, b -> total = a + b -> peak = max(total, cap)."""
    a = Variable(2, name="a")
    b = Variable(3, name="b")
    total = Variable(name="total")
    cap = Variable(1, name="cap")
    peak = Variable(name="peak")
    add = UniAdditionConstraint(total, [a, b])
    mx = UniMaximumConstraint(peak, [total, cap])
    return a, b, total, cap, peak, add, mx


class TestEvaluateWithControl:
    def test_disabled_constraint_not_computed(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control_for(context).disable_constraint(add)
        plan = compile_network([a, b])
        results = plan.evaluate({a: 10})
        assert total not in results  # inert: no computed result at all
        # downstream consumers read total's stored value instead
        assert results[peak] == max(total.value, cap.value)

    def test_disable_type_selector(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control_for(context).disable_type(UniMaximumConstraint)
        plan = compile_network([a, b])
        results = plan.evaluate({a: 10})
        assert results[total] == 13
        assert peak not in results

    def test_disable_variable_selector(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control_for(context).disable_variable(cap)
        plan = compile_network([a, b])
        results = plan.evaluate({a: 10})
        assert results[total] == 13
        assert peak not in results  # mx touches cap, so it is disabled

    def test_filter_selector(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control_for(context).add_filter(lambda c: c is add)
        results = compile_network([a, b]).evaluate()
        assert total not in results

    def test_no_control_fast_path_unchanged(self, context):
        a, b, total, cap, peak, add, mx = chain()
        assert context.control is None
        results = compile_network([a, b]).evaluate({a: 10})
        assert results[total] == 13
        assert results[peak] == 13


class TestWriteBackWithControl:
    def test_disabled_constraint_result_not_overwritten(self, context):
        a, b, total, cap, peak, add, mx = chain()
        stale = total.value
        control_for(context).disable_constraint(add)
        plan = compile_network([a, b])
        plan.write_back({a: 10})
        assert a.value == 10
        assert total.value == stale  # inert through the compiled store
        assert peak.value == max(stale, cap.value)

    def test_reenabled_constraint_computes_again(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control = control_for(context)
        control.disable_constraint(add)
        plan = compile_network([a, b])
        plan.write_back({a: 10})
        assert total.value == 5  # the declarative build's value, untouched
        control.enable_constraint(add)
        plan.write_back({a: 10})
        assert total.value == 13

    def test_write_back_in_active_round_keeps_disabled_inert(self, context):
        """The in-round path stores via ``variable.set``; the engine's
        wavefront must not re-activate a disabled constraint either."""
        a, b, total, cap, peak, add, mx = chain()
        control_for(context).disable_constraint(add)
        plan = compile_network([a, b])
        stale = total.value

        class Hook(Variable):
            def on_stored_by_assignment(self):
                plan.write_back({a: 20})

        hook = Hook(name="hook")
        assert context.assign(hook, 1)
        assert a.value == 20
        assert total.value == stale  # skipped in-plan AND not re-activated

    def test_control_clear_restores_full_plan(self, context):
        a, b, total, cap, peak, add, mx = chain()
        control = control_for(context)
        control.disable_type(UniAdditionConstraint)
        plan = compile_network([a, b])
        assert total not in plan.evaluate()
        control.clear()
        assert plan.evaluate({a: 10})[total] == 13
