"""Tests for the constraint satisfaction extension (section 9.3)."""

import pytest

from repro.core import (
    EqualityConstraint,
    LowerBoundConstraint,
    OrderingConstraint,
    RangeConstraint,
    ScaleOffsetConstraint,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UniMinimumConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.core.satisfaction import (
    Infeasible,
    Interval,
    IntervalSolver,
    RelaxationSolver,
    collect_network,
    plan_one_pass,
    solve_one_pass,
)

try:
    import numpy  # noqa: F401
    import scipy.optimize  # noqa: F401
    HAVE_SOLVER_DEPS = True
except ImportError:
    HAVE_SOLVER_DEPS = False


class TestInterval:
    def test_intersect(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)

    def test_empty(self):
        assert Interval(5, 1).is_empty()
        assert not Interval(1, 5).is_empty()

    def test_point(self):
        assert Interval.exactly(4).is_point()

    def test_arithmetic(self):
        assert Interval(1, 2) + Interval(10, 20) == Interval(11, 22)
        assert Interval(10, 20) - Interval(1, 2) == Interval(8, 19)


class TestCollectNetwork:
    def test_connected_component(self):
        a, b, c = (Variable(name=n) for n in "abc")
        eq1 = EqualityConstraint(a, b)
        eq2 = EqualityConstraint(b, c)
        x = Variable(name="x")  # unconnected
        variables, constraints = collect_network([a])
        assert set(variables) == {a, b, c}
        assert set(constraints) == {eq1, eq2}


class TestIntervalSolver:
    def test_bounds_narrow_from_specs(self):
        v = Variable(name="v")
        UpperBoundConstraint(v, 10)
        LowerBoundConstraint(v, 3)
        solver = IntervalSolver([v])
        solver.solve()
        assert solver.interval_of(v) == Interval(3, 10)

    def test_addition_backward_narrowing(self):
        """total fixed and one input fixed -> the other input is solved."""
        a = Variable(3, name="a")
        b = Variable(name="b")
        total = Variable(name="total")
        UniAdditionConstraint(total, [a, b], attach=False).attach()
        solver = IntervalSolver([total])
        solver.intervals[id(total)] = Interval.exactly(10)
        solution = solver.point_solution()
        assert solution[b] == 7

    def test_infeasible_detected(self):
        v = Variable(name="v")
        UpperBoundConstraint(v, 1)
        LowerBoundConstraint(v, 5)
        with pytest.raises(Infeasible):
            IntervalSolver([v]).solve()

    def test_delay_budget_decomposition(self):
        """The least-commitment question: how much slack has a subcell?"""
        d1 = Variable(name="d1")
        d2 = Variable(60.0, name="d2")
        total = Variable(name="total")
        UniAdditionConstraint(total, [d1, d2])
        UpperBoundConstraint(total, 160.0)
        LowerBoundConstraint(d1, 0.0)
        solver = IntervalSolver([total])
        solver.solve()
        # d1 may use at most 100ns of the budget
        assert solver.interval_of(d1).high == pytest.approx(100.0)

    def test_scale_offset(self):
        x = Variable(name="x")
        y = Variable(name="y")
        ScaleOffsetConstraint(y, x, scale=2, offset=1)
        RangeConstraint(y, 3, 7)
        solver = IntervalSolver([x])
        solver.solve()
        assert solver.interval_of(x) == Interval(1, 3)

    def test_extremum_forward(self):
        a = Variable(2.0, name="a")
        b = Variable(5.0, name="b")
        top = Variable(name="top")
        bottom = Variable(name="bottom")
        UniMaximumConstraint(top, [a, b])
        UniMinimumConstraint(bottom, [a, b])
        solver = IntervalSolver([a])
        solution = solver.point_solution()
        assert solution[top] == 5.0
        assert solution[bottom] == 2.0

    def test_ordering(self):
        a = Variable(name="a")
        b = Variable(4.0, name="b")
        OrderingConstraint(a, b)
        solver = IntervalSolver([a])
        solver.solve()
        assert solver.interval_of(a).high == 4.0

    def test_equality_meets(self):
        a = Variable(name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)
        UpperBoundConstraint(a, 10)
        LowerBoundConstraint(b, 2)
        solver = IntervalSolver([a])
        solver.solve()
        assert solver.interval_of(a) == Interval(2, 10)
        assert solver.interval_of(b) == Interval(2, 10)


class TestOnePass:
    def test_plan_orders_by_knowledge(self):
        a = Variable(2, name="a")
        b = Variable(name="b")
        c = Variable(name="c")
        EqualityConstraint(a, b, attach=False).attach()
        s = UniAdditionConstraint(c, [a, b], attach=False)
        # build without propagation so planning has real work to do
        b.reset(); c.reset()
        s.attach()
        b.reset(); c.reset()
        plan = plan_one_pass([a])
        assert plan is not None
        assert [step.target for step in plan] == [b, c]

    def test_unplannable_returns_none(self):
        """x + y = fixed with both unknown needs simultaneous solution."""
        x = Variable(name="x")
        y = Variable(name="y")
        total = Variable(10, name="total")
        UniAdditionConstraint(total, [x, y], attach=False).attach()
        assert plan_one_pass([x]) is None

    def test_solve_one_pass_executes(self):
        a = Variable(2, name="a")
        b = Variable(name="b")
        c = Variable(name="c")
        EqualityConstraint(a, b)
        UniAdditionConstraint(c, [a, b])
        b.reset(); c.reset()
        assert solve_one_pass([a])
        assert b.value == 2
        assert c.value == 4

    def test_solve_one_pass_fails_on_unplannable(self):
        x = Variable(name="x")
        y = Variable(name="y")
        total = Variable(10, name="total")
        UniAdditionConstraint(total, [x, y], attach=False).attach()
        assert not solve_one_pass([x])


@pytest.mark.skipif(
    not HAVE_SOLVER_DEPS,
    reason="relaxation solving needs the optional numpy/scipy backend",
)
class TestRelaxation:
    def test_simultaneous_solution(self):
        """x + y = 10 and x - y = 2 -> x=6, y=4 (needs global view)."""
        x = Variable(name="x")
        y = Variable(name="y")
        total = Variable(10.0, name="total")
        diff = Variable(2.0, name="diff")
        from repro.core import FormulaConstraint
        with x.context.propagation_disabled():
            UniAdditionConstraint(total, [x, y])
            FormulaConstraint(diff, [x, y], lambda a, b: a - b, label="minus")
        solver = RelaxationSolver([x], free=[x, y])
        solution = solver.solve()
        assert solution is not None
        assert solution[x] == pytest.approx(6.0, abs=1e-6)
        assert solution[y] == pytest.approx(4.0, abs=1e-6)

    def test_commit_through_engine(self):
        x = Variable(name="x")
        y = Variable(name="y")
        total = Variable(10.0, name="total")
        with x.context.propagation_disabled():
            UniAdditionConstraint(total, [x, y])
            EqualityConstraint(x, y)
        solver = RelaxationSolver([x], free=[x, y])
        solution = solver.solve()
        assert solution is not None
        assert solution[x] == pytest.approx(5.0, abs=1e-6)

    def test_infeasible_returns_none(self):
        x = Variable(name="x")
        UpperBoundConstraint(x, 1.0, attach=False).attach()
        LowerBoundConstraint(x, 5.0, attach=False).attach()
        solver = RelaxationSolver([x], free=[x])
        assert solver.solve() is None

    def test_bound_residuals_respected(self):
        x = Variable(name="x")
        RangeConstraint(x, 2.0, 3.0)
        solver = RelaxationSolver([x], free=[x])
        solution = solver.solve()
        assert solution is not None
        assert 2.0 - 1e-6 <= solution[x] <= 3.0 + 1e-6

    def test_no_free_variables_checks_consistency(self):
        x = Variable(5.0, name="x")
        UpperBoundConstraint(x, 10.0)
        solver = RelaxationSolver([x], free=[])
        assert solver.solve() == {}
