"""Tests for the textual constraint editor (section 5.4)."""

import pytest

from repro.core import (
    ConstraintEditor,
    EqualityConstraint,
    UpperBoundConstraint,
    Variable,
)


def small_network():
    a, b, c = (Variable(name=n) for n in "abc")
    eq1 = EqualityConstraint(a, b)
    eq2 = EqualityConstraint(b, c)
    a.set(5)
    return a, b, c, eq1, eq2


class TestNavigation:
    def test_focus_on_and_back(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(a)
        editor.focus_on(eq1)
        assert editor.focus is eq1
        editor.back()
        assert editor.focus is a

    def test_constraints_of_focus(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(b)
        assert set(editor.constraints_of_focus()) == {eq1, eq2}

    def test_variables_of_focus(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(eq1)
        assert editor.variables_of_focus() == [a, b]

    def test_wrong_focus_type_raises(self):
        a, *_ = small_network()
        editor = ConstraintEditor(a)
        with pytest.raises(TypeError):
            editor.variables_of_focus()


class TestTracing:
    def test_antecedents_of_focus(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(c)
        assert set(editor.antecedents()) == {a, b, eq1, eq2}

    def test_consequences_of_focus(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(a)
        assert set(editor.consequences()) == {b, c}


class TestEditing:
    def test_assign_through_editor(self):
        a, b, c, *_ = small_network()
        editor = ConstraintEditor(a)
        assert editor.assign(7)
        assert c.value == 7

    def test_remove_focused_constraint(self):
        a, b, c, eq1, eq2 = small_network()
        editor = ConstraintEditor(eq1)
        editor.remove_focused_constraint()
        assert editor.focus is None
        assert eq1 not in a.constraints
        assert b.value is None  # dependency-directed erasure

    def test_toggle_propagation(self, context):
        editor = ConstraintEditor()
        editor.disable_propagation()
        assert not context.enabled
        editor.enable_propagation()
        assert context.enabled

    def test_remove_requires_constraint_focus(self):
        a, *_ = small_network()
        editor = ConstraintEditor(a)
        with pytest.raises(TypeError):
            editor.remove_focused_constraint()


class TestRendering:
    def test_show_variable(self):
        a, b, c, *_ = small_network()
        text = ConstraintEditor(a).show()
        assert "a" in text
        assert "5" in text
        assert "#USER" in text
        assert "EqualityConstraint" in text

    def test_show_propagated_variable_names_source(self):
        a, b, c, *_ = small_network()
        text = ConstraintEditor(b).show()
        assert "propagated by" in text

    def test_show_constraint(self):
        a, b, c, eq1, eq2 = small_network()
        text = ConstraintEditor(eq1).show()
        assert "satisfied: True" in text
        assert "a" in text and "b" in text

    def test_show_unsatisfied_constraint(self):
        v = Variable(name="v")
        bound = UpperBoundConstraint(v, 10, attach=False)
        v.set(99)
        bound.attach()  # violation: stays attached, value restored to None
        text = ConstraintEditor(bound).show()
        assert "satisfied" in text

    def test_show_without_focus(self):
        assert ConstraintEditor().show() == "<no focus>"

    def test_show_network_tree(self):
        a, b, c, eq1, eq2 = small_network()
        text = ConstraintEditor(b).show_network()
        assert "b = 5" in text
        assert "EqualityConstraint" in text
        assert "a = 5" in text
        assert "c = 5" in text

    def test_show_network_marks_revisits(self):
        a, b, c, *_ = small_network()
        text = ConstraintEditor(a).show_network()
        assert "..." in text  # the back-reference to an already-shown node

    def test_show_network_truncates(self):
        a, b, c, *_ = small_network()
        text = ConstraintEditor(a).show_network(max_nodes=2)
        assert "(truncated)" in text

    def test_show_network_requires_variable(self):
        a, b, c, eq1, eq2 = small_network()
        with pytest.raises(TypeError):
            ConstraintEditor(eq1).show_network()

    def test_show_variable_without_constraints(self):
        text = ConstraintEditor(Variable(name="lonely")).show()
        assert "(none)" in text
