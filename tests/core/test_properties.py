"""Property-based tests (hypothesis) for kernel invariants.

Invariants exercised:

* propagation either succeeds leaving every visited constraint satisfied,
  or fails leaving the network exactly as it was (atomicity);
* equality chains converge to a single value regardless of entry point;
* functional networks always agree with direct evaluation of the formula;
* agenda scheduling never loses or duplicates entries.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AgendaScheduler,
    EqualityConstraint,
    PropagationContext,
    UniAdditionConstraint,
    UniMaximumConstraint,
    UpperBoundConstraint,
    Variable,
)

values = st.integers(min_value=-1000, max_value=1000)


class TestAtomicity:
    @given(initial=values, bound=values, attempt=values)
    @settings(max_examples=100)
    def test_assignment_is_atomic(self, initial, bound, attempt):
        """Failed assignments restore the exact prior state."""
        context = PropagationContext()
        a = Variable(name="a", context=context)
        b = Variable(name="b", context=context)
        EqualityConstraint(a, b)
        UpperBoundConstraint(b, bound)
        if initial <= bound:
            assert a.set(initial)
        before = (a.value, b.value, a.last_set_by, b.last_set_by)
        ok = a.can_be_set_to(attempt)
        assert ok == (attempt <= bound)
        assert (a.value, b.value, a.last_set_by, b.last_set_by) == before

    @given(initial=values, attempt=values, bound=values)
    @settings(max_examples=100)
    def test_set_failure_restores(self, initial, attempt, bound):
        context = PropagationContext()
        a = Variable(name="a", context=context)
        UpperBoundConstraint(a, bound)
        if initial <= bound:
            a.set(initial)
            ok = a.set(attempt)
            if attempt <= bound:
                assert ok and a.value == attempt
            else:
                assert not ok and a.value == initial


class TestEqualityChain:
    @given(length=st.integers(min_value=2, max_value=12),
           entry=st.data(), value=values)
    @settings(max_examples=60)
    def test_chain_converges_from_any_entry_point(self, length, entry, value):
        context = PropagationContext()
        variables = [Variable(name=f"v{i}", context=context)
                     for i in range(length)]
        for left, right in zip(variables, variables[1:]):
            EqualityConstraint(left, right)
        index = entry.draw(st.integers(min_value=0, max_value=length - 1))
        assert variables[index].set(value)
        assert all(v.value == value for v in variables)


class TestFunctionalAgreement:
    @given(inputs=st.lists(values, min_size=1, max_size=8))
    @settings(max_examples=80)
    def test_addition_matches_python_sum(self, inputs):
        context = PropagationContext()
        input_vars = [Variable(v, name=f"x{i}", context=context)
                      for i, v in enumerate(inputs)]
        total = Variable(name="total", context=context)
        UniAdditionConstraint(total, input_vars)
        assert total.value == sum(inputs)

    @given(inputs=st.lists(values, min_size=1, max_size=8), update=values,
           data=st.data())
    @settings(max_examples=80)
    def test_maximum_tracks_updates(self, inputs, update, data):
        context = PropagationContext()
        input_vars = [Variable(v, name=f"x{i}", context=context)
                      for i, v in enumerate(inputs)]
        top = Variable(name="top", context=context)
        UniMaximumConstraint(top, input_vars)
        index = data.draw(st.integers(min_value=0, max_value=len(inputs) - 1))
        assert input_vars[index].set(update)
        expected = inputs[:index] + [update] + inputs[index + 1:]
        assert top.value == max(expected)

    @given(layers=st.integers(min_value=1, max_value=5), seed=values)
    @settings(max_examples=40)
    def test_layered_sums(self, layers, seed):
        """A tower of x_{i+1} = x_i + 1 stays consistent through updates."""
        context = PropagationContext()
        chain = [Variable(name="x0", context=context)]
        one = Variable(1, name="one", context=context)
        for i in range(layers):
            nxt = Variable(name=f"x{i+1}", context=context)
            UniAdditionConstraint(nxt, [chain[-1], one])
            chain.append(nxt)
        assert chain[0].set(seed)
        for i, variable in enumerate(chain):
            assert variable.value == seed + i


class TestSchedulerProperties:
    @given(entries=st.lists(st.integers(0, 20), max_size=60))
    @settings(max_examples=60)
    def test_no_loss_no_duplication(self, entries):
        """Every distinct entry is drained exactly once, in FIFO order."""
        scheduler = AgendaScheduler()
        constraints = {i: object() for i in set(entries)}
        first_seen = []
        for i in entries:
            scheduler.schedule(constraints[i])
            if i not in first_seen:
                first_seen.append(i)
        drained = []
        while True:
            entry = scheduler.remove_highest_priority_entry()
            if entry is None:
                break
            drained.append(entry[0])
        assert drained == [constraints[i] for i in first_seen]
