"""Failure injection: defective constraints must not corrupt the network.

The engine's atomicity guarantee extends beyond declared violations: a
constraint whose inference or satisfaction test *raises* (a tool bug)
re-raises to the caller, but the network is restored first and the
engine remains usable.
"""

import pytest

from repro.core import (
    Constraint,
    EqualityConstraint,
    FormulaConstraint,
    Variable,
)


class ExplodingInference(Constraint):
    """Raises from inference once armed (quiet during attach)."""

    def __init__(self, *variables, victim=None, attach=True):
        self.victim = victim
        self.armed = False
        super().__init__(*variables, attach=attach)

    def immediate_inference_by_changing(self, variable):
        if not self.armed:
            return
        if self.victim is not None and variable is not self.victim:
            self.victim.set_propagated(123, self)
        raise RuntimeError("inference bug")


class ExplodingCheck(Constraint):
    """Raises from is_satisfied once armed."""

    def __init__(self, *variables, attach=True):
        self.armed = False
        super().__init__(*variables, attach=attach)

    def is_satisfied(self):
        if self.armed:
            raise RuntimeError("check bug")
        return True


class TestInferenceFailures:
    def test_exception_reraised(self):
        a = Variable(name="a")
        bad = ExplodingInference(a)
        bad.armed = True
        with pytest.raises(RuntimeError, match="inference bug"):
            a.set(1)

    def test_network_restored_after_inference_bug(self):
        a = Variable(name="a")
        victim = Variable(name="victim")
        bad = ExplodingInference(a, victim, victim=victim)
        bad.armed = True
        with pytest.raises(RuntimeError):
            a.set(1)
        assert a.value is None
        assert victim.value is None  # the partial write was rolled back

    def test_engine_usable_after_failure(self, context):
        a = Variable(name="a")
        b = Variable(name="b")
        bad = ExplodingInference(a)
        EqualityConstraint(a, b)
        bad.armed = True
        with pytest.raises(RuntimeError):
            a.set(1)
        assert not context.in_round
        bad.remove()
        assert a.set(2)
        assert b.value == 2

    def test_failing_compute_in_functional_constraint(self):
        x = Variable(name="x")
        r = Variable(name="r")
        FormulaConstraint(r, [x], lambda v: v / 0, label="div0")
        with pytest.raises(ZeroDivisionError):
            x.set(1)
        assert x.value is None
        assert r.value is None

    def test_scheduler_cleared_after_exception(self, context):
        x = Variable(name="x")
        r = Variable(name="r")
        s = Variable(name="s")
        FormulaConstraint(r, [x], lambda v: v / 0, label="div0")
        FormulaConstraint(s, [x], lambda v: v + 1, label="+1")
        with pytest.raises(ZeroDivisionError):
            x.set(1)
        assert context.scheduler.is_empty()


class TestCheckFailures:
    def test_exploding_is_satisfied(self):
        a = Variable(name="a")
        bad = ExplodingCheck(a)
        bad.armed = True
        with pytest.raises(RuntimeError, match="check bug"):
            a.set(1)
        assert a.value is None

    def test_attach_time_explosion_restores(self):
        a = Variable(5, name="a")
        b = Variable(name="b")
        EqualityConstraint(a, b)

        class EagerExplodingCheck(Constraint):
            def is_satisfied(self):
                raise RuntimeError("check bug")

        with pytest.raises(RuntimeError):
            EagerExplodingCheck(a)
        assert a.value == 5
        assert b.value == 5


class TestProbeFailures:
    def test_probe_restores_on_exception(self, context):
        a = Variable(7, name="a")
        bad = ExplodingInference(a)
        bad.armed = True
        with pytest.raises(RuntimeError):
            context.probe(a, 9)
        assert a.value == 7
        assert not context.in_round
