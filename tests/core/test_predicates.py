"""Tests for predicate constraints (specifications without inference)."""

import pytest

from repro.core import (
    AreaBoundConstraint,
    AspectRatioPredicate,
    FunctionPredicate,
    LowerBoundConstraint,
    OrderingConstraint,
    PitchMatchPredicate,
    RangeConstraint,
    UpperBoundConstraint,
    Variable,
)


class Extent:
    def __init__(self, x, y):
        self.x = x
        self.y = y


class Box:
    def __init__(self, w, h):
        self.extent = Extent(w, h)


class TestUpperBound:
    def test_accepts_within_bound(self):
        v = Variable(name="v")
        UpperBoundConstraint(v, 100)
        assert v.set(100)
        assert v.set(50)

    def test_rejects_above_bound(self):
        v = Variable(name="v")
        UpperBoundConstraint(v, 100)
        assert not v.set(101)
        assert v.value is None

    def test_none_is_trivially_satisfied(self):
        v = Variable(name="v")
        c = UpperBoundConstraint(v, 100)
        assert c.is_satisfied()

    def test_qualified_name_mentions_bound(self):
        v = Variable(name="delay")
        c = UpperBoundConstraint(v, 120)
        assert "120" in c.qualified_name()


class TestLowerBoundAndRange:
    def test_lower_bound(self):
        v = Variable(name="v")
        LowerBoundConstraint(v, 10)
        assert not v.set(9)
        assert v.set(10)

    def test_range(self):
        v = Variable(name="v")
        RangeConstraint(v, 1, 8)
        assert v.set(1)
        assert v.set(8)
        assert not v.set(0)
        assert not v.set(9)

    def test_range_restores_previous_value_on_violation(self):
        v = Variable(name="v")
        RangeConstraint(v, 1, 8)
        v.set(4)
        assert not v.set(9)
        assert v.value == 4


class TestOrdering:
    def test_ordering_holds(self):
        a, b = Variable(name="a"), Variable(name="b")
        OrderingConstraint(a, b)
        a.set(3)
        assert b.set(5)
        assert not b.set(2)


class TestFunctionPredicate:
    def test_callable_predicate(self):
        a, b = Variable(name="a"), Variable(name="b")
        FunctionPredicate(a, b, fn=lambda x, y: (x + y) % 2 == 0, label="even-sum")
        a.set(3)
        assert b.set(5)
        assert not b.set(4)

    def test_label_appears_in_name(self):
        c = FunctionPredicate(Variable(name="a"), fn=lambda x: True, label="always")
        assert "always" in c.qualified_name()


class TestAspectRatio:
    """Fig. 7.9's AspectRatioPredicate."""

    def test_matching_ratio(self):
        v = Variable(name="bBox")
        AspectRatioPredicate(v, 2.0)
        assert v.set(Box(4, 2))

    def test_mismatched_ratio(self):
        v = Variable(name="bBox")
        AspectRatioPredicate(v, 2.0)
        assert not v.set(Box(3, 2))

    def test_zero_height_rejected(self):
        v = Variable(name="bBox")
        AspectRatioPredicate(v, 2.0)
        assert not v.set(Box(3, 0))

    def test_bare_extent_pair(self):
        v = Variable(name="bBox")
        AspectRatioPredicate(v, 1.5)
        assert v.set(Extent(3, 2))


class TestAreaBound:
    def test_within_area(self):
        v = Variable(name="bBox")
        AreaBoundConstraint(v, 10)
        assert v.set(Box(5, 2))

    def test_exceeds_area(self):
        v = Variable(name="bBox")
        AreaBoundConstraint(v, 10)
        assert not v.set(Box(5, 3))


class TestPitchMatch:
    def test_matching_heights(self):
        a, b = Variable(name="a"), Variable(name="b")
        PitchMatchPredicate(a, b, axis="y")
        a.set(Box(4, 2))
        assert b.set(Box(9, 2))
        assert not b.set(Box(9, 3))

    def test_matching_widths(self):
        a, b = Variable(name="a"), Variable(name="b")
        PitchMatchPredicate(a, b, axis="x")
        a.set(Box(4, 2))
        assert b.set(Box(4, 7))

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            PitchMatchPredicate(Variable(), Variable(), axis="z")
