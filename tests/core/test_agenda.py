"""Tests for the fixed-priority agenda scheduler (section 4.2.1)."""

from repro.core import Agenda, AgendaScheduler
from repro.core.agenda import DEFAULT_PRIORITY_ORDER, FUNCTIONAL, IMPLICIT


class TestAgenda:
    def test_fifo_order(self):
        agenda = Agenda("a")
        agenda.schedule("c1")
        agenda.schedule("c2")
        agenda.schedule("c3")
        assert agenda.pop() == ("c1", None)
        assert agenda.pop() == ("c2", None)
        assert agenda.pop() == ("c3", None)

    def test_duplicate_entries_rejected(self):
        agenda = Agenda("a")
        assert agenda.schedule("c1", "v1")
        assert not agenda.schedule("c1", "v1")
        assert len(agenda) == 1

    def test_same_constraint_different_variable_allowed(self):
        agenda = Agenda("a")
        agenda.schedule("c1", "v1")
        agenda.schedule("c1", "v2")
        assert len(agenda) == 2

    def test_entry_can_be_rescheduled_after_pop(self):
        agenda = Agenda("a")
        agenda.schedule("c1")
        agenda.pop()
        assert agenda.schedule("c1")

    def test_bool_and_len(self):
        agenda = Agenda("a")
        assert not agenda
        agenda.schedule("c")
        assert agenda
        assert len(agenda) == 1

    def test_clear(self):
        agenda = Agenda("a")
        agenda.schedule("c1")
        agenda.clear()
        assert not agenda
        assert agenda.schedule("c1")  # membership set was cleared too

    def test_entries_snapshot(self):
        agenda = Agenda("a")
        agenda.schedule("c1", "v1")
        agenda.schedule("c2")
        assert agenda.entries() == [("c1", "v1"), ("c2", None)]


class TestAgendaScheduler:
    def test_default_priority_order(self):
        scheduler = AgendaScheduler()
        assert scheduler.priority_order == list(DEFAULT_PRIORITY_ORDER)
        assert scheduler.priority_order[0] == FUNCTIONAL
        assert scheduler.priority_order[-1] == IMPLICIT

    def test_higher_priority_agenda_drains_first(self):
        scheduler = AgendaScheduler()
        scheduler.schedule("low", agenda=IMPLICIT)
        scheduler.schedule("high", agenda=FUNCTIONAL)
        assert scheduler.remove_highest_priority_entry() == ("high", None)
        assert scheduler.remove_highest_priority_entry() == ("low", None)

    def test_empty_scheduler_returns_none(self):
        scheduler = AgendaScheduler()
        assert scheduler.remove_highest_priority_entry() is None

    def test_unknown_agenda_created_at_lowest_priority(self):
        scheduler = AgendaScheduler()
        scheduler.schedule("x", agenda="custom")
        scheduler.schedule("i", agenda=IMPLICIT)
        assert scheduler.priority_order == [FUNCTIONAL, IMPLICIT, "custom"]
        assert scheduler.remove_highest_priority_entry() == ("i", None)
        assert scheduler.remove_highest_priority_entry() == ("x", None)

    def test_is_empty(self):
        scheduler = AgendaScheduler()
        assert scheduler.is_empty()
        scheduler.schedule("c")
        assert not scheduler.is_empty()

    def test_clear_empties_every_agenda(self):
        scheduler = AgendaScheduler()
        scheduler.schedule("a", agenda=FUNCTIONAL)
        scheduler.schedule("b", agenda=IMPLICIT)
        scheduler.clear()
        assert scheduler.is_empty()

    def test_pending_counts(self):
        scheduler = AgendaScheduler()
        scheduler.schedule("a")
        scheduler.schedule("b")
        scheduler.schedule("c", agenda=IMPLICIT)
        counts = scheduler.pending_counts()
        assert counts[FUNCTIONAL] == 2
        assert counts[IMPLICIT] == 1

    def test_priority_interleaving_during_drain(self):
        """Entries added mid-drain still respect priorities."""
        scheduler = AgendaScheduler()
        scheduler.schedule("i1", agenda=IMPLICIT)
        assert scheduler.remove_highest_priority_entry() == ("i1", None)
        scheduler.schedule("f1", agenda=FUNCTIONAL)
        scheduler.schedule("i2", agenda=IMPLICIT)
        assert scheduler.remove_highest_priority_entry() == ("f1", None)
        assert scheduler.remove_highest_priority_entry() == ("i2", None)
