"""Write-ahead journal: format, durability, rotation, damage handling."""

import json
import os
import zlib

import pytest

from repro.session.journal import (
    JournalCorrupt,
    JournalWriter,
    encode_entry,
    read_entries,
    scan_segments,
)


def entries_of(directory, **kwargs):
    return list(read_entries(directory, **kwargs))


class TestFormat:
    def test_line_format_crc_space_json_newline(self):
        line = encode_entry({"op": "assign", "seq": 1})
        assert line.endswith(b"\n")
        crc_hex, body = line[:-1].split(b" ", 1)
        assert len(crc_hex) == 8
        assert int(crc_hex, 16) == zlib.crc32(body) & 0xFFFFFFFF
        assert json.loads(body) == {"op": "assign", "seq": 1}

    def test_entries_are_compact_and_key_sorted(self):
        line = encode_entry({"z": 1, "a": 2, "seq": 3})
        body = line[9:-1].decode()
        assert body == '{"a":2,"seq":3,"z":1}'

    @pytest.mark.parametrize("entry", [
        {"op": "assign", "var": "v:x", "value": 9, "just": "USER"},
        {"op": "assign", "var": "v:x", "value": 2.5, "just": "USER"},
        {"op": "assign", "var": "v:x", "value": 'quote " slash \\',
         "just": "USER"},
        {"op": "assign", "var": "v:x", "value": "ünïcode", "just": "USER"},
        {"op": "assign", "var": "v:x", "value": True, "just": "USER"},
        {"op": "assign", "var": "v:x", "value": None, "just": "USER"},
        {"op": "assign", "var": "v:x", "value": {"__tuple__": [1, 2]},
         "just": "USER"},
    ])
    def test_all_encoder_paths_round_trip(self, entry):
        """Fast path, orjson and the stdlib fallback must agree on the
        decoded entry (escaping, floats, nesting)."""
        line = encode_entry(dict(entry, seq=7))
        crc_hex, body = line[:-1].split(b" ", 1)
        assert int(crc_hex, 16) == zlib.crc32(body) & 0xFFFFFFFF
        assert json.loads(body) == dict(entry, seq=7)

    def test_stdlib_fallback_matches_accelerated_encoder(self, monkeypatch):
        """With orjson unavailable the stdlib path must produce entries
        that decode identically (bytes may differ only in non-ASCII
        escaping, which CRC and decode both absorb)."""
        from repro.session import journal as journal_module
        samples = [
            {"op": "assign", "var": "v:x", "value": 9, "just": "USER",
             "seq": 1},
            {"op": "assign", "var": "v:x", "value": 'q"\\', "just": "USER",
             "seq": 2},
            {"op": "assign", "var": "v:x", "value": {"__list__": [1, "a"]},
             "just": "USER", "seq": 3},
        ]
        accelerated = [encode_entry(dict(s)) for s in samples]
        monkeypatch.setattr(journal_module, "_orjson", None)
        fallback = [encode_entry(dict(s)) for s in samples]
        for fast_line, slow_line in zip(accelerated, fallback):
            assert json.loads(fast_line[9:-1]) == json.loads(slow_line[9:-1])

    def test_append_assign_fast_path_is_byte_identical(self, tmp_path):
        fast_dir, slow_dir = tmp_path / "fast", tmp_path / "slow"
        with JournalWriter(str(fast_dir), fsync="never") as fast, \
                JournalWriter(str(slow_dir), fsync="never") as slow:
            for var, value_json, value in [("v:x", "7", 7),
                                           ("c:INV:w", '"hi"', "hi"),
                                           ("v:y", "2.5", 2.5)]:
                fast.append_assign(var, value_json, "USER")
                slow.append({"op": "assign", "var": var, "value": value,
                             "just": "USER"})
        fast_bytes = scan_segments(str(fast_dir))[0][1]
        slow_bytes = scan_segments(str(slow_dir))[0][1]
        with open(fast_bytes, "rb") as f, open(slow_bytes, "rb") as s:
            assert f.read() == s.read()


class TestAppendAndRead:
    def test_round_trip_preserves_order_and_sequence(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            for i in range(10):
                assert writer.append({"op": "assign", "i": i}) == i + 1
        got = entries_of(str(tmp_path))
        assert [e["seq"] for e in got] == list(range(1, 11))
        assert [e["i"] for e in got] == list(range(10))

    def test_after_seq_skips_prefix(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            for i in range(5):
                writer.append({"i": i})
        got = entries_of(str(tmp_path), after_seq=3)
        assert [e["seq"] for e in got] == [4, 5]

    def test_writer_resumes_existing_tail_segment(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            writer.append({"i": 0})
        with JournalWriter(str(tmp_path), next_seq=2,
                           fsync="never") as writer:
            writer.append({"i": 1})
        assert len(scan_segments(str(tmp_path))) == 1
        assert [e["seq"] for e in entries_of(str(tmp_path))] == [1, 2]

    def test_fsync_policy_validated(self, tmp_path):
        with pytest.raises(ValueError, match="fsync policy"):
            JournalWriter(str(tmp_path), fsync="sometimes")


class TestRotation:
    def test_rotates_past_segment_threshold(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never",
                           segment_max_bytes=128) as writer:
            for i in range(20):
                writer.append({"op": "assign", "i": i})
        segments = scan_segments(str(tmp_path))
        assert len(segments) > 1
        # segment names carry their first sequence number
        firsts = [first for first, _path in segments]
        assert firsts == sorted(firsts)
        assert firsts[0] == 1
        # reading spans all segments seamlessly
        assert [e["i"] for e in entries_of(str(tmp_path))] == list(range(20))

    def test_prune_drops_only_fully_covered_segments(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="never",
                               segment_max_bytes=128)
        for i in range(20):
            writer.append({"op": "assign", "i": i})
        before = scan_segments(str(tmp_path))
        last_first_seq = before[-1][0]
        writer.prune(writer.position - 1)  # everything is covered...
        after = scan_segments(str(tmp_path))
        writer.close()
        # ...but the current segment must survive
        assert [first for first, _ in after] == [last_first_seq]
        assert [e["seq"] for e in entries_of(str(tmp_path))] \
            == list(range(last_first_seq, 21))


class TestDamage:
    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            for i in range(3):
                writer.append({"i": i})
        _, path = scan_segments(str(tmp_path))[-1]
        with open(path, "ab") as handle:
            handle.write(b'0badc0de {"torn')  # partial final line
        got = entries_of(str(tmp_path))
        assert [e["i"] for e in got] == [0, 1, 2]
        # the torn bytes are gone from disk: future appends extend cleanly
        with JournalWriter(str(tmp_path), next_seq=4,
                           fsync="never") as writer:
            writer.append({"i": 3})
        assert [e["i"] for e in entries_of(str(tmp_path))] == [0, 1, 2, 3]

    def test_crc_mismatch_in_tail_is_truncated(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            writer.append({"i": 0})
            writer.append({"i": 1})
        _, path = scan_segments(str(tmp_path))[-1]
        data = open(path, "rb").read()
        lines = data.splitlines(keepends=True)
        # flip a byte inside the last line's JSON body
        corrupted = lines[-1][:-3] + b"X" + lines[-1][-2:]
        with open(path, "wb") as handle:
            handle.write(b"".join(lines[:-1]) + corrupted)
        assert [e["i"] for e in entries_of(str(tmp_path))] == [0]

    def test_damage_in_non_tail_segment_raises(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never",
                           segment_max_bytes=64) as writer:
            for i in range(10):
                writer.append({"op": "assign", "i": i})
        segments = scan_segments(str(tmp_path))
        assert len(segments) > 2
        _, middle = segments[1]
        with open(middle, "r+b") as handle:
            handle.write(b"garbage")
        with pytest.raises(JournalCorrupt, match="non-tail"):
            entries_of(str(tmp_path))

    def test_sequence_gap_raises(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            for i in range(4):
                writer.append({"i": i})
        _, path = scan_segments(str(tmp_path))[-1]
        lines = open(path, "rb").read().splitlines(keepends=True)
        with open(path, "wb") as handle:
            handle.write(lines[0] + lines[2] + lines[3])  # drop seq 2
        with pytest.raises(JournalCorrupt, match="sequence gap"):
            entries_of(str(tmp_path))

    def test_no_repair_leaves_torn_bytes_in_place(self, tmp_path):
        with JournalWriter(str(tmp_path), fsync="never") as writer:
            writer.append({"i": 0})
        _, path = scan_segments(str(tmp_path))[-1]
        with open(path, "ab") as handle:
            handle.write(b"torn")
        size = os.path.getsize(path)
        assert [e["i"] for e in entries_of(str(tmp_path),
                                           repair=False)] == [0]
        assert os.path.getsize(path) == size
