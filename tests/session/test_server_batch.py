"""The assign-many wire command: one round, one rid, exactly-once."""

import os
import re
import shutil
import subprocess
import sys
import tempfile

import pytest

from repro.session.client import ServerError, SessionClient


@pytest.fixture(scope="module")
def server():
    root = tempfile.mkdtemp(prefix="repro-server-batch-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", root,
         "--fsync", "never"],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected server banner: {line!r}"
    yield match.group(1), int(match.group(2))
    proc.terminate()
    proc.wait(timeout=10)
    shutil.rmtree(root, ignore_errors=True)


def client_of(server):
    host, port = server
    return SessionClient(host, port)


class TestAssignMany:
    def test_batch_applies_and_reports_entries(self, server):
        with client_of(server) as client:
            handle = client.session("batch-basic")
            handle.make_var("x")
            handle.make_var("y")
            result = handle.assign_many([("v:x", 1), ("v:y", 2)])
            assert result["accepted"] is True
            assert result["coalesced"] == 0
            assert [(entry["var"], entry["value"])
                    for entry in result["entries"]] == \
                   [("v:x", 1), ("v:y", 2)]
            assert handle.value("v:x") == 1
            assert handle.value("v:y") == 2

    def test_coalescing_reported_per_batch(self, server):
        with client_of(server) as client:
            handle = client.session("batch-coalesce")
            handle.make_var("x")
            first = handle.assign_many([("v:x", 1), ("v:x", 2)])
            assert first["coalesced"] == 1
            assert handle.value("v:x") == 2
            # The delta is per batch, not the cumulative counter.
            second = handle.assign_many([("v:x", 3)])
            assert second["coalesced"] == 0

    def test_triples_and_default_justification(self, server):
        with client_of(server) as client:
            handle = client.session("batch-just")
            handle.make_var("x")
            handle.make_var("y")
            result = handle.assign_many(
                [{"var": "v:x", "value": 5, "just": "APPLICATION"},
                 ("v:y", 6)])
            justs = {entry["var"]: entry["just"]
                     for entry in result["entries"]}
            # Justification symbols print with their reader prefix.
            assert justs == {"v:x": "#APPLICATION", "v:y": "#USER"}

    def test_violation_rejects_whole_batch_atomically(self, server):
        with client_of(server) as client:
            handle = client.session("batch-viol")
            handle.make_var("x")
            handle.make_var("y")
            handle.add_constraint("upper-bound", ["v:y"],
                                  params={"bound": 10})
            with pytest.raises(ServerError) as info:
                handle.assign_many([("v:x", 1), ("v:y", 50)])
            assert info.value.kind == "violation"
            # Atomic: the accepted first entry rolled back too.
            assert handle.value("v:x") is None
            assert handle.value("v:y") is None

    def test_bad_request_frames(self, server):
        with client_of(server) as client:
            handle = client.session("batch-bad")
            with pytest.raises(ServerError) as info:
                client.call("assign-many", session="batch-bad",
                            entries="not-a-list")
            assert info.value.kind == "bad-request"
            with pytest.raises(ServerError) as info:
                client.call("assign-many", session="batch-bad",
                            entries=[{"value": 1}])
            assert info.value.kind == "bad-request"

    def test_retry_with_same_rid_applies_once(self, server):
        """Exactly-once: a duplicate rid replays the stored response
        instead of running the batch again."""
        with client_of(server) as client:
            handle = client.session("batch-rid")
            handle.make_var("x")
            handle.make_var("y")
            entries = [{"var": "v:x", "value": 7}, {"var": "v:y", "value": 8}]
            rid = f"{client.client_id}:batch-dedup"
            first = client.call("assign-many", session="batch-rid",
                                entries=entries, rid=rid)
            before = client.call("stats", session="batch-rid")
            replay = client.call("assign-many", session="batch-rid",
                                 entries=entries, rid=rid)
            after = client.call("stats", session="batch-rid")
            assert replay == first
            # No second round ran, nothing new hit the journal.
            assert after["stats"]["rounds"] == before["stats"]["rounds"]
            assert after["position"] == before["position"]

    def test_client_retry_budget_rides_one_rid(self, server):
        """The convenience wrapper auto-stamps one rid per call, so a
        retried assign_many can never double-apply."""
        with client_of(server) as client:
            client.retries = 2
            handle = client.session("batch-retry")
            handle.make_var("x")
            result = handle.assign_many([("v:x", 3)])
            assert result["accepted"] is True
            assert handle.value("v:x") == 3
