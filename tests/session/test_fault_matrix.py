"""The fault matrix: simulated kill -9 at every byte boundary.

Two exhaustive sweeps — one over the final journal append, one over the
checkpoint temp-file write — plus the crash windows around the atomic
``os.replace`` and the degraded-mode (persistent disk error) paths.  The
invariant everywhere: recovery lands fingerprint-identical to the last
*committed* (acknowledged) state, never a hybrid.

The scenarios live in :mod:`storage_matrix` so the exact same sweeps
run against the sqlite and object backends too
(``tests/store/test_backend_matrix.py``); this module drives them
through the ``file`` backend — the real :class:`~repro.faults.FaultOpener`
over the original on-disk layout, byte for byte.
"""

import pytest

from tests.session.storage_matrix import (
    FILE,
    scenario_checkpoint_enospc,
    scenario_checkpoint_rename_crash,
    scenario_checkpoint_tear_matrix,
    scenario_degraded_enospc,
    scenario_degraded_fsync,
    scenario_journal_tear_matrix,
    scenario_replay_determinism_under_budget,
    scenario_torn_write_error_rollback,
)


class TestJournalTearMatrix:
    def test_kill_at_every_byte_of_the_final_append(self, tmp_path):
        scenario_journal_tear_matrix(FILE, tmp_path)


class TestCheckpointCrashMatrix:
    def test_kill_at_every_byte_of_the_checkpoint_write(self, tmp_path):
        scenario_checkpoint_tear_matrix(FILE, tmp_path)

    @pytest.mark.parametrize("window", ["replace", "replace-done"])
    def test_kill_around_the_atomic_rename(self, tmp_path, window):
        scenario_checkpoint_rename_crash(FILE, tmp_path, window)

    def test_checkpoint_write_error_keeps_session_alive(self, tmp_path):
        scenario_checkpoint_enospc(FILE, tmp_path)


class TestDegradedMode:
    def test_persistent_disk_error_degrades_to_read_only(self, tmp_path):
        scenario_degraded_enospc(FILE, tmp_path)

    def test_fsync_failure_degrades_and_rolls_back_the_line(self, tmp_path):
        scenario_degraded_fsync(FILE, tmp_path)

    def test_torn_write_with_error_rolls_back_the_partial_line(
            self, tmp_path):
        scenario_torn_write_error_rollback(FILE, tmp_path)


class TestReplayDeterminismUnderBudget:
    def test_budget_aborted_round_replays_identically(self, tmp_path):
        scenario_replay_determinism_under_budget(FILE, tmp_path)
