"""The fault matrix: simulated kill -9 at every byte boundary.

Two exhaustive sweeps — one over the final journal append, one over the
checkpoint temp-file write — plus the crash windows around the atomic
``os.replace`` and the degraded-mode (persistent disk error) paths.  The
invariant everywhere: recovery lands fingerprint-identical to the last
*committed* (acknowledged) state, never a hybrid.
"""

import os
import shutil

import pytest

from repro.faults import CrashPoint, FaultOpener, FaultPlan
from repro.session import JournalDegraded, Session


def build(directory, opener=None):
    """The standard small design: three vars and a sum constraint."""
    session = Session("matrix", directory=str(directory), opener=opener)
    session.make_variable("x")
    session.make_variable("y")
    session.make_variable("total")
    session.add_constraint("sum", ["v:total", "v:x", "v:y"])
    session.assign("v:x", 3)
    session.assign("v:y", 4)
    return session

def recovered_fingerprint(directory):
    """What a healthy process sees after recovering the directory."""
    session = Session("matrix", directory=str(directory), read_only=True)
    try:
        return session.fingerprint(include_stats=False)
    finally:
        session.close()


def journal_growth(directory, op):
    """Byte length of the journal line ``op`` appends (pilot run)."""
    session = build(directory)
    wal = [os.path.join(str(directory), name)
           for name in os.listdir(str(directory)) if name.startswith("wal-")]
    assert len(wal) == 1
    before = os.path.getsize(wal[0])
    op(session)
    after = os.path.getsize(wal[0])
    session.close()
    return before, after - before


class TestJournalTearMatrix:
    def test_kill_at_every_byte_of_the_final_append(self, tmp_path):
        """Tear the final ``assign`` at byte k for every k.

        k < line length: the entry was never acknowledged — recovery
        truncates the torn tail and lands on the committed prefix.
        k == line length: the entry is whole — recovery keeps it.
        """
        base, line_len = journal_growth(tmp_path / "pilot",
                                        lambda s: s.assign("v:x", 55))
        assert line_len > 0

        committed = build(tmp_path / "committed")
        fp_committed = committed.fingerprint(include_stats=False)
        committed.close()
        final = build(tmp_path / "final")
        final.assign("v:x", 55)
        fp_final = final.fingerprint(include_stats=False)
        final.close()

        for k in range(line_len + 1):
            directory = tmp_path / f"tear-{k}"
            plan = FaultPlan()
            plan.torn_write("*wal-*", at_byte=base + k)
            opener = FaultOpener(plan)
            session = build(directory, opener=opener)
            if k < line_len:
                with pytest.raises(CrashPoint):
                    session.assign("v:x", 55)
                assert opener.crashed
                expected = fp_committed
            else:
                # The tear point sits exactly past the line: the append
                # survives whole and no fault fires.
                session.assign("v:x", 55)
                session.close()
                expected = fp_final
            assert recovered_fingerprint(directory) == expected, \
                f"tear at byte {k}/{line_len} recovered a hybrid state"


class TestCheckpointCrashMatrix:
    def test_kill_at_every_byte_of_the_checkpoint_write(self, tmp_path):
        """A checkpoint torn at any byte must be invisible to recovery."""
        template = tmp_path / "template"
        build(template).close()

        # Expected state: the same directory checkpointed successfully.
        clean = tmp_path / "clean"
        shutil.copytree(template, clean)
        session = Session("matrix", directory=str(clean))
        session.checkpoint()
        expected = session.fingerprint(include_stats=False)
        session.close()
        checkpoints = [name for name in os.listdir(clean)
                       if name.startswith("ckpt-")]
        assert len(checkpoints) == 1
        size = os.path.getsize(os.path.join(str(clean), checkpoints[0]))

        for k in range(size + 1):
            directory = tmp_path / f"ckpt-{k}"
            shutil.copytree(template, directory)
            plan = FaultPlan()
            plan.torn_write("*.tmp", at_byte=k)
            session = Session("matrix", directory=str(directory),
                              opener=FaultOpener(plan))
            if k < size:
                with pytest.raises(CrashPoint):
                    session.checkpoint()
            else:
                session.checkpoint()  # boundary past the file: no fault
                session.close()
            assert recovered_fingerprint(directory) == expected, \
                f"checkpoint torn at byte {k}/{size} corrupted recovery"

    @pytest.mark.parametrize("window", ["replace", "replace-done"])
    def test_kill_around_the_atomic_rename(self, tmp_path, window):
        template = tmp_path / "template"
        build(template).close()
        clean = tmp_path / "clean"
        shutil.copytree(template, clean)
        session = Session("matrix", directory=str(clean))
        session.checkpoint()
        expected = session.fingerprint(include_stats=False)
        session.close()

        directory = tmp_path / window
        shutil.copytree(template, directory)
        plan = FaultPlan()
        plan.crash_on(window, "*ckpt-*")
        session = Session("matrix", directory=str(directory),
                          opener=FaultOpener(plan))
        with pytest.raises(CrashPoint):
            session.checkpoint()
        assert recovered_fingerprint(directory) == expected

    def test_checkpoint_write_error_keeps_session_alive(self, tmp_path):
        """A non-fatal disk error during checkpoint: the old state stays
        recoverable, the temp file is cleaned up, the session goes on."""
        plan = FaultPlan()
        plan.enospc("write", pattern="*.tmp", persistent=False)
        session = build(tmp_path, opener=FaultOpener(plan))
        fp_before = session.fingerprint(include_stats=False)
        with pytest.raises(OSError):
            session.checkpoint()
        assert not [name for name in os.listdir(tmp_path)
                    if name.endswith(".tmp")]
        # The session keeps working — and can checkpoint once space is back.
        session.assign("v:x", 6)
        assert session.checkpoint() is not None
        session.close()
        recovered = recovered_fingerprint(tmp_path)
        assert recovered["variables"]["v:x"]["value"] == 6
        assert recovered["position"] > fp_before["position"]


class TestDegradedMode:
    def test_persistent_disk_error_degrades_to_read_only(self, tmp_path):
        plan = FaultPlan()
        opener = FaultOpener(plan)
        session = build(tmp_path, opener=opener)
        fp_committed = session.fingerprint(include_stats=False)
        plan.enospc("write", pattern="*wal-*")  # persistent from now on

        with pytest.raises(JournalDegraded):
            session.assign("v:x", 99)
        assert session.degraded
        # The failed mutation never applied (write-ahead discipline).
        assert session.get("v:x")[0] == 3
        # Mutations stay refused; reads and fingerprints keep working.
        with pytest.raises(JournalDegraded):
            session.assign("v:y", 1)
        with pytest.raises(JournalDegraded):
            session.make_variable("z")
        assert session.fingerprint(include_stats=False) == fp_committed
        # A healthy process recovers the committed state exactly.
        assert recovered_fingerprint(tmp_path) == fp_committed

    def test_fsync_failure_degrades_and_rolls_back_the_line(self, tmp_path):
        plan = FaultPlan()
        opener = FaultOpener(plan)
        session = build(tmp_path, opener=opener)
        fp_committed = session.fingerprint(include_stats=False)
        wal = [os.path.join(str(tmp_path), name)
               for name in os.listdir(tmp_path) if name.startswith("wal-")]
        size_committed = os.path.getsize(wal[0])
        plan.fail_fsync("*wal-*", persistent=True)

        with pytest.raises(JournalDegraded):
            session.assign("v:x", 99)
        assert session.degraded
        # The un-acknowledged line was rolled back off the segment: the
        # fsync gray zone must not leave bytes a recovery would trust.
        assert os.path.getsize(wal[0]) == size_committed
        assert recovered_fingerprint(tmp_path) == fp_committed

    def test_torn_write_with_error_rolls_back_the_partial_line(
            self, tmp_path):
        base, line_len = journal_growth(tmp_path / "pilot",
                                        lambda s: s.assign("v:x", 55))
        plan = FaultPlan()
        plan.torn_write("*wal-*", at_byte=base + line_len // 2,
                        then="error")
        directory = tmp_path / "torn"
        session = build(directory, opener=FaultOpener(plan))
        fp_committed = session.fingerprint(include_stats=False)
        with pytest.raises(JournalDegraded):
            session.assign("v:x", 55)
        assert session.degraded
        wal = [os.path.join(str(directory), name)
               for name in os.listdir(directory)
               if name.startswith("wal-")]
        assert os.path.getsize(wal[0]) == base  # partial line truncated
        assert recovered_fingerprint(directory) == fp_committed


class TestReplayDeterminismUnderBudget:
    def test_budget_aborted_round_replays_identically(self, tmp_path):
        from repro.core import RoundBudget

        session = Session("matrix", directory=str(tmp_path))
        for i in range(12):
            session.make_variable(f"x{i}")
        for i in range(11):
            session.add_constraint("equality", [f"v:x{i}", f"v:x{i + 1}"])
        session.context.round_budget = RoundBudget(max_steps=4)
        assert session.assign("v:x0", 7) is False  # watchdog abort
        assert session.violations[-1]["kind"] == "budget"
        session.context.round_budget = None
        assert session.assign("v:x11", 3) is True
        fp_live = session.fingerprint()  # include stats: the strong claim
        session.close()

        twin = Session("matrix", directory=str(tmp_path), read_only=True)
        assert twin.fingerprint() == fp_live
        assert twin.violations[-1]["kind"] == "budget"
        twin.close()
