"""Health frame detail: per-session degraded names and connections.

Satellite of the fleet PR: the ``health`` frame now carries which open
sessions are degraded (and why) plus the live connection count — the
fleet router keys per-session failover decisions off exactly these
fields.
"""

import pytest

from repro.faults import FaultOpener, FaultPlan
from repro.fleet.runner import ServerThread
from repro.session.client import ServerError, SessionClient


@pytest.fixture()
def faulty_server(tmp_path):
    plan = FaultPlan()
    thread = ServerThread(str(tmp_path), fsync="always",
                          opener=FaultOpener(plan))
    with thread:
        yield thread, plan


class TestHealthDetail:
    def test_healthy_frame_shape(self, faulty_server):
        thread, _plan = faulty_server
        with thread.client() as client:
            client.session("alpha").make_var("x", 1)
            health = client.health()
            assert health["status"] == "ok"
            assert health["degraded"] == []
            assert health["degraded_detail"] == {}
            assert health["open_sessions"] == ["alpha"]
            assert health["connections"] >= 1

    def test_degraded_session_is_named_with_its_error(self, faulty_server):
        thread, plan = faulty_server
        with thread.client() as client:
            alpha = client.session("alpha")
            beta = client.session("beta")
            alpha.make_var("x", 1)
            beta.make_var("x", 1)
            plan.enospc("write", pattern="*alpha*wal-*")
            with pytest.raises(ServerError) as info:
                alpha.assign("v:x", 9)
            assert info.value.kind == "degraded"
            health = client.health()
            assert health["status"] == "degraded"
            assert health["degraded"] == ["alpha"]
            assert list(health["degraded_detail"]) == ["alpha"]
            assert health["degraded_detail"]["alpha"]  # the why
            # the healthy session keeps mutating and stays unnamed
            beta.assign("v:x", 2)
            assert client.health()["degraded"] == ["alpha"]

    def test_connection_count_tracks_live_clients(self, faulty_server):
        thread, _plan = faulty_server
        with thread.client() as first:
            base = first.health()["connections"]
            extra = SessionClient(thread.host, thread.port)
            try:
                # The server registers a connection when its handler
                # starts, not at TCP accept — round-trip one request on
                # the new client so the count is observable.
                extra.health()
                assert first.health()["connections"] == base + 1
            finally:
                extra.close()

    def test_worker_identity_fields_merge_into_health(self, tmp_path):
        """A fleet worker stamps its id into ``server.info``; the base
        health command must carry such fields verbatim."""
        thread = ServerThread(str(tmp_path), fsync="never")
        thread.server.info = {"worker": "w7", "role": "worker"}
        with thread:
            with thread.client() as client:
                health = client.health()
                assert health["worker"] == "w7"
                assert health["role"] == "worker"
