"""Session batches: one journal record, exact replay, undo, property.

The durability contract for ``assign_many``: the whole batch lands as
ONE CRC-checked journal record of the *requested* entries, replay
re-coalesces deterministically (full-fingerprint equality, stats
included), undo reverts the whole batch, and a batch is observably
equivalent to applying its entries sequentially.
"""

import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import APPLICATION, PlanCache, RoundBudget, Variable
from repro.session import Session
from repro.session.journal import encode_entry, format_batch_body, _frame

VAR_NAMES = ["a", "b", "c"]


@pytest.fixture
def directory():
    path = tempfile.mkdtemp(prefix="repro-batch-test-")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def make_session(directory, **kwargs):
    session = Session("batch", directory=directory, fsync="never", **kwargs)
    for name in VAR_NAMES:
        session.make_variable(name)
    return session


def value_of(session, target):
    return session.get(target)[0]


def journal_bytes(directory):
    import pathlib
    return b"".join(
        segment.read_bytes()
        for segment in sorted(pathlib.Path(directory).glob("wal-*.jsonl")))


class TestJournaling:
    def test_batch_is_one_record(self, directory):
        with make_session(directory) as session:
            base = journal_bytes(directory).count(b'"op":"batch"')
            assert session.assign_many([("v:a", 1), ("v:b", 2), ("v:c", 3)])
        data = journal_bytes(directory)
        assert data.count(b'"op":"batch"') == base + 1

    def test_requested_entries_are_journaled_pre_coalesce(self, directory):
        """The journal holds the batch as requested; replay re-coalesces,
        so live and replayed coalescing stats agree."""
        with make_session(directory) as session:
            assert session.assign_many([("v:a", 1), ("v:b", 2), ("v:a", 9)])
            assert session.context.stats.coalesced_assignments == 1
            expected = session.fingerprint()
        assert b'"var":"v:a"},' in journal_bytes(directory)
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.context.stats.coalesced_assignments == 1
            assert replayed.fingerprint() == expected

    def test_replay_reproduces_live_fingerprint(self, directory):
        with make_session(directory) as session:
            assert session.assign_many([("v:a", 1), ("v:b", 2)])
            assert session.assign_many([("v:a", 5, APPLICATION),
                                        ("v:c", -3)])
            expected = session.fingerprint()  # full: stats included
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected

    def test_rejected_batch_is_not_journaled_as_effective(self, directory):
        """A violating batch still lands its write-ahead record, but
        replay rejects it identically — fingerprints stay equal."""
        with make_session(directory) as session:
            session.add_constraint("upper-bound", ["v:a"],
                                   params={"bound": 10})
            assert session.assign_many([("v:a", 99), ("v:b", 2)]) is False
            assert value_of(session, "v:a") is None
            expected = session.fingerprint()
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected

    def test_finite_budget_rides_the_slow_path(self, directory):
        """With a step budget installed the record carries it, and
        replay re-runs the batch under the same budget."""
        with make_session(directory) as session:
            session.context.round_budget = RoundBudget(max_steps=500)
            assert session.assign_many([("v:a", 1), ("v:b", 2)])
            expected = session.fingerprint()
        assert b'"budget":500' in journal_bytes(directory)
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected

    def test_unaddressable_entries_are_counted_not_journaled(self,
                                                             directory):
        with make_session(directory) as session:
            loose = Variable(0, name="loose",
                             context=session.context)
            assert session.assign_many([(loose, 7), ("v:a", 1)])
            assert session.unjournaled_assigns == 1
            # The loose entry is invisible to the journal (its round ran
            # live but replay cannot reproduce it), so stats diverge by
            # design; everything addressable replays exactly.
            expected = session.fingerprint(include_stats=False)
        assert b'"var":"loose"' not in journal_bytes(directory)
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint(include_stats=False) == expected
            assert value_of(replayed, "v:a") == 1

    def test_fused_encoder_matches_generic_encoder(self):
        entries = [("v:a", "1", "USER"), ("v:b", '"hi"', "APPLICATION"),
                   ("v:c", "2.5", "USER")]
        fused = _frame(format_batch_body(entries, 41))
        generic = encode_entry({
            "op": "batch",
            "entries": [{"var": "v:a", "value": 1, "just": "USER"},
                        {"var": "v:b", "value": "hi",
                         "just": "APPLICATION"},
                        {"var": "v:c", "value": 2.5, "just": "USER"}],
            "seq": 41})
        assert fused == generic


class TestUndoRedo:
    def test_undo_reverts_the_whole_batch(self, directory):
        with make_session(directory) as session:
            assert session.assign("v:a", 100)
            assert session.assign_many([("v:a", 1), ("v:b", 2), ("v:c", 3)])
            assert session.undo()
            assert value_of(session, "v:a") == 100
            assert value_of(session, "v:b") is None
            assert value_of(session, "v:c") is None

    def test_redo_reapplies_the_whole_batch(self, directory):
        with make_session(directory) as session:
            assert session.assign_many([("v:a", 1), ("v:b", 2)])
            assert session.undo()
            assert session.redo()
            assert value_of(session, "v:a") == 1
            assert value_of(session, "v:b") == 2
            expected = session.fingerprint()
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected


class TestChainCachePurity:
    def test_cache_on_and_off_sessions_agree_in_full(self):
        """Twin sessions, identical batch history, one with a plan-chain
        cache: FULL fingerprints (stats included) must be equal — the
        replayed stats delta keeps even the counters identical."""
        directory_a = tempfile.mkdtemp(prefix="repro-chain-a-")
        directory_b = tempfile.mkdtemp(prefix="repro-chain-b-")
        try:
            with make_session(directory_a) as cached, \
                    make_session(directory_b) as plain:
                PlanCache(cached.context)
                for index in range(10):
                    value = 9 if index % 2 == 0 else 8
                    batch = [("v:a", value), ("v:b", value + 1),
                             ("v:c", value + 2)]
                    assert cached.assign_many(batch)
                    assert plain.assign_many(batch)
                assert cached.fingerprint() == plain.fingerprint()
        finally:
            shutil.rmtree(directory_a, ignore_errors=True)
            shutil.rmtree(directory_b, ignore_errors=True)


value_strategy = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False,
              allow_infinity=False))
entry_strategy = st.tuples(
    st.integers(min_value=0, max_value=len(VAR_NAMES) - 1), value_strategy)
batch_strategy = st.lists(entry_strategy, min_size=1, max_size=6)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(batches=st.lists(batch_strategy, max_size=5))
def test_batch_equals_sequential_application(batches):
    """Property: a non-violating batch history is observably equivalent
    to applying the same entries one at a time — identical values and
    justifications (stats necessarily differ: N rounds versus one)."""
    directory_a = tempfile.mkdtemp(prefix="repro-batch-prop-a-")
    directory_b = tempfile.mkdtemp(prefix="repro-batch-prop-b-")
    try:
        with make_session(directory_a) as batched, \
                make_session(directory_b) as sequential:
            for batch in batches:
                entries = [(f"v:{VAR_NAMES[index]}", value)
                           for index, value in batch]
                assert batched.assign_many(entries)
                for address, value in entries:
                    assert sequential.assign(address, value)
            left = batched.fingerprint(include_stats=False)
            right = sequential.fingerprint(include_stats=False)
            # One batch is one journal record versus N — the journal
            # position necessarily differs; everything else agrees.
            left.pop("position")
            right.pop("position")
            assert left == right
    finally:
        shutil.rmtree(directory_a, ignore_errors=True)
        shutil.rmtree(directory_b, ignore_errors=True)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(batches=st.lists(batch_strategy, max_size=5))
def test_batch_history_replays_exactly(batches):
    """Property: any batch history — rejections included — replays from
    the journal to the identical FULL fingerprint (stats and all)."""
    directory = tempfile.mkdtemp(prefix="repro-batch-prop-r-")
    try:
        with make_session(directory) as live:
            live.add_constraint("upper-bound", ["v:c"],
                                params={"bound": 10})
            for batch in batches:
                live.assign_many([(f"v:{VAR_NAMES[index]}", value)
                                  for index, value in batch])
            expected = live.fingerprint()
        with Session("batch", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected
    finally:
        shutil.rmtree(directory, ignore_errors=True)
