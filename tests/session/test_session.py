"""Session semantics: journaling, undo/redo, checkpoint, determinism."""

import pytest

from repro.core.justification import USER
from repro.session import Session, SessionError
from repro.session.journal import read_entries


@pytest.fixture
def session(tmp_path):
    with Session("t", directory=str(tmp_path), fsync="never") as s:
        yield s


def sum_network(s):
    s.make_variable("a")
    s.make_variable("b")
    s.make_variable("c")
    s.add_constraint("sum", ["v:c", "v:a", "v:b"])
    return s


def replay(tmp_path, name="t"):
    return Session(name, directory=str(tmp_path), read_only=True)


class TestJournaling:
    def test_external_assign_is_journaled_write_ahead(self, session,
                                                      tmp_path):
        v = session.make_variable("x")
        v.set(5, USER)
        session.sync()  # fsync="never" buffers until rotate/close/sync
        ops = [e["op"] for e in read_entries(str(tmp_path))]
        assert ops == ["make-var", "assign"]

    def test_propagated_values_are_not_journaled(self, session, tmp_path):
        sum_network(session)
        session.assign("v:a", 3)
        session.assign("v:b", 4)
        assert session.get("v:c")[0] == 7
        session.sync()
        ops = [e["op"] for e in read_entries(str(tmp_path))]
        # c's derived value never hits the journal — replay re-derives it
        assert ops.count("assign") == 2

    def test_anonymous_variables_are_skipped_and_counted(self, session):
        from repro.core.variable import Variable
        anon = Variable(context=session.context)
        anon.set(1, USER)
        assert session.unjournaled_assigns == 1

    def test_in_memory_session_tracks_position_without_files(self):
        with Session("mem") as s:
            s.make_variable("x", 1)
            assert not s.durable
            assert s.position == 1

    def test_rejected_names_never_reach_the_journal(self, session,
                                                    tmp_path):
        from repro.session.codec import EncodingError
        with pytest.raises(EncodingError):
            session.make_variable("a:b")
        assert list(read_entries(str(tmp_path))) == []

    def test_duplicate_structural_names_rejected_before_journal(
            self, session, tmp_path):
        session.define_cell("INV")
        with pytest.raises(SessionError):
            session.define_cell("INV")
        session.sync()
        assert len(list(read_entries(str(tmp_path)))) == 1


class TestUndoRedo:
    def test_undo_redo_value_assignment(self, session):
        sum_network(session)
        session.assign("v:a", 3)
        session.assign("v:b", 4)
        session.assign("v:b", 10)
        assert session.get("v:c")[0] == 13
        assert session.undo()
        assert session.get("v:c")[0] == 7
        assert session.get("v:b")[0] == 4
        assert session.redo()
        assert session.get("v:c")[0] == 13

    def test_undo_at_boundary_returns_false(self, session):
        assert not session.undo()
        assert not session.redo()

    def test_new_mutation_clears_redo(self, session):
        session.make_variable("x", 1)
        session.assign("v:x", 2)
        session.undo()
        session.assign("v:x", 9)
        assert not session.redo()

    def test_undo_retract_restores_value_and_derivations(self, session):
        sum_network(session)
        session.assign("v:a", 3)
        session.assign("v:b", 4)
        session.retract("v:a")
        assert session.get("v:c")[0] is None
        assert session.undo()
        assert session.get("v:a")[0] == 3
        assert session.get("v:c")[0] == 7

    def test_structural_undo_rebuilds(self, session):
        sum_network(session)
        session.assign("v:a", 1)
        session.assign("v:b", 2)
        assert session.get("v:c")[0] == 3
        session.remove_constraint("c1")
        session.assign("v:a", 5)
        assert session.get("v:c")[0] is None  # erased with the constraint
        assert session.undo()  # undo assign a=5
        assert session.undo()  # undo remove-constraint -> rebuild
        assert session.get("v:c")[0] == 3
        assert "c1" in session.constraints

    def test_undo_window_stops_at_checkpoint(self, session):
        session.make_variable("x", 1)
        session.checkpoint()
        assert not session.can_undo()
        session.assign("v:x", 2)
        assert session.undo()
        assert not session.undo()
        assert session.get("v:x")[0] == 1


class TestRetract:
    def test_retract_erases_dependents_and_rederives(self, session):
        # c = a + b and c = d (equality): retracting a erases c, but the
        # equality re-derives c from d during repropagation.
        sum_network(session)
        session.make_variable("d")
        session.add_constraint("equality", ["v:c", "v:d"])
        session.assign("v:a", 3)
        session.assign("v:b", 4)
        session.assign("v:d", 7)   # agrees with the propagated c
        session.retract("v:a")
        # c (propagated from a) is erased, then the equality re-derives
        # it from d's independent user value
        assert session.get("v:c")[0] == 7
        assert session.get("v:a")[0] is None

    def test_retract_unaddressable_variable_rejected(self, session):
        from repro.core.variable import Variable
        with pytest.raises(SessionError):
            session.retract(Variable(context=session.context))


class TestViolations:
    def test_violation_log_records_session_constraint_id(self, session):
        session.make_variable("x")
        session.add_constraint("upper-bound", ["v:x"],
                               params={"bound": 10})
        assert not session.assign("v:x", 50)
        assert len(session.violations) == 1
        assert session.violations[0]["constraint"] == "c1"
        assert session.get("v:x")[0] is None  # network restored

    def test_fingerprint_includes_violations(self, session):
        session.make_variable("x")
        session.add_constraint("lower-bound", ["v:x"], params={"bound": 0})
        session.assign("v:x", -5)
        assert session.fingerprint()["violations"] == session.violations


class TestCheckpoint:
    def test_checkpoint_then_recover_skips_old_journal(self, tmp_path):
        with Session("t", directory=str(tmp_path), fsync="never") as s:
            sum_network(s)
            s.assign("v:a", 3)
            s.assign("v:b", 4)
            s.checkpoint()
            s.assign("v:b", 6)
            live = s.fingerprint(include_stats=False)
        with replay(tmp_path) as r:
            assert r.replayed_entries == 1  # only the post-checkpoint tail
            assert r.fingerprint(include_stats=False) == live
            assert r.get("v:c")[0] == 9

    def test_checkpoint_preserves_propagated_justifications(self, tmp_path):
        with Session("t", directory=str(tmp_path), fsync="never") as s:
            sum_network(s)
            s.assign("v:a", 1)
            s.assign("v:b", 2)
            s.checkpoint()
        with replay(tmp_path) as r:
            value, justification = r.get("v:c")
            assert value == 3
            assert justification.constraint is r.constraints["c1"]

    def test_checkpoint_prunes_covered_segments(self, tmp_path):
        from repro.session.journal import scan_segments
        with Session("t", directory=str(tmp_path), fsync="never",
                     segment_max_bytes=256) as s:
            s.make_variable("x")
            for i in range(30):
                s.assign("v:x", i)
            assert len(scan_segments(str(tmp_path))) > 1
            s.checkpoint()
            assert len(scan_segments(str(tmp_path))) == 1

    def test_corrupt_checkpoint_falls_back_to_older_one(self, tmp_path):
        import glob
        with Session("t", directory=str(tmp_path), fsync="never") as s:
            s.make_variable("x", 1)
            s.checkpoint()
            s.assign("v:x", 2)
            s.checkpoint()
            live = s.fingerprint(include_stats=False)
        newest = sorted(glob.glob(str(tmp_path / "ckpt-*.json")))[-1]
        with open(newest, "w") as handle:
            handle.write("{not json")
        with replay(tmp_path) as r:
            assert r.get("v:x")[0] == 2
            assert r.fingerprint(include_stats=False) == live


class TestReplayDeterminism:
    def test_genesis_replay_reproduces_stats_and_violations(self, tmp_path):
        with Session("t", directory=str(tmp_path), fsync="never") as s:
            sum_network(s)
            s.add_constraint("upper-bound", ["v:c"], params={"bound": 10})
            s.assign("v:a", 3)
            s.assign("v:b", 4)
            s.assign("v:b", 20)          # violates c <= 10, restored
            s.retract("v:a")
            s.assign("v:a", 5)
            s.undo()
            s.redo()
            live = s.fingerprint()       # includes full stats counters
        with replay(tmp_path) as r:
            assert r.fingerprint() == live

    def test_structural_scenario_replays_identically(self, tmp_path):
        with Session("t", directory=str(tmp_path), fsync="never") as s:
            s.define_cell("INV")
            s.define_signal("INV", "a", "in")
            s.define_signal("INV", "z", "out")
            s.declare_delay("INV", "a", "z", estimate=5.0)
            s.add_parameter("INV", "w", low=1, high=10, default=2)
            s.define_cell("BUF")
            s.define_signal("BUF", "i", "in")
            s.define_signal("BUF", "o", "out")
            s.instantiate("BUF", "INV", "u1")
            s.instantiate("BUF", "INV", "u2", offset=(10, 0))
            s.add_net("BUF", "n1")
            s.connect("BUF", "n1", "z", instance="u1")
            s.connect("BUF", "n1", "a", instance="u2")
            s.assign("i:BUF:u1:w", 7)
            s.undo()
            live = s.fingerprint()
        with replay(tmp_path) as r:
            assert r.fingerprint() == live


class TestServerlessConcurrencyPrimitives:
    def test_two_sessions_are_isolated(self, tmp_path):
        with Session("a", directory=str(tmp_path / "a"),
                     fsync="never") as sa, \
                Session("b", directory=str(tmp_path / "b"),
                        fsync="never") as sb:
            sa.make_variable("x", 1)
            sb.make_variable("x", 2)
            sa.assign("v:x", 10)
            assert sb.get("v:x")[0] == 2
            assert sa.context is not sb.context

    def test_manager_recovers_and_enumerates(self, tmp_path):
        from repro.session import SessionManager
        with SessionManager(str(tmp_path), fsync="never") as manager:
            manager.get("alice").make_variable("x", 1)
            manager.get("bob").make_variable("y", 2)
        with SessionManager(str(tmp_path), fsync="never") as manager:
            assert manager.names() == ["alice", "bob"]
            assert manager.get("alice").get("v:x")[0] == 1
            assert not manager.get("bob", create=True).can_undo() \
                or True  # recovery path exercised
