"""Durable rid dedup: exactly-once across process death.

Satellite of the fleet PR: a mutation's ``rid`` now rides *inside* the
journal entry it produces, so the dedup that used to live only in the
server's in-memory response cache survives a worker kill — recovery
rebuilds the applied-rid set from the journal, and a retried mutation
replays as a reconstructed response instead of applying twice.
"""

import pytest

from repro.session.session import Session


def build(directory):
    session = Session("rids", directory=str(directory))
    session.make_variable("x", 1)
    return session


class TestRidInJournal:
    def test_assign_journals_the_rid(self, tmp_path):
        session = build(tmp_path)
        session.pending_rid = "c1:7"
        assert session.assign("v:x", 5)
        entry = session.rid_entry("c1:7")
        assert entry is not None
        assert entry["op"] == "assign"
        assert entry["rid"] == "c1:7"
        # pending_rid is consumed by exactly one journal append
        assert session.pending_rid is None
        session.assign("v:x", 6)
        assert session.rid_entry("c1:7")["seq"] == entry["seq"]
        session.close()

    def test_rid_is_in_the_journal_bytes(self, tmp_path):
        import os
        session = build(tmp_path)
        session.pending_rid = "c1:9"
        session.assign("v:x", 5)
        session.close()
        (segment,) = [os.path.join(tmp_path, name)
                      for name in os.listdir(tmp_path)
                      if name.startswith("wal-")]
        assert b'"rid":"c1:9"' in open(segment, "rb").read()

    def test_batch_journals_the_rid_once(self, tmp_path):
        session = build(tmp_path)
        session.make_variable("y")
        session.pending_rid = "c1:8"
        assert session.assign_many([("v:x", 5), ("v:y", 6)])
        entry = session.rid_entry("c1:8")
        assert entry["op"] == "batch"
        assert len(entry["entries"]) == 2
        session.close()

    def test_unjournaled_mutation_leaves_no_rid(self, tmp_path):
        session = Session("rids", directory=str(tmp_path))
        session.pending_rid = "c1:10"
        assert not session.undo()  # nothing to undo — not journaled
        assert session.rid_entry("c1:10") is None
        session.close()


class TestRecoveryRebuild:
    def test_applied_rids_survive_reopen(self, tmp_path):
        session = build(tmp_path)
        session.pending_rid = "c2:1"
        session.assign("v:x", 42)
        session.close()

        recovered = Session("rids", directory=str(tmp_path))
        entry = recovered.rid_entry("c2:1")
        assert entry is not None
        assert entry["op"] == "assign"
        assert entry["value"] == 42
        assert recovered.rid_entry("never-seen") is None
        recovered.close()

    def test_rid_cache_is_bounded(self, tmp_path):
        from repro.session.session import _RID_JOURNAL_CACHE

        session = build(tmp_path)
        for index in range(_RID_JOURNAL_CACHE + 10):
            session.pending_rid = f"c3:{index}"
            session.assign("v:x", index)
        assert session.rid_entry("c3:0") is None  # evicted, oldest first
        assert session.rid_entry(
            f"c3:{_RID_JOURNAL_CACHE + 9}") is not None
        session.close()


class TestServerReplay:
    """The server answers a replayed rid from the journal after the
    in-memory cache died (session close stands in for process death —
    chaos/fleet smokes cover the real SIGKILL)."""

    @pytest.fixture()
    def server(self, tmp_path):
        from repro.fleet.runner import ServerThread

        with ServerThread(str(tmp_path), fsync="never") as thread:
            yield thread

    def test_retried_assign_replays_not_reapplies(self, server):
        with server.client() as client:
            handle = client.session("alpha")
            handle.make_var("x", 1)
            first = client.call("assign", session="alpha", var="v:x",
                                value=5, just="USER", rid="rid-A")
            assert first["accepted"] and "replayed" not in first
            position = handle.fingerprint(stats=False)["position"]
            # forget the in-memory rid cache, keep the journal
            handle.close()
            client.call("open", session="alpha")
            replay = client.call("assign", session="alpha", var="v:x",
                                 value=5, just="USER", rid="rid-A")
            assert replay["replayed"] is True
            assert replay["accepted"] is True
            assert replay["value"] == 5
            after = client.session("alpha").fingerprint(stats=False)
            assert after["position"] == position, \
                "replayed rid must not re-apply the mutation"

    def test_retried_batch_replays_with_entry_states(self, server):
        with server.client() as client:
            handle = client.session("beta")
            handle.make_var("x")
            handle.make_var("y")
            first = client.call(
                "assign-many", session="beta",
                entries=[{"var": "v:x", "value": 1},
                         {"var": "v:y", "value": 2}],
                just="USER", rid="rid-B")
            assert first["accepted"]
            position = handle.fingerprint(stats=False)["position"]
            handle.close()
            client.call("open", session="beta")
            replay = client.call(
                "assign-many", session="beta",
                entries=[{"var": "v:x", "value": 1},
                         {"var": "v:y", "value": 2}],
                just="USER", rid="rid-B")
            assert replay["replayed"] is True
            values = {entry["var"]: entry["value"]
                      for entry in replay["entries"]}
            assert values == {"v:x": 1, "v:y": 2}
            after = client.session("beta").fingerprint(stats=False)
            assert after["position"] == position

    def test_fresh_rid_still_applies(self, server):
        with server.client() as client:
            handle = client.session("gamma")
            handle.make_var("x", 1)
            handle.close()
            client.call("open", session="gamma")
            result = client.call("assign", session="gamma", var="v:x",
                                 value=9, just="USER", rid="rid-C")
            assert "replayed" not in result
            assert client.session("gamma").value("v:x") == 9
