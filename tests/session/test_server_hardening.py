"""Server hardening: frame limits, connection limits, health, retries.

Runs a real ``repro serve`` subprocess (with the hardening flags) and, for
the fault tests, interposes a :class:`StreamFaultProxy` so frames can be
dropped and connections reset deterministically between a real client and
the real server.
"""

import json
import os
import re
import shutil
import socket
import subprocess
import sys
import tempfile

import pytest

from repro.faults import FaultPlan, StreamFaultProxy
from repro.session.client import ServerError, SessionClient


def start_server(*extra):
    root = tempfile.mkdtemp(prefix="repro-harden-test-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", root,
         "--fsync", "never", "--max-frame-bytes", "4096",
         "--max-connections", "8", *extra],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected server banner: {line!r}"
    return proc, root, match.group(1), int(match.group(2))


@pytest.fixture(scope="module")
def server():
    proc, root, host, port = start_server()
    yield host, port
    proc.terminate()
    proc.wait(timeout=10)
    shutil.rmtree(root, ignore_errors=True)


def raw_connection(server):
    sock = socket.create_connection(server, timeout=10)
    return sock, sock.makefile("rwb")


class TestFrameLimit:
    def test_oversized_frame_answers_and_keeps_connection(self, server):
        sock, file = raw_connection(server)
        try:
            file.write(b"x" * 10000 + b"\n")
            file.flush()
            response = json.loads(file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-request"
            assert "4096" in response["error"]["message"]
            # The connection survives and stays frame-aligned.
            file.write(b'{"id": 7, "cmd": "ping"}\n')
            file.flush()
            response = json.loads(file.readline())
            assert response["id"] == 7 and response["ok"] is True
        finally:
            sock.close()

    def test_oversized_frame_without_newline_yet(self, server):
        """The limit triggers while the frame is still buffering — the
        server must not buffer unboundedly waiting for the newline."""
        sock, file = raw_connection(server)
        try:
            file.write(b"y" * 9000)  # no newline: still "one frame"
            file.flush()
            response = json.loads(file.readline())
            assert response["error"]["type"] == "bad-request"
            file.write(b"tail-of-oversized-frame\n")  # now finish it
            file.write(b'{"id": 1, "cmd": "ping"}\n')
            file.flush()
            response = json.loads(file.readline())
            assert response["id"] == 1 and response["ok"] is True
        finally:
            sock.close()


class TestConnectionLimit:
    def test_excess_connection_gets_graceful_overloaded_frame(self, server):
        held = [raw_connection(server) for _ in range(8)]
        # Ensure all eight are registered server-side before the ninth.
        for _sock, file in held:
            file.write(b'{"id": 1, "cmd": "ping"}\n')
            file.flush()
            assert json.loads(file.readline())["ok"] is True
        try:
            sock, file = raw_connection(server)
            try:
                response = json.loads(file.readline())
                assert response["ok"] is False
                assert response["error"]["type"] == "overloaded"
                assert file.readline() == b""  # then the server closes
            finally:
                sock.close()
        finally:
            for sock, _file in held:
                sock.close()


class TestHealth:
    def test_health_reports_status_and_load(self, server):
        host, port = server
        with SessionClient(host, port) as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["degraded"] == []
            assert health["connections"] >= 1
            assert health["in_flight"] >= 1  # this very request
            assert health["draining"] is False


class TestClientLifecycle:
    def test_close_is_idempotent(self, server):
        host, port = server
        client = SessionClient(host, port)
        client.close()
        client.close()  # second close must be a no-op, not a crash

    def test_close_after_connection_loss_is_safe(self, server):
        host, port = server
        plan = FaultPlan()
        plan.reset("c2s", nth=1)
        with StreamFaultProxy(host, port, plan) as proxy:
            client = SessionClient(proxy.host, proxy.port, timeout=5)
            with pytest.raises((ConnectionError, OSError)):
                client.call("ping")
            client.close()
            client.close()

    def test_failed_connect_raises_oserror_not_attributeerror(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        free_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            SessionClient("127.0.0.1", free_port, timeout=1)


class TestRetries:
    def test_dropped_response_retries_exactly_once(self, server):
        """The server applies a mutation, the response frame dies on the
        wire, the client retries — the rid cache must replay the original
        response instead of applying the mutation twice."""
        host, port = server
        plan = FaultPlan()
        # s2c frame 4 is the response to the assign
        # (1: open, 2: make-var, 3: the first fingerprint).
        plan.drop("s2c", nth=4)
        with StreamFaultProxy(host, port, plan) as proxy:
            client = SessionClient(proxy.host, proxy.port, timeout=1,
                                   retries=4, backoff=0.01, retry_seed=1)
            try:
                handle = client.session("retry-once")
                handle.make_var("x", 0)
                before = handle.fingerprint(stats=False)["position"]
                handle.assign("v:x", 5)  # response dropped, then retried
                after = handle.fingerprint(stats=False)["position"]
                assert handle.value("v:x") == 5
                assert after == before + 1, "retried mutation applied twice"
            finally:
                client.close()
        assert plan.fired("s2c") == 1

    def test_connection_reset_mid_request_retries_transparently(self, server):
        host, port = server
        plan = FaultPlan()
        plan.reset("c2s", nth=4)  # kill the link under the make-var request
        with StreamFaultProxy(host, port, plan) as proxy:
            client = SessionClient(proxy.host, proxy.port, timeout=2,
                                   retries=4, backoff=0.01, retry_seed=2)
            try:
                handle = client.session("retry-reset")
                handle.make_var("y", 1)
                handle.assign("v:y", 9)
                assert handle.value("v:y") == 9
            finally:
                client.close()

    def test_violation_is_never_retried(self, server):
        host, port = server
        with SessionClient(host, port, retries=5, backoff=0.01) as client:
            handle = client.session("retry-viol")
            handle.make_var("z")
            handle.add_constraint("upper-bound", ["v:z"],
                                  params={"bound": 10})
            with pytest.raises(ServerError) as info:
                handle.assign("v:z", 50)
            assert info.value.kind == "violation"
            # Retried violations would append duplicate violation records.
            assert len(handle.violations()) == 1


class TestShutdownDrain:
    def test_shutdown_answers_before_closing(self):
        proc, root, host, port = start_server("--drain-timeout", "2")
        try:
            with SessionClient(host, port) as client:
                handle = client.session("drain")
                handle.make_var("x", 1)
                client.shutdown()  # response must arrive, not be cut off
            assert proc.wait(timeout=10) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=5)
            shutil.rmtree(root, ignore_errors=True)
