"""Plan cache under durable sessions: undo/redo, rebuild, determinism.

Plans are never journaled — a session with a cache installed must
produce the *identical* fingerprint (values, justifications, violations
and the full stats block) as one without.  Undo/redo and checkpoint
restore rebuild state the cache has no trace for, so both must advance
the topology epoch and drop every plan.
"""

import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import PlanCache
from repro.session import Session, SessionError, UnknownAddress


@pytest.fixture
def session_dir(tmp_path):
    return str(tmp_path / "plan-session")


def hot_session(directory, *, cached=True):
    session = Session("plan", directory=directory, fsync="never")
    cache = PlanCache(session.context) if cached else None
    for name in ("a", "b", "c"):
        session.make_variable(name)
    session.add_constraint("equality", ["v:a", "v:b"])
    return session, cache


class TestUndoRedo:
    def test_undo_bumps_epoch_and_drops_plans(self, session_dir):
        session, cache = hot_session(session_dir)
        with session:
            for index in range(6):
                session.assign("v:a", 9 if index % 2 == 0 else 8)
            assert cache.plan_count == 1
            epoch = session.context.topology_epoch
            assert session.undo()
            assert session.context.topology_epoch > epoch
            assert cache.plan_count == 0

    def test_redo_bumps_epoch_and_drops_plans(self, session_dir):
        session, cache = hot_session(session_dir)
        with session:
            for index in range(6):
                session.assign("v:a", 9 if index % 2 == 0 else 8)
            assert session.undo()
            for index in range(6):
                session.assign("v:c", index % 2)
            assert cache.plan_count >= 1
            epoch = session.context.topology_epoch
            assert session.redo() is False  # redo stack cleared by writes
            session.undo()
            assert session.redo()
            assert session.context.topology_epoch > epoch
            assert cache.plan_count == 0

    def test_structural_undo_rebinds_cache_to_rebuilt_context(self,
                                                              session_dir):
        session, cache = hot_session(session_dir)
        with session:
            cid = session.add_constraint("equality", ["v:b", "v:c"])
            session.assign("v:a", 1)
            before = session.context
            assert session.undo()  # structural: forces a full rebuild
            assert session.undo()
            assert session.context.plan_cache is cache
            assert cache.context is session.context
            if session.context is not before:
                assert getattr(before, "plan_cache", None) is None

    def test_space_batch_undo_redo_rebinds_cache_epoch(self, session_dir):
        """Undoing a committed space batch and redoing it must leave the
        plan cache keyed at the rebuilt topology epoch: plans warmed
        before the history walk may not replay after it, and new rounds
        must trace and promote at the *current* epoch (issue 7
        satellite — regression guard against stale-epoch reuse)."""
        session, cache = hot_session(session_dir)
        with session:
            with session.space() as space:
                space.assign("v:a", 5)
                space.assign("v:c", 7)
                assert space.commit()
            # Warm a scalar plan on top of the committed batch.
            for index in range(6):
                session.assign("v:a", 9 if index % 2 == 0 else 8)
            assert cache.plan_count >= 1
            for _ in range(7):             # 6 assigns + the space batch
                assert session.undo()
            assert session.get("v:a")[0] is None
            assert session.get("v:c")[0] is None
            epoch_after_undo = session.context.topology_epoch
            assert cache.plan_count == 0   # nothing keyed at a dead epoch
            assert session.redo()          # re-applies the space batch
            assert session.context.topology_epoch > epoch_after_undo
            assert cache.context is session.context
            assert session.context.plan_cache is cache
            assert session.get("v:a")[0] == 5 and session.get("v:c")[0] == 7
            # New hot rounds trace/promote at the current epoch and hit.
            hits = cache.hits
            for index in range(6):
                session.assign("v:a", 9 if index % 2 == 0 else 8)
            assert cache.plan_count >= 1
            assert cache.hits > hits

    def test_space_batch_undo_redo_matches_uncached_twin(self, tmp_path):
        """Fingerprint twin (cache on/off) across a committed space
        batch, a full undo and a redo — byte-identical incl. stats."""
        dir_on = str(tmp_path / "space-on")
        dir_off = str(tmp_path / "space-off")
        on, cache = hot_session(dir_on)
        off, _ = hot_session(dir_off, cached=False)
        with on, off:
            for session in (on, off):
                with session.space() as space:
                    space.assign("v:a", 5)
                    space.assign("v:c", 7)
                    assert space.commit()
                for index in range(6):
                    session.assign("v:a", 9 if index % 2 == 0 else 8)
                session.undo()
                session.undo()
                session.redo()
            assert cache.hits > 0
            assert on.fingerprint() == off.fingerprint()

    def test_undo_redo_values_match_uncached_twin(self, tmp_path):
        dir_on = str(tmp_path / "on")
        dir_off = str(tmp_path / "off")
        on, cache = hot_session(dir_on)
        off, _ = hot_session(dir_off, cached=False)
        with on, off:
            for session in (on, off):
                for index in range(8):
                    session.assign("v:a", 9 if index % 2 == 0 else 8)
                session.undo()
                session.undo()
                session.redo()
            assert cache.hits > 0
            assert on.fingerprint() == off.fingerprint()


N_VARS = 3
VAR_NAMES = [f"n{i}" for i in range(N_VARS)]
var_index = st.integers(min_value=0, max_value=N_VARS - 1)
small_value = st.integers(min_value=-5, max_value=5)

op = st.one_of(
    st.tuples(st.just("assign"), var_index, small_value),
    st.tuples(st.just("retract"), var_index),
    st.tuples(st.just("add-eq"), var_index, var_index),
    st.tuples(st.just("add-ub"), var_index, small_value),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("undo")),
    st.tuples(st.just("redo")),
)


def apply_op(session, operation):
    try:
        kind = operation[0]
        if kind == "assign":
            session.assign(f"v:{VAR_NAMES[operation[1]]}", operation[2])
        elif kind == "retract":
            session.retract(f"v:{VAR_NAMES[operation[1]]}")
        elif kind == "add-eq":
            a, b = operation[1:]
            if a != b:
                session.add_constraint("equality", [f"v:{VAR_NAMES[a]}",
                                                    f"v:{VAR_NAMES[b]}"])
        elif kind == "add-ub":
            session.add_constraint("upper-bound",
                                   [f"v:{VAR_NAMES[operation[1]]}"],
                                   params={"bound": operation[2]})
        elif kind == "remove":
            cids = sorted(session.constraints)
            if cids:
                session.remove_constraint(cids[operation[1] % len(cids)])
        elif kind == "undo":
            session.undo()
        elif kind == "redo":
            session.redo()
    except (SessionError, UnknownAddress):
        pass


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=st.lists(op, max_size=12))
def test_cached_session_fingerprint_equals_uncached(operations):
    """The pure-cache property, under random histories.

    Each history runs three times over (repetition is what makes keys
    hot, promotes plans and exercises replay + deopt), in one session
    with a plan cache and one without: every value, justification,
    violation and stats counter must agree.
    """
    dir_on = tempfile.mkdtemp(prefix="repro-plan-on-")
    dir_off = tempfile.mkdtemp(prefix="repro-plan-off-")
    try:
        with Session("p", directory=dir_on, fsync="never") as cached, \
                Session("p", directory=dir_off, fsync="never") as plain:
            cache = PlanCache(cached.context)
            for session in (cached, plain):
                for name in VAR_NAMES:
                    session.make_variable(name)
            for _ in range(3):
                for operation in operations:
                    apply_op(cached, operation)
                    apply_op(plain, operation)
            assert cached.fingerprint() == plain.fingerprint()
            assert cache.stats()  # cache stayed installed throughout
    finally:
        shutil.rmtree(dir_on, ignore_errors=True)
        shutil.rmtree(dir_off, ignore_errors=True)
