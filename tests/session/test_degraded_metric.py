"""Degraded-journal observability: the alertable signal for fleets.

When a persistent disk error freezes a session's journal read-only,
the installed observer must see it — a ``session.journal.degraded``
counter bump plus a ``journal-degraded`` instant mark carrying the
error — exactly once per degradation, on every backend.
"""

import pytest

from repro.faults import FaultOpener, FaultPlan
from repro.obs import Observer
from repro.session import JournalDegraded, Session
from repro.store import SqliteStore


def degrade(session, plan):
    session.make_variable("x")
    session.assign("v:x", 1)
    plan.enospc("write", pattern="*wal-*")  # persistent from now on
    with pytest.raises(JournalDegraded):
        session.assign("v:x", 2)
    assert session.degraded


class TestDegradedSignal:
    def test_counter_and_instant_mark_fire_once(self, tmp_path):
        plan = FaultPlan()
        session = Session("metrics", directory=str(tmp_path),
                          opener=FaultOpener(plan))
        with Observer.full(session.context) as obs:
            degrade(session, plan)
            # Further refused mutations do not re-count: the session
            # degraded once, alerts should fire once.
            with pytest.raises(JournalDegraded):
                session.assign("v:x", 3)
        assert obs.metrics.counter("session.journal.degraded").value == 1
        marks = [mark for mark in obs.spans.instants
                 if mark.name == "journal-degraded"]
        assert len(marks) == 1
        session.close()

    def test_signal_fires_on_a_non_file_backend_too(self, tmp_path):
        plan = FaultPlan()
        store = SqliteStore(str(tmp_path / "sessions.db"), plan=plan)
        session = Session("metrics", store=store.session("metrics"))
        with Observer.full(session.context) as obs:
            degrade(session, plan)
        assert obs.metrics.counter("session.journal.degraded").value == 1
        session.close()
        store.close()
