"""Server protocol and concurrency: ≥8 isolated clients, error frames."""

import os
import re
import shutil
import subprocess
import sys
import tempfile
import threading

import pytest

from repro.session.client import ServerError, SessionClient


@pytest.fixture(scope="module")
def server():
    """One `repro serve` subprocess for the whole module (fsync=never —
    these tests exercise the protocol, not durability)."""
    root = tempfile.mkdtemp(prefix="repro-server-test-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", root,
         "--fsync", "never"],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected server banner: {line!r}"
    yield match.group(1), int(match.group(2))
    proc.terminate()
    proc.wait(timeout=10)
    shutil.rmtree(root, ignore_errors=True)


def client_of(server):
    host, port = server
    return SessionClient(host, port)


class TestProtocol:
    def test_ping(self, server):
        with client_of(server) as client:
            assert client.ping()

    def test_unknown_cmd_is_bad_request_frame(self, server):
        with client_of(server) as client:
            with pytest.raises(ServerError) as info:
                client.call("frobnicate")
            assert info.value.kind == "bad-request"

    def test_unknown_address_is_graceful(self, server):
        with client_of(server) as client:
            with pytest.raises(ServerError) as info:
                client.call("get", session="proto", var="v:nope")
            assert info.value.kind == "bad-request"

    def test_malformed_json_does_not_kill_connection(self, server):
        with client_of(server) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            import json
            response = json.loads(client._file.readline())
            assert response["ok"] is False
            assert response["error"]["type"] == "bad-request"
            assert client.ping()  # connection still usable

    def test_violation_frame_carries_detail_and_restores(self, server):
        with client_of(server) as client:
            handle = client.session("proto-viol")
            handle.make_var("x")
            handle.add_constraint("upper-bound", ["v:x"],
                                  params={"bound": 10})
            with pytest.raises(ServerError) as info:
                handle.assign("v:x", 50)
            assert info.value.kind == "violation"
            assert info.value.detail["constraint"] == "c1"
            assert handle.value("v:x") is None  # network restored

    def test_undo_redo_checkpoint_over_the_wire(self, server):
        with client_of(server) as client:
            handle = client.session("proto-undo")
            handle.make_var("x", 1)
            handle.assign("v:x", 2)
            assert handle.undo()
            assert handle.value("v:x") == 1
            assert handle.redo()
            assert handle.value("v:x") == 2
            result = handle.checkpoint()
            assert result["path"]
            assert not handle.undo()  # checkpoint clears the window

    def test_structural_commands(self, server):
        with client_of(server) as client:
            handle = client.session("proto-cells")
            handle.define_cell("INV")
            handle.define_signal("INV", "a", "in")
            handle.define_signal("INV", "z", "out")
            handle.declare_delay("INV", "a", "z", estimate=5.0)
            handle.add_parameter("INV", "w", low=1, high=10, default=2)
            handle.define_cell("TOP")
            handle.instantiate("TOP", "INV", "u1")
            assert handle.value("i:TOP:u1:w") == 2
            handle.assign("i:TOP:u1:w", 7)
            assert handle.value("i:TOP:u1:w") == 7


class TestConcurrency:
    N_CLIENTS = 10

    def test_concurrent_clients_with_per_session_isolation(self, server):
        """≥8 concurrent clients, each driving its own session through
        assigns, a violation, undo and checkpoint — no cross-session
        value leakage, every final state correct."""
        errors = []
        results = {}

        def drive(k):
            try:
                with client_of(server) as client:
                    handle = client.session(f"worker{k}")
                    handle.make_var("x")
                    handle.make_var("y")
                    handle.make_var("total")
                    handle.add_constraint(
                        "sum", ["v:total", "v:x", "v:y"])
                    for i in range(25):
                        handle.assign("v:x", i * (k + 1))
                        handle.assign("v:y", i + k)
                    handle.undo()          # y back to 23 + k
                    handle.checkpoint()
                    results[k] = (handle.value("v:x"),
                                  handle.value("v:y"),
                                  handle.value("v:total"))
            except Exception as error:  # surface in the main thread
                errors.append((k, error))

        threads = [threading.Thread(target=drive, args=(k,))
                   for k in range(self.N_CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        assert len(results) == self.N_CLIENTS
        for k, (x, y, total) in results.items():
            assert x == 24 * (k + 1), f"worker{k} x leaked"
            assert y == 23 + k, f"worker{k} y leaked"
            assert total == x + y

    def test_interleaved_requests_on_one_session_serialize(self, server):
        with client_of(server) as c1, client_of(server) as c2:
            h1 = c1.session("shared")
            h2 = c2.session("shared")
            h1.make_var("counter", 0)
            done = []

            def bump(handle, n):
                for _ in range(n):
                    current = handle.value("v:counter")
                    handle.assign("v:counter", current + 1)
                done.append(True)

            # Same session from two connections: the per-session lock
            # serializes each request; the final value reflects both
            # writers having been applied in *some* order.
            t1 = threading.Thread(target=bump, args=(h1, 10))
            t2 = threading.Thread(target=bump, args=(h2, 10))
            t1.start(); t2.start()
            t1.join(timeout=30); t2.join(timeout=30)
            assert len(done) == 2
            final = h1.value("v:counter")
            assert 10 <= final <= 20  # read-modify-write races are the
            # client's problem; the server guarantees per-op atomicity
