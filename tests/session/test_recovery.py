"""Crash recovery: SIGKILL mid-burst, torn tails, acknowledged-prefix
equivalence.

The contract under test (docs/sessions.md): any mutation *acknowledged*
(its journal append returned) survives ``kill -9``; a torn final journal
entry — the one being appended at the moment of death — is truncated on
recovery, never fatal; and the recovered state equals a reference run of
the surviving journal prefix through the public API.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.session import Session
from repro.session.journal import read_entries, scan_segments

CHILD = textwrap.dedent("""
    import sys
    from repro.session import Session

    directory, ack_path = sys.argv[1], sys.argv[2]
    session = Session("crash", directory=directory, fsync="always")
    session.make_variable("x")
    session.make_variable("y")
    session.make_variable("total")
    session.add_constraint("sum", ["v:total", "v:x", "v:y"])
    ack = open(ack_path, "w")
    for i in range(100000):
        session.assign("v:x", i)
        session.assign("v:y", 2 * i)
        ack.write(f"{i}\\n")
        ack.flush()
""")


def rebuild_reference(directory):
    """Re-run the surviving journal through the public API — an
    independent reference for what recovery must reproduce."""
    reference = Session("crash")
    for entry in read_entries(str(directory), repair=False):
        reference._apply_entry(entry)
        reference._last_seq = entry["seq"]
    return reference


@pytest.mark.slow
def test_sigkill_mid_burst_recovers_acknowledged_prefix(tmp_path):
    directory = tmp_path / "crash"
    ack_path = tmp_path / "ack"
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(directory), str(ack_path)],
        env={**os.environ,
             "PYTHONPATH": os.pathsep.join(sys.path)})
    try:
        deadline = time.time() + 30
        while time.time() < deadline:
            if ack_path.exists() and len(ack_path.read_bytes()) > 40:
                break
            time.sleep(0.01)
        else:
            pytest.fail("child made no progress")
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait()

    acked = [int(line) for line in ack_path.read_text().split()]
    assert acked, "no acknowledged assignments"
    last_acked = acked[-1]

    recovered = Session("crash", directory=str(directory), read_only=True)
    # Every acknowledged assignment survived: the journal holds at least
    # the acked prefix (x=last_acked was acked after y=2*(last_acked-1)).
    x_value = recovered.get("v:x")[0]
    assert x_value >= last_acked
    assert recovered.get("v:total")[0] == \
        recovered.get("v:x")[0] + recovered.get("v:y")[0]
    # The recovered state equals an independent replay of the journal.
    reference = rebuild_reference(directory)
    assert recovered.fingerprint() == reference.fingerprint()
    recovered.close()
    reference.close()


def test_torn_final_entry_is_truncated_on_recovery(tmp_path):
    with Session("t", directory=str(tmp_path), fsync="never") as session:
        session.make_variable("x")
        for i in range(5):
            session.assign("v:x", i)
        live = session.fingerprint()
    # simulate a crash mid-append: garbage half-line at the journal tail
    _, tail = scan_segments(str(tmp_path))[-1]
    with open(tail, "ab") as handle:
        handle.write(b'12345678 {"op":"assign","var":"v:x","val')
    with Session("t", directory=str(tmp_path), fsync="never") as recovered:
        assert recovered.fingerprint() == live
        # and the session keeps working — the torn bytes were removed
        recovered.assign("v:x", 99)
        assert recovered.get("v:x")[0] == 99


def test_recovery_is_idempotent(tmp_path):
    with Session("t", directory=str(tmp_path), fsync="never") as session:
        session.make_variable("x", 1)
        session.assign("v:x", 2)
        session.checkpoint()
        session.assign("v:x", 3)
    fingerprints = []
    for _ in range(3):
        with Session("t", directory=str(tmp_path),
                     read_only=True) as recovered:
            fingerprints.append(recovered.fingerprint())
    assert fingerprints[0] == fingerprints[1] == fingerprints[2]


def test_acknowledged_means_durable_even_without_close(tmp_path):
    # Session deliberately not closed — simulates process death after
    # the journal append returned (fsync="always" contract).
    session = Session("t", directory=str(tmp_path), fsync="always")
    session.make_variable("x")
    session.assign("v:x", 42)
    del session  # no close(), no flush beyond what append guarantees
    with Session("t", directory=str(tmp_path), read_only=True) as recovered:
        assert recovered.get("v:x")[0] == 42
