"""Journal tail streaming: live follow, rotation, torn lines, buffers.

Satellite of the fleet PR: :class:`JournalTailReader` is the
replication export path (a follower reads a live journal
incrementally) and :meth:`JournalWriter.recent_lines` is the
synchronous-replication fast path (ship the just-appended bytes
without touching the disk).  Both must behave under rotation, torn
final lines and ``fsync="never"`` buffering.
"""

import os

import pytest

from repro.session.journal import (
    JournalCorrupt,
    JournalTailGap,
    JournalTailReader,
    JournalWriter,
    encode_entry,
)


def append_n(writer, count, start=0):
    for index in range(count):
        writer.append({"op": "assign", "var": "v:x",
                       "value": start + index})


def polled(reader, **kwargs):
    return [seq for seq, _line in reader.poll(**kwargs)]


class TestLiveFollow:
    def test_incremental_poll_sees_each_append(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        reader = JournalTailReader(str(tmp_path))
        assert polled(reader) == []
        append_n(writer, 3)
        assert polled(reader) == [1, 2, 3]
        assert polled(reader) == []
        append_n(writer, 2, start=3)
        assert polled(reader) == [4, 5]
        assert reader.position == 5
        writer.close()

    def test_lines_are_the_exact_journal_bytes(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        seq = writer.append({"op": "assign", "var": "v:x", "value": 1})
        pairs = JournalTailReader(str(tmp_path)).poll()
        assert pairs == [(seq, encode_entry(
            {"op": "assign", "seq": seq, "var": "v:x", "value": 1}))]
        writer.close()

    def test_follow_across_rotation(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always",
                               segment_max_bytes=120)
        reader = JournalTailReader(str(tmp_path))
        total = 12
        seen = []
        for index in range(total):
            writer.append({"op": "assign", "var": "v:x", "value": index})
            seen.extend(polled(reader))
        assert seen == list(range(1, total + 1))
        segments = [name for name in os.listdir(tmp_path)
                    if name.startswith("wal-")]
        assert len(segments) > 1, "rotation did not happen; test is moot"
        writer.close()

    def test_after_seq_resumes_mid_stream(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always",
                               segment_max_bytes=120)
        append_n(writer, 10)
        assert polled(JournalTailReader(str(tmp_path), after_seq=7)) \
            == [8, 9, 10]
        writer.close()

    def test_limit_and_max_bytes_chunk_the_stream(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 6)
        reader = JournalTailReader(str(tmp_path))
        assert polled(reader, limit=2) == [1, 2]
        assert polled(reader, limit=2) == [3, 4]
        rest = reader.poll(max_bytes=1)  # at least one line per poll
        assert [seq for seq, _line in rest] == [5]
        assert polled(reader) == [6]
        writer.close()


class TestTornTails:
    def test_torn_final_line_means_wait_not_corrupt(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 2)
        writer.close()
        (segment,) = [os.path.join(tmp_path, name)
                      for name in os.listdir(tmp_path)
                      if name.startswith("wal-")]
        with open(segment, "ab") as handle:
            handle.write(b"deadbeef {\"torn")  # no newline: mid-write
        reader = JournalTailReader(str(tmp_path))
        assert polled(reader) == [1, 2]  # waits for the rest, no raise
        assert polled(reader) == []

    def test_corrupt_complete_line_at_tail_waits_for_repair(self, tmp_path):
        """A CRC-failing line *with* newline at the very tail is still
        'a write in progress' from the reader's side — recovery on the
        writer side will truncate it; the reader must not declare the
        journal corrupt."""
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 2)
        writer.close()
        (segment,) = [os.path.join(tmp_path, name)
                      for name in os.listdir(tmp_path)
                      if name.startswith("wal-")]
        with open(segment, "ab") as handle:
            handle.write(b"00000000 {\"bad\":1}\n")
        reader = JournalTailReader(str(tmp_path))
        assert polled(reader) == [1, 2]

    def test_corruption_before_the_tail_raises(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 3)
        writer.close()
        (segment,) = [os.path.join(tmp_path, name)
                      for name in os.listdir(tmp_path)
                      if name.startswith("wal-")]
        data = open(segment, "rb").read().splitlines(keepends=True)
        data[1] = b"00000000 " + data[1][9:]  # break line 2's CRC
        open(segment, "wb").write(b"".join(data))
        with pytest.raises(JournalCorrupt):
            JournalTailReader(str(tmp_path)).poll()

    def test_sequence_gap_inside_journal_raises(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 1)
        writer.close()
        (segment,) = [os.path.join(tmp_path, name)
                      for name in os.listdir(tmp_path)
                      if name.startswith("wal-")]
        with open(segment, "ab") as handle:
            handle.write(encode_entry({"op": "assign", "seq": 5}))
            handle.write(encode_entry({"op": "assign", "seq": 6}))
        with pytest.raises(JournalCorrupt):
            JournalTailReader(str(tmp_path)).poll()


class TestFsyncNeverBuffering:
    def test_buffered_lines_invisible_until_sync(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="never")
        reader = JournalTailReader(str(tmp_path))
        append_n(writer, 3)
        assert polled(reader) == []  # still in the writer's buffer
        writer.sync()
        assert polled(reader) == [1, 2, 3]
        writer.close()

    def test_recent_lines_sees_buffered_appends(self, tmp_path):
        """The in-memory tail covers exactly the fsync="never" blind
        spot: replication ships acknowledged lines the disk does not
        show yet."""
        writer = JournalWriter(str(tmp_path), fsync="never")
        append_n(writer, 3)
        lines = writer.recent_lines(0)
        assert [line for line in lines] \
            == [encode_entry({"op": "assign", "seq": seq, "var": "v:x",
                              "value": seq - 1}) for seq in (1, 2, 3)]
        writer.close()


class TestRecentLines:
    def test_caught_up_returns_empty(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 2)
        assert writer.recent_lines(2) == []
        assert writer.recent_lines(99) == []
        writer.close()

    def test_partial_tail_returns_the_delta(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        append_n(writer, 4)
        lines = writer.recent_lines(2)
        assert len(lines) == 2
        writer.close()

    def test_overflowed_buffer_returns_none(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always",
                               tail_lines=2)
        append_n(writer, 5)
        assert writer.recent_lines(1) is None  # seqs 2,3 fell out
        assert len(writer.recent_lines(3)) == 2
        writer.close()

    def test_empty_journal_has_no_delta(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always")
        assert writer.recent_lines(0) == []
        writer.close()


class TestPrunedPast:
    def test_reader_behind_pruned_segments_gets_gap(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always",
                               segment_max_bytes=120)
        append_n(writer, 12)
        writer.prune(10)
        assert len([name for name in os.listdir(tmp_path)
                    if name.startswith("wal-")]) >= 1
        with pytest.raises(JournalTailGap):
            JournalTailReader(str(tmp_path)).poll()

    def test_reader_at_pruned_boundary_continues(self, tmp_path):
        writer = JournalWriter(str(tmp_path), fsync="always",
                               segment_max_bytes=120)
        append_n(writer, 12)
        writer.prune(10)
        remaining_first = min(
            int(name[4:-6]) for name in os.listdir(tmp_path)
            if name.startswith("wal-"))
        reader = JournalTailReader(str(tmp_path),
                                   after_seq=remaining_first - 1)
        assert polled(reader)[-1] == 12
        writer.close()
