"""RetryPolicy: the shared backoff/jitter schedule and its client twin.

Satellite of the fleet PR: the exponential-backoff + seeded-jitter
logic that lived inline in :class:`SessionClient` is now
:class:`repro.session.retry.RetryPolicy`, reused by the router's
worker links.  These tests pin the extracted behaviour to the original
client formula so the refactor cannot drift.
"""

import random

import pytest

from repro.session.retry import RetryPolicy


class TestSchedule:
    def test_base_delay_doubles_then_caps(self):
        policy = RetryPolicy(retries=8, backoff=0.05, backoff_max=0.4)
        bases = [policy.base_delay(attempt) for attempt in range(1, 7)]
        assert bases == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_delay_matches_the_original_client_formula(self):
        """delay = min(backoff * 2**(n-1), cap) * (0.5 + random())."""
        seed = 42
        policy = RetryPolicy(retries=5, backoff=0.05, backoff_max=2.0,
                             seed=seed)
        rng = random.Random(seed)
        for attempt in range(1, 6):
            expected = min(0.05 * (2 ** (attempt - 1)), 2.0) \
                * (0.5 + rng.random())
            assert policy.delay(attempt) == pytest.approx(expected)

    def test_jitter_stays_within_half_to_three_halves(self):
        policy = RetryPolicy(retries=50, backoff=0.1, backoff_max=10.0,
                             seed=7)
        for attempt in range(1, 50):
            base = policy.base_delay(attempt)
            assert 0.5 * base <= policy.delay(attempt) < 1.5 * base

    def test_seeded_policies_reproduce_exactly(self):
        a = RetryPolicy(retries=6, backoff=0.05, seed=9)
        b = RetryPolicy(retries=6, backoff=0.05, seed=9)
        assert list(a.delays()) == list(b.delays())

    def test_different_seeds_differ(self):
        a = RetryPolicy(retries=6, backoff=0.05, seed=1)
        b = RetryPolicy(retries=6, backoff=0.05, seed=2)
        assert list(a.delays()) != list(b.delays())

    def test_delays_generator_is_one_per_retry(self):
        policy = RetryPolicy(retries=4, backoff=0.01, seed=0)
        assert len(list(policy.delays())) == 4


class TestExhaustion:
    def test_zero_retries_is_exhausted_immediately(self):
        policy = RetryPolicy(retries=0)
        assert policy.exhausted(0)

    def test_exhausted_after_n_attempts(self):
        policy = RetryPolicy(retries=3)
        assert not policy.exhausted(0)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert policy.exhausted(4)

    def test_sleep_consumes_the_schedule(self):
        policy = RetryPolicy(retries=2, backoff=0.0001, seed=3)
        policy.sleep(1)  # must not raise, must return promptly
        assert policy.base_delay(1) == pytest.approx(0.0001)


class TestClientIntegration:
    @pytest.fixture()
    def listener(self):
        """A silent TCP listener so SessionClient's eager connect has
        somewhere to land — these tests never exchange frames."""
        import socket

        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        sock.listen(8)
        yield sock.getsockname()
        sock.close()

    def test_client_owns_a_policy_with_its_knobs(self, listener):
        from repro.session.client import SessionClient

        host, port = listener
        with SessionClient(host, port, retries=7, backoff=0.3,
                           backoff_max=4.0, retry_seed=11) as client:
            assert isinstance(client.retry, RetryPolicy)
            assert client.retries == 7
            assert client.backoff == 0.3
            assert client.backoff_max == 4.0

    def test_client_knobs_stay_writable(self, listener):
        """test_server_batch mutates ``client.retries`` mid-test; the
        delegating properties must keep that working."""
        from repro.session.client import SessionClient

        host, port = listener
        with SessionClient(host, port) as client:
            client.retries = 2
            client.backoff = 0.5
            client.backoff_max = 1.5
            assert client.retry.retries == 2
            assert client.retry.backoff == 0.5
            assert client.retry.backoff_max == 1.5

    def test_client_and_bare_policy_agree(self, listener):
        from repro.session.client import SessionClient

        host, port = listener
        with SessionClient(host, port, retries=3, backoff=0.05,
                           retry_seed=5) as client:
            twin = RetryPolicy(retries=3, backoff=0.05, seed=5)
            assert [client.retry.delay(n) for n in range(1, 4)] \
                == [twin.delay(n) for n in range(1, 4)]
