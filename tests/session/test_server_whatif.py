"""The what-if / what-if-commit wire commands: computation spaces
over the session protocol — previews journal nothing, commits land as
one batch frame with rid-keyed exactly-once retry."""

import os
import re
import shutil
import subprocess
import sys
import tempfile

import pytest

from repro.session.client import ServerError, SessionClient


@pytest.fixture(scope="module")
def server():
    root = tempfile.mkdtemp(prefix="repro-server-whatif-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", root,
         "--fsync", "never"],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected server banner: {line!r}"
    yield match.group(1), int(match.group(2))
    proc.terminate()
    proc.wait(timeout=10)
    shutil.rmtree(root, ignore_errors=True)


def client_of(server):
    host, port = server
    return SessionClient(host, port)


def bounded_session(client, name):
    handle = client.session(name)
    handle.make_var("x")
    handle.make_var("y")
    handle.add_constraint("equality", ["v:x", "v:y"])
    handle.add_constraint("upper-bound", ["v:x"], params={"bound": 10})
    return handle


class TestWhatIf:
    def test_preview_reports_outcome_and_changes_nothing(self, server):
        with client_of(server) as client:
            handle = bounded_session(client, "wi-preview")
            fingerprint = client.call("fingerprint", session="wi-preview")
            before = client.call("stats", session="wi-preview")
            result = handle.what_if([("v:x", 5), ("v:y", 99)])
            assert [(entry["var"], entry["accepted"], entry["value"])
                    for entry in result["entries"]] == \
                   [("v:x", True, 5), ("v:y", False, 5)]
            assert result["violations"] == 1
            assert result["position"] == before["position"]
            # The live session is untouched: values, stats, position.
            assert handle.value("v:x") is None
            after = client.call("stats", session="wi-preview")
            assert after == before
            assert client.call("fingerprint",
                               session="wi-preview") == fingerprint

    def test_preview_shows_propagated_consequences(self, server):
        with client_of(server) as client:
            handle = bounded_session(client, "wi-propagate")
            result = handle.what_if([("v:x", 5)])
            # Inside the space x=5 propagated into y; the echo shows the
            # value as seen in the space.
            assert result["entries"][0]["value"] == 5
            assert handle.value("v:y") is None


class TestWhatIfCommit:
    def test_accepted_entries_commit_as_one_batch(self, server):
        with client_of(server) as client:
            handle = bounded_session(client, "wic-basic")
            before = client.call("stats", session="wic-basic")
            result = handle.what_if_commit([("v:x", 5)])
            assert result["accepted"] is True
            assert result["committed"] == 1
            assert result["position"] == before["position"] + 1  # ONE frame
            assert handle.value("v:x") == 5
            assert handle.value("v:y") == 5

    def test_rejected_entries_dropped_not_fatal(self, server):
        """Unlike assign-many, a violating entry prunes itself instead
        of aborting the whole batch."""
        with client_of(server) as client:
            handle = bounded_session(client, "wic-drop")
            result = handle.what_if_commit([("v:x", 99), ("v:x", 7)])
            assert result["accepted"] is True
            assert result["committed"] == 1
            flags = [entry["accepted"] for entry in result["entries"]]
            assert flags == [False, True]
            assert handle.value("v:x") == 7

    def test_all_rejected_commits_nothing(self, server):
        with client_of(server) as client:
            handle = bounded_session(client, "wic-empty")
            before = client.call("stats", session="wic-empty")
            result = handle.what_if_commit([("v:x", 99)])
            assert result["accepted"] is True
            assert result["committed"] == 0
            assert result["position"] == before["position"]  # no frame
            assert handle.value("v:x") is None

    def test_retry_with_same_rid_applies_once(self, server):
        with client_of(server) as client:
            handle = bounded_session(client, "wic-rid")
            entries = [{"var": "v:x", "value": 7}]
            rid = f"{client.client_id}:wic-dedup"
            first = client.call("what-if-commit", session="wic-rid",
                                entries=entries, rid=rid)
            before = client.call("stats", session="wic-rid")
            replay = client.call("what-if-commit", session="wic-rid",
                                 entries=entries, rid=rid)
            after = client.call("stats", session="wic-rid")
            assert replay == first
            assert after["stats"]["rounds"] == before["stats"]["rounds"]
            assert after["position"] == before["position"]

    def test_bad_request_frames(self, server):
        with client_of(server) as client:
            client.session("wic-bad")
            for payload in ("not-a-list", [{"value": 1}]):
                with pytest.raises(ServerError) as info:
                    client.call("what-if-commit", session="wic-bad",
                                entries=payload)
                assert info.value.kind == "bad-request"


class TestStatsFrame:
    def test_stats_sorted_and_carry_batch_and_plan_counters(self, server):
        """Issue 7 satellite: the stats frame includes the PR 6 batch
        counter and the plan counters, keys deterministically sorted."""
        with client_of(server) as client:
            handle = client.session("wi-stats")
            handle.make_var("x")
            handle.assign_many([("v:x", 1), ("v:x", 2)])
            stats = client.call("stats", session="wi-stats")["stats"]
            assert list(stats) == sorted(stats)
            assert stats["coalesced_assignments"] == 1
            for key in ("plan_hits", "plan_chain_hits", "plan_deopts"):
                assert key in stats
