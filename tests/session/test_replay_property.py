"""Property: replaying the journal always reproduces the live session.

Random interleavings of assign / retract / add-constraint /
remove-constraint / undo / redo on a small variable network — after any
such history, a read-only recovery of the journal must produce the
*identical* fingerprint: every value, every justification, the violation
log, and the engine's full propagation statistics (ISSUE 3 acceptance:
deterministic replay).
"""

import shutil
import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.session import Session, SessionError, UnknownAddress

N_VARS = 5
VAR_NAMES = [f"n{i}" for i in range(N_VARS)]

var_index = st.integers(min_value=0, max_value=N_VARS - 1)
small_value = st.integers(min_value=-20, max_value=20)

op = st.one_of(
    st.tuples(st.just("assign"), var_index, small_value),
    st.tuples(st.just("retract"), var_index),
    st.tuples(st.just("add-sum"), var_index, var_index, var_index),
    st.tuples(st.just("add-eq"), var_index, var_index),
    st.tuples(st.just("add-ub"), var_index, small_value),
    st.tuples(st.just("remove"), st.integers(min_value=0, max_value=7)),
    st.tuples(st.just("undo")),
    st.tuples(st.just("redo")),
    st.tuples(st.just("checkpoint")),
)


def apply_op(session, operation):
    """Apply one random operation; invalid ones are skipped (they never
    reach the journal, so live and replay agree on the history)."""
    try:
        _apply_op(session, operation)
    except (SessionError, UnknownAddress):
        # e.g. retracting a variable whose make-var was undone — the
        # session validates and raises *before* journaling anything
        pass


def _apply_op(session, operation):
    kind = operation[0]
    if kind == "assign":
        session.assign(f"v:{VAR_NAMES[operation[1]]}", operation[2])
    elif kind == "retract":
        session.retract(f"v:{VAR_NAMES[operation[1]]}")
    elif kind == "add-sum":
        result, a, b = operation[1:]
        if len({result, a, b}) == 3:
            session.add_constraint("sum", [f"v:{VAR_NAMES[result]}",
                                           f"v:{VAR_NAMES[a]}",
                                           f"v:{VAR_NAMES[b]}"])
    elif kind == "add-eq":
        a, b = operation[1:]
        if a != b:
            session.add_constraint("equality", [f"v:{VAR_NAMES[a]}",
                                                f"v:{VAR_NAMES[b]}"])
    elif kind == "add-ub":
        session.add_constraint("upper-bound",
                               [f"v:{VAR_NAMES[operation[1]]}"],
                               params={"bound": operation[2]})
    elif kind == "remove":
        cids = sorted(session.constraints)
        if cids:
            session.remove_constraint(cids[operation[1] % len(cids)])
    elif kind == "undo":
        session.undo()
    elif kind == "redo":
        session.redo()
    elif kind == "checkpoint":
        session.checkpoint()


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=st.lists(op, max_size=25))
def test_replay_reproduces_live_fingerprint(operations):
    directory = tempfile.mkdtemp(prefix="repro-replay-prop-")
    try:
        with Session("prop", directory=directory, fsync="never") as live:
            for name in VAR_NAMES:
                live.make_variable(name)
            for operation in operations:
                apply_op(live, operation)
            expected = live.fingerprint()  # values + justs + violations
            #                               + full stats counters
        with Session("prop", directory=directory,
                     read_only=True) as replayed:
            assert replayed.fingerprint() == expected
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=st.lists(op, max_size=20),
       split=st.integers(min_value=1, max_value=19))
def test_recovery_after_checkpoint_matches_uninterrupted_run(operations,
                                                             split):
    """Close mid-history and recover — the continued run must equal the
    same history executed without the interruption."""
    directory_a = tempfile.mkdtemp(prefix="repro-replay-a-")
    directory_b = tempfile.mkdtemp(prefix="repro-replay-b-")
    head, tail = operations[:split], operations[split:]
    try:
        # interrupted: head, close (simulated stop), recover, tail
        with Session("p", directory=directory_a, fsync="never") as first:
            for name in VAR_NAMES:
                first.make_variable(name)
            for operation in head:
                apply_op(first, operation)
        with Session("p", directory=directory_a, fsync="never") as second:
            for operation in tail:
                apply_op(second, operation)
            interrupted = second.fingerprint(include_stats=False)
        # uninterrupted reference
        with Session("p", directory=directory_b, fsync="never") as ref:
            for name in VAR_NAMES:
                ref.make_variable(name)
            for operation in operations:
                apply_op(ref, operation)
            reference = ref.fingerprint(include_stats=False)
        assert interrupted == reference
    finally:
        shutil.rmtree(directory_a, ignore_errors=True)
        shutil.rmtree(directory_b, ignore_errors=True)
