"""Reusable cross-backend fault-matrix harness.

The byte-exhaustive crash scenarios of ``test_fault_matrix.py`` —
simulated ``kill -9`` at every byte of an append or checkpoint write,
ENOSPC, fsync failure, crashes around the atomic publish — expressed
once, parameterized by storage backend.  ``test_fault_matrix.py`` runs
them against the ``file`` backend (through the real
:class:`~repro.faults.FaultOpener`); ``tests/store/test_backend_matrix``
runs the same scenarios against ``sqlite`` and ``object`` (through each
backend's :class:`~repro.store.base.StoreGate`).

The invariant everywhere: recovery lands fingerprint-identical to the
last *committed* (acknowledged) state, never a hybrid — whichever
backend holds the bytes.
"""

import os
import shutil

import pytest

from repro.faults import CrashPoint, FaultOpener, FaultPlan
from repro.session import JournalDegraded, Session

SESSION_NAME = "matrix"


class Opened:
    """A live session plus the fault controller that gates its I/O."""

    def __init__(self, session, controller, root_store=None):
        self.session = session
        self.controller = controller
        self._root_store = root_store

    @property
    def crashed(self):
        return bool(self.controller is not None and self.controller.crashed)

    def close(self):
        self.session.close()
        if self._root_store is not None:
            self._root_store.close()


class MatrixBackend:
    """One storage backend under the matrix: open, measure, clone."""

    name = "?"

    def open_session(self, root, *, plan=None, read_only=False, **kw):
        raise NotImplementedError

    def _store(self, root):
        """A fresh, fault-free session store over ``root``'s bytes."""
        raise NotImplementedError

    def journal_bytes(self, root):
        store = self._store(root)
        return sum(store.segment_size(key)
                   for _first, key in store.segments())

    def checkpoint_size(self, root):
        store = self._store(root)
        checkpoints = store.checkpoints()
        assert checkpoints, f"no checkpoint in {root}"
        return len(store.read_checkpoint(checkpoints[-1][1]))

    def checkpoint_count(self, root):
        return len(self._store(root).checkpoints())

    def tmp_residue(self, root):
        raise NotImplementedError

    def clone(self, root, dst):
        """Copy the durable bytes — a crash image of ``root``."""
        shutil.copytree(str(root), str(dst))


class FileBackend(MatrixBackend):
    """The original layout, driven through the real FaultOpener."""

    name = "file"

    def open_session(self, root, *, plan=None, read_only=False, **kw):
        opener = FaultOpener(plan) if plan is not None else None
        session = Session(SESSION_NAME, directory=str(root),
                          opener=opener, read_only=read_only, **kw)
        return Opened(session, opener)

    def _store(self, root):
        from repro.store import FileSessionStore
        return FileSessionStore(str(root))

    def tmp_residue(self, root):
        return sum(1 for name in os.listdir(str(root))
                   if name.endswith(".tmp"))


class SqliteBackend(MatrixBackend):
    name = "sqlite"

    def _db(self, root):
        return os.path.join(str(root), "sessions.db")

    def open_session(self, root, *, plan=None, read_only=False, **kw):
        from repro.store import SqliteStore
        store = SqliteStore(self._db(root), plan=plan)
        session = Session(SESSION_NAME,
                          store=store.session(SESSION_NAME),
                          read_only=read_only, **kw)
        return Opened(session, store.gate, root_store=store)

    def _store(self, root):
        from repro.store import SqliteStore
        return SqliteStore(self._db(root)).session(SESSION_NAME)

    def tmp_residue(self, root):
        return self._store(root).tmp_residue()


class ObjectBackend(MatrixBackend):
    name = "object"

    def open_session(self, root, *, plan=None, read_only=False, **kw):
        from repro.store import ObjectStore
        store = ObjectStore(str(root), plan=plan)
        session = Session(SESSION_NAME,
                          store=store.session(SESSION_NAME),
                          read_only=read_only, **kw)
        return Opened(session, store.gate, root_store=store)

    def _store(self, root):
        from repro.store import ObjectStore
        return ObjectStore(str(root)).session(SESSION_NAME)

    def tmp_residue(self, root):
        return self._store(root).tmp_residue()


FILE = FileBackend()
SQLITE = SqliteBackend()
OBJECT = ObjectBackend()
ALL_BACKENDS = (FILE, SQLITE, OBJECT)


# -- building blocks ---------------------------------------------------------

def build(backend, root, plan=None):
    """The standard small design: three vars and a sum constraint."""
    opened = backend.open_session(root, plan=plan)
    session = opened.session
    session.make_variable("x")
    session.make_variable("y")
    session.make_variable("total")
    session.add_constraint("sum", ["v:total", "v:x", "v:y"])
    session.assign("v:x", 3)
    session.assign("v:y", 4)
    return opened


def recovered_fingerprint(backend, root):
    """What a healthy process sees after recovering ``root``."""
    opened = backend.open_session(root, read_only=True)
    try:
        return opened.session.fingerprint(include_stats=False)
    finally:
        opened.close()


def journal_growth(backend, root, op):
    """Journal bytes before ``op`` and the bytes it appends (pilot run)."""
    opened = build(backend, root)
    before = backend.journal_bytes(root)
    op(opened.session)
    after = backend.journal_bytes(root)
    opened.close()
    return before, after - before


def _sweep_points(size, stride):
    """Byte offsets to test: every ``stride``-th plus both edges and
    the off-by-one boundaries (always including ``size`` itself)."""
    if stride <= 1:
        return list(range(size + 1))
    points = set(range(0, size + 1, stride))
    points.update((0, 1, max(size - 1, 0), size))
    return sorted(points)


# -- scenarios ---------------------------------------------------------------

def scenario_journal_tear_matrix(backend, tmp_path, stride=1):
    """Tear the final ``assign`` at byte k for every k.

    k < line length: the entry was never acknowledged — recovery
    truncates the torn tail and lands on the committed prefix.
    k == line length: the entry is whole — recovery keeps it.
    """
    base, line_len = journal_growth(backend, tmp_path / "pilot",
                                    lambda s: s.assign("v:x", 55))
    assert line_len > 0

    committed = build(backend, tmp_path / "committed")
    fp_committed = committed.session.fingerprint(include_stats=False)
    committed.close()
    final = build(backend, tmp_path / "final")
    final.session.assign("v:x", 55)
    fp_final = final.session.fingerprint(include_stats=False)
    final.close()

    for k in _sweep_points(line_len, stride):
        root = tmp_path / f"tear-{k}"
        plan = FaultPlan()
        plan.torn_write("*wal-*", at_byte=base + k)
        opened = build(backend, root, plan=plan)
        if k < line_len:
            with pytest.raises(CrashPoint):
                opened.session.assign("v:x", 55)
            assert opened.crashed
            expected = fp_committed
        else:
            # The tear point sits exactly past the line: the append
            # survives whole and no fault fires.
            opened.session.assign("v:x", 55)
            opened.close()
            expected = fp_final
        assert recovered_fingerprint(backend, root) == expected, \
            f"[{backend.name}] tear at byte {k}/{line_len} recovered " \
            f"a hybrid state"


def scenario_checkpoint_tear_matrix(backend, tmp_path, stride=1):
    """A checkpoint torn at any byte must be invisible to recovery."""
    template = tmp_path / "template"
    build(backend, template).close()

    # Expected state: the same root checkpointed successfully.
    clean = tmp_path / "clean"
    backend.clone(template, clean)
    opened = backend.open_session(clean)
    opened.session.checkpoint()
    expected = opened.session.fingerprint(include_stats=False)
    opened.close()
    assert backend.checkpoint_count(clean) == 1
    size = backend.checkpoint_size(clean)

    for k in _sweep_points(size, stride):
        root = tmp_path / f"ckpt-{k}"
        backend.clone(template, root)
        plan = FaultPlan()
        plan.torn_write("*.tmp", at_byte=k)
        opened = backend.open_session(root, plan=plan)
        if k < size:
            with pytest.raises(CrashPoint):
                opened.session.checkpoint()
        else:
            opened.session.checkpoint()  # boundary past the file: no fault
            opened.close()
        assert recovered_fingerprint(backend, root) == expected, \
            f"[{backend.name}] checkpoint torn at byte {k}/{size} " \
            f"corrupted recovery"


def scenario_checkpoint_rename_crash(backend, tmp_path, window):
    """Crash immediately before/after the atomic checkpoint publish."""
    template = tmp_path / "template"
    build(backend, template).close()
    clean = tmp_path / "clean"
    backend.clone(template, clean)
    opened = backend.open_session(clean)
    opened.session.checkpoint()
    expected = opened.session.fingerprint(include_stats=False)
    opened.close()

    root = tmp_path / window
    backend.clone(template, root)
    plan = FaultPlan()
    plan.crash_on(window, "*ckpt-*")
    opened = backend.open_session(root, plan=plan)
    with pytest.raises(CrashPoint):
        opened.session.checkpoint()
    assert recovered_fingerprint(backend, root) == expected


def scenario_checkpoint_enospc(backend, tmp_path):
    """A non-fatal disk error during checkpoint: the old state stays
    recoverable, staged residue is cleaned up, the session goes on."""
    plan = FaultPlan()
    plan.enospc("write", pattern="*.tmp", persistent=False)
    opened = build(backend, tmp_path, plan=plan)
    session = opened.session
    fp_before = session.fingerprint(include_stats=False)
    with pytest.raises(OSError):
        session.checkpoint()
    assert backend.tmp_residue(tmp_path) == 0
    # The session keeps working — and can checkpoint once space is back.
    session.assign("v:x", 6)
    assert session.checkpoint() is not None
    opened.close()
    recovered = recovered_fingerprint(backend, tmp_path)
    assert recovered["variables"]["v:x"]["value"] == 6
    assert recovered["position"] > fp_before["position"]


def scenario_degraded_enospc(backend, tmp_path):
    """Persistent ENOSPC on the journal: degraded read-only mode."""
    plan = FaultPlan()
    opened = build(backend, tmp_path, plan=plan)
    session = opened.session
    fp_committed = session.fingerprint(include_stats=False)
    plan.enospc("write", pattern="*wal-*")  # persistent from now on

    with pytest.raises(JournalDegraded):
        session.assign("v:x", 99)
    assert session.degraded
    # The failed mutation never applied (write-ahead discipline).
    assert session.get("v:x")[0] == 3
    # Mutations stay refused; reads and fingerprints keep working.
    with pytest.raises(JournalDegraded):
        session.assign("v:y", 1)
    with pytest.raises(JournalDegraded):
        session.make_variable("z")
    assert session.fingerprint(include_stats=False) == fp_committed
    # A healthy process recovers the committed state exactly.
    assert recovered_fingerprint(backend, tmp_path) == fp_committed


def scenario_degraded_fsync(backend, tmp_path):
    """A failing fsync degrades the session and rolls the line back."""
    plan = FaultPlan()
    opened = build(backend, tmp_path, plan=plan)
    session = opened.session
    fp_committed = session.fingerprint(include_stats=False)
    size_committed = backend.journal_bytes(tmp_path)
    plan.fail_fsync("*wal-*", persistent=True)

    with pytest.raises(JournalDegraded):
        session.assign("v:x", 99)
    assert session.degraded
    # The un-acknowledged line was rolled back off the segment: the
    # fsync gray zone must not leave bytes a recovery would trust.
    assert backend.journal_bytes(tmp_path) == size_committed
    assert recovered_fingerprint(backend, tmp_path) == fp_committed


def scenario_torn_write_error_rollback(backend, tmp_path):
    """A torn write surfacing as an error (not a crash) rolls the
    partial line back before the session degrades."""
    base, line_len = journal_growth(backend, tmp_path / "pilot",
                                    lambda s: s.assign("v:x", 55))
    plan = FaultPlan()
    plan.torn_write("*wal-*", at_byte=base + line_len // 2, then="error")
    root = tmp_path / "torn"
    opened = build(backend, root, plan=plan)
    session = opened.session
    fp_committed = session.fingerprint(include_stats=False)
    with pytest.raises(JournalDegraded):
        session.assign("v:x", 55)
    assert session.degraded
    assert backend.journal_bytes(root) == base  # partial line truncated
    assert recovered_fingerprint(backend, root) == fp_committed


def scenario_replay_determinism_under_budget(backend, tmp_path):
    """A budget-aborted round must replay identically from the store."""
    from repro.core import RoundBudget

    opened = backend.open_session(tmp_path)
    session = opened.session
    for i in range(12):
        session.make_variable(f"x{i}")
    for i in range(11):
        session.add_constraint("equality", [f"v:x{i}", f"v:x{i + 1}"])
    session.context.round_budget = RoundBudget(max_steps=4)
    assert session.assign("v:x0", 7) is False  # watchdog abort
    assert session.violations[-1]["kind"] == "budget"
    session.context.round_budget = None
    assert session.assign("v:x11", 3) is True
    fp_live = session.fingerprint()  # include stats: the strong claim
    opened.close()

    twin = backend.open_session(tmp_path, read_only=True)
    assert twin.session.fingerprint() == fp_live
    assert twin.session.violations[-1]["kind"] == "budget"
    twin.close()
