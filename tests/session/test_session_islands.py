"""Island-parallel sessions: byte-identity, stats frames, serial spaces.

The durability contract of island-structured batches: turning the
feature on (``island_workers``) changes *nothing observable* — the
journal bytes, the full fingerprint (values, justifications, violation
log, stats) and the replayed recovery state are identical to a session
that drains every batch fused.  The server's ``stats`` frame gains the
island partition counters; speculative spaces keep draining serially.
"""

import pathlib
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.session import Session

VAR_NAMES = ["a", "b", "c", "d"]


@pytest.fixture
def twin_dirs():
    fused = tempfile.mkdtemp(prefix="repro-island-off-")
    island = tempfile.mkdtemp(prefix="repro-island-on-")
    yield fused, island
    shutil.rmtree(fused, ignore_errors=True)
    shutil.rmtree(island, ignore_errors=True)


def make_session(directory, **kwargs):
    session = Session("twin", directory=directory, fsync="never", **kwargs)
    for name in VAR_NAMES:
        session.make_variable(name)
    return session


def journal_bytes(directory):
    return b"".join(
        segment.read_bytes()
        for segment in sorted(pathlib.Path(directory).glob("wal-*.jsonl")))


def drive(session):
    """A workload mixing multi-island batches, violations and undo."""
    session.add_constraint("equality", ["v:a", "v:b"])
    session.add_constraint("upper-bound", ["v:c"], {"bound": 10})
    assert session.assign_many([("v:a", 1), ("v:c", 2), ("v:d", 3)])
    assert not session.assign_many([("v:a", 5), ("v:c", 99)])  # violates
    assert session.assign_many([("v:c", 7), ("v:d", 8)])
    session.undo()
    assert session.assign_many([("v:a", 4), ("v:c", 9), ("v:d", 6)])


class TestByteIdentity:
    @pytest.mark.parametrize("workers", [0, 4])
    def test_journal_fingerprint_and_stats_match_fused_twin(
            self, twin_dirs, workers):
        fused_dir, island_dir = twin_dirs
        with make_session(fused_dir) as fused, \
                make_session(island_dir, island_workers=workers) as island:
            drive(fused)
            drive(island)
            assert island.fingerprint() == fused.fingerprint()
            assert island.violations == fused.violations
            assert island.context.stats.snapshot() \
                == fused.context.stats.snapshot()
        assert journal_bytes(island_dir) == journal_bytes(fused_dir)

    def test_recovery_of_an_island_session_matches_live(self, twin_dirs):
        _, island_dir = twin_dirs
        with make_session(island_dir, island_workers=4) as live:
            drive(live)
            expected = live.fingerprint()
        with Session("twin", directory=island_dir, fsync="never",
                     island_workers=4) as recovered:
            assert recovered.fingerprint() == expected

    @given(batches=st.lists(
        st.lists(st.tuples(st.sampled_from(VAR_NAMES),
                           st.integers(min_value=-20, max_value=20)),
                 min_size=1, max_size=6),
        min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arbitrary_batches_are_twin_identical(self, batches):
        """Parallel-on and parallel-off twins (plan cache on the side)
        produce equal fingerprints for any batch sequence."""
        from repro.core import PlanCache

        with Session("twin") as fused, \
                Session("twin", island_workers=4) as island:
            PlanCache(fused.context)
            PlanCache(island.context)
            for session in (fused, island):
                for name in VAR_NAMES:
                    session.make_variable(name)
                session.add_constraint("equality", ["v:a", "v:b"])
                session.add_constraint("upper-bound", ["v:c"],
                                       {"bound": 10})
            for batch in batches:
                entries = [(f"v:{name}", value) for name, value in batch]
                assert fused.assign_many(entries) \
                    == island.assign_many(entries)
            assert island.fingerprint() == fused.fingerprint()


class TestSpacesStaySerial:
    def test_space_batches_bypass_island_draining(self):
        """A speculative space installs a shadow; island-structured
        draining is gated on shadow-free rounds, so the round *inside*
        the space runs fused.  Only the commit — an ordinary parent
        batch, shadow gone — may island-drain (here: exactly one island
        batch for the two speculative rounds plus the commit)."""
        from repro.obs import Observer

        with Session("spacey", island_workers=4) as session:
            a = session.make_variable("a")
            b = session.make_variable("b")
            with Observer.metrics_only(session.context) as observer:
                with session.space() as space:
                    assert space.assign_many([("v:a", 1), ("v:b", 2)])
                    assert space.assign_many([("v:a", 3), ("v:b", 4)])
                    space.commit()
            snapshot = observer.metrics.snapshot()
            assert snapshot.get("engine.island.batches", 0) == 1
            assert a.value == 3 and b.value == 4


class TestServerFrames:
    def test_stats_frame_reports_island_partition(self, tmp_path):
        import asyncio

        from repro.session.client import SessionClient
        from repro.session.server import SessionServer

        async def run():
            server = SessionServer(str(tmp_path), island_workers=2)
            await server.start()

            def drive_client():
                with SessionClient(server.host, server.port) as client:
                    handle = client.session("s1")
                    a = handle.make_var("a")
                    b = handle.make_var("b")
                    handle.assign_many([(a, 1), (b, 2)])
                    return handle.stats()
            try:
                return await asyncio.to_thread(drive_client)
            finally:
                await server.stop()

        frame = asyncio.run(run())
        stats = frame["stats"]
        assert list(stats) == sorted(stats)
        assert stats["islands"] == 2
        assert stats["largest_island"] == 1
        assert stats["island_merges"] == 0
        assert stats["island_splits"] == 0


class TestMultiModuleIntegration:
    def test_eight_module_hierarchy_batch(self):
        """The tentpole workload shape: one batch touching every module
        of a disjoint-module hierarchy drains island-per-module and is
        value-identical to the fused twin."""
        from repro.core import ScaleOffsetConstraint

        def build(session, modules=8, chain=16):
            heads = []
            tails = []
            for module in range(modules):
                variables = [session.make_variable(f"m{module}v{step}")
                             for step in range(chain)]
                for left, right in zip(variables, variables[1:]):
                    ScaleOffsetConstraint(right, left, offset=1)
                heads.append(variables[0])
                tails.append(variables[-1])
            return heads, tails

        with Session("fused") as fused, \
                Session("island", island_workers=4) as island:
            f_heads, f_tails = build(fused)
            i_heads, i_tails = build(island)
            assert island.context.islands.stats()["islands"] == 8
            f_ok = fused.assign_many(
                [(head, 10 * k) for k, head in enumerate(f_heads)])
            i_ok = island.assign_many(
                [(head, 10 * k) for k, head in enumerate(i_heads)])
            assert f_ok and i_ok
            assert [v.value for v in i_tails] == [v.value for v in f_tails] \
                == [10 * k + 15 for k in range(8)]
            assert island.context.stats.snapshot() \
                == fused.context.stats.snapshot()
