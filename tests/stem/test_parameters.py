"""Tests for parameter dual variables (section 5.1.1)."""

import pytest

from repro.core import USER
from repro.stem.parameters import (
    ClassParameter,
    InstanceParameter,
    ParameterRange,
)


def make_parameter(range_=None, instance_count=1):
    class_parameter = ClassParameter(range_, name="bitWidth")
    instance_parameters = []
    for i in range(instance_count):
        instance_parameter = InstanceParameter(name=f"bitWidth{i}")
        class_parameter.register_instance_var(instance_parameter)
        instance_parameters.append(instance_parameter)
    return class_parameter, instance_parameters


class TestParameterRange:
    def test_bounds(self):
        r = ParameterRange(low=1, high=8)
        assert r.admits(1)
        assert r.admits(8)
        assert not r.admits(0)
        assert not r.admits(9)

    def test_open_bounds(self):
        assert ParameterRange(low=1).admits(10 ** 9)
        assert ParameterRange(high=8).admits(-50)
        assert ParameterRange().admits("anything")

    def test_choices(self):
        r = ParameterRange(choices=["ripple", "carry-select"])
        assert r.admits("ripple")
        assert not r.admits("carry-skip")

    def test_none_always_admitted(self):
        assert ParameterRange(low=1, high=8).admits(None)

    def test_bounds_and_choices_exclusive(self):
        with pytest.raises(ValueError):
            ParameterRange(low=1, choices=[1, 2])

    def test_default_must_be_in_range(self):
        with pytest.raises(ValueError):
            ParameterRange(low=1, high=8, default=99)
        assert ParameterRange(low=1, high=8, default=4).default == 4

    def test_equality(self):
        assert ParameterRange(low=1, high=8) == ParameterRange(low=1, high=8)
        assert ParameterRange(low=1) != ParameterRange(low=2)

    def test_repr(self):
        assert "low=1" in repr(ParameterRange(low=1, high=8))
        assert "choices" in repr(ParameterRange(choices=[1]))


class TestInstanceChecking:
    def test_value_in_range_accepted(self):
        _, (instance,) = make_parameter(ParameterRange(low=1, high=8))
        assert instance.set(4)

    def test_value_out_of_range_rejected(self):
        _, (instance,) = make_parameter(ParameterRange(low=1, high=8))
        assert not instance.set(9)
        assert instance.value is None

    def test_no_range_accepts_anything(self):
        _, (instance,) = make_parameter(None)
        assert instance.set(10 ** 6)


class TestRangeChanges:
    def test_narrowing_range_checks_existing_values(self):
        class_parameter, (instance,) = make_parameter(ParameterRange(low=1, high=16))
        instance.set(12)
        assert not class_parameter.set(ParameterRange(low=1, high=8))
        assert class_parameter.range == ParameterRange(low=1, high=16)

    def test_widening_range_accepted(self):
        class_parameter, (instance,) = make_parameter(ParameterRange(low=1, high=8))
        instance.set(4)
        assert class_parameter.set(ParameterRange(low=1, high=32))

    def test_range_change_checks_every_instance(self):
        class_parameter, instances = make_parameter(
            ParameterRange(low=1, high=16), instance_count=3)
        instances[2].set(10)
        assert not class_parameter.set(ParameterRange(low=1, high=8))


class TestDefaultPropagation:
    def test_default_flows_into_empty_instances(self):
        class_parameter, (instance,) = make_parameter()
        class_parameter.set(ParameterRange(low=1, high=8, default=4))
        assert instance.value == 4

    def test_default_does_not_overwrite_existing_value(self):
        class_parameter, (instance,) = make_parameter(ParameterRange(low=1, high=8))
        instance.set(2)
        class_parameter.set(ParameterRange(low=1, high=8, default=4))
        assert instance.value == 2

    def test_no_propagation_of_non_default_values(self):
        class_parameter, (instance,) = make_parameter()
        class_parameter.set(ParameterRange(low=1, high=8))
        assert instance.value is None
