"""serialize→load→serialize is a fixed point.

The strongest persistence property: one round trip loses nothing, so the
second serialization is byte-for-byte the first.  The fixture library
exercises every branch of the format — delays with USER and APPLICATION
justifications, parameter ranges (bounds, choices, and a *narrowed
inherited* range, the field a loader that skips inherited names drops),
nets with io and subcell endpoints, instance parameter values, and a
multi-level inheritance forest.
"""

import json

import pytest

from repro.core import APPLICATION, USER, reset_default_context
from repro.stem import ParameterRange, PinSpec, Point, Rect, Transform
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, load_library, loads, serialize_library
from repro.stem.types import DIGITAL, INTEGER_SIGNAL


def build_exercised_library(context):
    """A library touching every persisted field at least once."""
    library = CellLibrary("exercised", context=context)

    gate = library.define("GATE", is_generic=True, documentation="base")
    gate.define_signal("a", "in", data_type=INTEGER_SIGNAL,
                       electrical_type=DIGITAL, bit_width=4,
                       pins=[PinSpec("left", 0.5)])
    # z carries the same bit width as a *at definition time*: clones and
    # net-equality propagation then agree, keeping the serialized form
    # independent of when subclasses were cut (derived bit widths settled
    # after a clone are in-memory propagation state, not persisted data).
    gate.define_signal("z", "out", bit_width=4, output_resistance=100.0,
                       max_load_capacitance=3e-12, max_fanout=6)
    gate.add_parameter("w", low=1, high=10, default=2)
    gate.declare_delay("a", "z", estimate=5.0)               # USER
    gate.set_bounding_box(Rect.of_extent(8, 4))

    inv = library.define("INV", gate)
    inv.define_signal("en", "in", load_capacitance=0.5)
    inv.add_parameter("speed", choices=["fast", "slow"], default="slow")
    inv.declare_delay("en", "z", estimate=3.0,
                      justification=APPLICATION)             # estimate
    inv.delay_var("a", "z").set(4.0)                         # diverged delay
    # Narrowed inherited range — the subclass's own class-parameter
    # variable diverges from GATE's.
    inv.var("w").set(ParameterRange(low=2, high=6, default=4), USER)

    fast_inv = library.define("INV.FAST", inv)               # forest depth 3

    top = library.define("TOP")
    top.define_signal("in1", "in")
    top.define_signal("out1", "out")
    u1 = inv.instantiate(top, "u1", Transform("R90", Point(3, 4)))
    u2 = fast_inv.instantiate(top, "u2")
    u1.set_parameter("w", 5)
    n0 = top.add_net("n0"); n0.connect_io("in1"); n0.connect(u1, "a")
    n1 = top.add_net("n1"); n1.connect(u1, "z"); n1.connect(u2, "a")
    n2 = top.add_net("n2"); n2.connect(u2, "z"); n2.connect_io("out1")
    return library


def round_trip(data):
    return serialize_library(load_library(data,
                                          context=reset_default_context()))


class TestFixedPoint:
    def test_serialize_load_serialize_is_identity(self):
        first = serialize_library(
            build_exercised_library(reset_default_context()))
        second = round_trip(first)
        assert second == first

    def test_fixed_point_holds_through_json_text(self):
        library = build_exercised_library(reset_default_context())
        text = dumps(library, sort_keys=True)
        reloaded = loads(text, context=reset_default_context())
        assert dumps(reloaded, sort_keys=True) == text

    def test_second_round_trip_is_also_stable(self):
        first = serialize_library(
            build_exercised_library(reset_default_context()))
        second = round_trip(first)
        third = round_trip(second)
        assert third == second == first


class TestRepairedFields:
    """The specific fields a naive loader loses, pinned individually."""

    @pytest.fixture()
    def restored(self):
        library = build_exercised_library(reset_default_context())
        return load_library(serialize_library(library),
                            context=reset_default_context())

    def test_narrowed_inherited_parameter_range_survives(self, restored):
        inv = restored.cell("INV")
        assert inv.var("w").range == ParameterRange(low=2, high=6, default=4)
        # and the base class keeps its wide range
        gate = restored.cell("GATE")
        assert gate.var("w").range == ParameterRange(low=1, high=10,
                                                     default=2)

    def test_narrowed_range_still_checks_after_reload(self, restored):
        inv = restored.cell("INV")
        assert not inv.parameters["w"].admits(9)   # outside 2..6
        assert inv.parameters["w"].admits(5)

    def test_narrowed_default_flows_to_new_instances(self, restored):
        top = restored.cell("TOP")
        extra = restored.cell("INV").instantiate(top, "u3")
        assert extra.parameter_value("w") == 4     # INV's default, not GATE's

    def test_parameter_justification_survives(self, restored):
        inv = restored.cell("INV")
        assert inv.var("w").last_set_by.name == "USER"

    def test_delay_justifications_survive(self, restored):
        inv = restored.cell("INV")
        assert inv.delay_var("en", "z").last_set_by.name == "APPLICATION"
        assert inv.delay_var("a", "z").value == 4.0

    def test_choice_parameter_survives(self, restored):
        speed = restored.cell("INV").var("speed").range
        assert speed.choices == ("fast", "slow")
        assert speed.default == "slow"

    def test_inheritance_forest_shape(self, restored):
        assert restored.cell("INV").superclass is restored.cell("GATE")
        assert restored.cell("INV.FAST").superclass is restored.cell("INV")

    def test_nets_and_instance_parameters(self, restored):
        top = restored.cell("TOP")
        u1 = next(i for i in top.subcells if i.name == "u1")
        assert u1.parameter_value("w") == 5
        assert (None, "in1") in top.net("n0").endpoints
        assert (u1, "z") in top.net("n1").endpoints
