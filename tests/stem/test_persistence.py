"""Tests for design persistence (save/load round-trips)."""

import pytest

from repro.core import USER, UpperBoundConstraint, reset_default_context
from repro.spice import inverter, resistor
from repro.stem import CellClass, ParameterRange, PinSpec, Point, Rect, Transform
from repro.stem.library import CellLibrary
from repro.stem.persistence import (
    PersistenceError,
    dumps,
    load_library,
    loads,
    serialize_cell,
    serialize_library,
)
from repro.stem.types import DIGITAL, INTEGER_SIGNAL


def build_library():
    library = CellLibrary("demo")
    adder = library.define("ADDER", is_generic=True, documentation="generic")
    adder.define_signal("a", "in", data_type=INTEGER_SIGNAL,
                        electrical_type=DIGITAL, bit_width=8,
                        load_capacitance=1.5,
                        pins=[PinSpec("left", 0.25)])
    adder.define_signal("s", "out", output_resistance=2.0)
    adder.add_parameter("width", low=1, high=64, default=8)
    adder.declare_delay("a", "s", estimate=100.0)
    adder.set_bounding_box(Rect.of_extent(4, 2))

    rc = library.define("ADDER.RC", adder)
    rc.delay_var("a", "s").set(120.0)

    top = library.define("TOP")
    top.define_signal("in1", "in")
    top.define_signal("out1", "out")
    instance = rc.instantiate(top, "A1", Transform("R90", Point(3, 4)))
    instance.set_parameter("width", 16)
    n0 = top.add_net("n0"); n0.connect_io("in1"); n0.connect(instance, "a")
    n1 = top.add_net("n1"); n1.connect(instance, "s"); n1.connect_io("out1")
    return library


class TestSerialization:
    def test_cell_encoding_fields(self):
        library = build_library()
        data = serialize_cell(library.cell("ADDER"))
        assert data["name"] == "ADDER"
        assert data["is_generic"]
        signal = next(s for s in data["signals"] if s["name"] == "a")
        assert signal["data_type"] == "IntegerSignal"
        assert signal["bit_width"]["value"] == 8
        assert data["delays"][0]["value"]["value"] == 100.0

    def test_library_orders_dependencies_first(self):
        library = build_library()
        data = serialize_library(library)
        names = [cell["name"] for cell in data["cells"]]
        assert names.index("ADDER") < names.index("ADDER.RC")
        assert names.index("ADDER.RC") < names.index("TOP")

    def test_json_round_trip_text(self):
        library = build_library()
        text = dumps(library)
        assert '"ADDER.RC"' in text


class TestRoundTrip:
    def reload(self):
        library = build_library()
        return library, loads(dumps(library),
                              context=reset_default_context())

    def test_interface_restored(self):
        original, restored = self.reload()
        adder = restored.cell("ADDER")
        assert adder.signal("a").data_type_var.value is INTEGER_SIGNAL
        assert adder.signal("a").bit_width_var.value == 8
        assert adder.signal("a").load_capacitance == 1.5
        assert adder.signal("a").pins == [PinSpec("left", 0.25)]

    def test_characteristics_restored(self):
        original, restored = self.reload()
        assert restored.cell("ADDER").delay_var("a", "s").value == 100.0
        assert restored.cell("ADDER.RC").delay_var("a", "s").value == 120.0
        assert restored.cell("ADDER").bounding_box() == Rect.of_extent(4, 2)

    def test_inheritance_restored(self):
        original, restored = self.reload()
        rc = restored.cell("ADDER.RC")
        assert rc.superclass is restored.cell("ADDER")
        assert not rc.is_generic

    def test_structure_restored(self):
        original, restored = self.reload()
        top = restored.cell("TOP")
        assert len(top.subcells) == 1
        instance = top.subcells[0]
        assert instance.cell_class is restored.cell("ADDER.RC")
        assert instance.transform == Transform("R90", Point(3, 4))
        assert instance.parameter_value("width") == 16
        assert len(top.nets) == 2
        net = top.net("n0")
        assert (None, "in1") in net.endpoints
        assert (instance, "a") in net.endpoints

    def test_constraints_live_after_reload(self):
        """Reloaded designs check edits as usual."""
        original, restored = self.reload()
        rc = restored.cell("ADDER.RC")  # the TOP instance's class
        assert not rc.var("width").set(ParameterRange(low=1, high=8))
        # (the TOP instance uses width=16, outside the narrowed range)
        assert rc.var("width").set(ParameterRange(low=1, high=32))

    def test_delay_checking_live_after_reload(self):
        original, restored = self.reload()
        top = restored.cell("TOP")
        UpperBoundConstraint(top.declare_delay("in1", "out1"), 110.0)
        assert top.delay_value("in1", "out1") is None or True
        # the RC adder's 120 exceeds the budget
        assert not top.delay_value("in1", "out1") or \
            top.delay_var("in1", "out1").value is None

    def test_drive_limits_round_trip(self):
        library = CellLibrary("erc")
        drv = library.define("DRV")
        drv.define_signal("y", "out", output_resistance=1e3,
                          max_load_capacitance=2e-12, max_fanout=4)
        restored = loads(dumps(library), context=reset_default_context())
        signal = restored.cell("DRV").signal("y")
        assert signal.max_load_capacitance == 2e-12
        assert signal.max_fanout == 4

    def test_device_cells_round_trip(self):
        library = CellLibrary("phys")
        library.register(resistor(2e3, name="R2K", context=library.context))
        restored = loads(dumps(library), context=reset_default_context())
        r = restored.cell("R2K")
        assert r.device.kind == "R"
        assert r.device.defaults["value"] == 2e3

    def test_unknown_subcell_reference_rejected(self):
        data = {"name": "bad", "cells": [{
            "name": "TOP", "superclass": None,
            "signals": [], "parameters": [], "delays": [],
            "bounding_box": None, "subcells": [],
            "nets": [{"name": "n", "endpoints": [["GHOST", "x"]]}],
        }]}
        with pytest.raises(PersistenceError):
            load_library(data, context=reset_default_context())
