"""Tests for parameterized module generators (compiled-cell families)."""

import pytest

from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import VectorCompiler
from repro.stem.generators import ModuleGenerator
from repro.stem.library import CellLibrary


def slice_cell(context=None):
    cell = CellClass("GEN_SLICE", context=context)
    cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    cell.set_bounding_box(Rect.of_extent(4, 4))
    return cell


def make_adder_generator(library=None, generic=None):
    context = library.context if library else (generic.context if generic
                                               else None)
    element = slice_cell(context)

    def build(cell, *, bits):
        cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
        cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
        instances = VectorCompiler(element, bits).compile_into(cell)
        nin = cell.add_net("nin")
        nin.connect_io("cin"); nin.connect(instances[0], "cin")
        nout = cell.add_net("nout")
        nout.connect(instances[-1], "cout"); nout.connect_io("cout")

    return ModuleGenerator("ADDER", build, library=library, generic=generic,
                           defaults={"bits": 8})


class TestMaterialisation:
    def test_builds_requested_width(self):
        generator = make_adder_generator()
        adder4 = generator.cell_for(bits=4)
        assert len(adder4.subcells) == 4
        assert adder4.bounding_box() == Rect.of_extent(16, 4)

    def test_caching_returns_same_class(self):
        generator = make_adder_generator()
        assert generator.cell_for(bits=4) is generator.cell_for(bits=4)
        assert len(generator.generated) == 1

    def test_distinct_parameters_distinct_classes(self):
        generator = make_adder_generator()
        adder4 = generator.cell_for(bits=4)
        adder8 = generator.cell_for(bits=8)
        assert adder4 is not adder8
        assert len(adder8.subcells) == 8

    def test_defaults_applied(self):
        generator = make_adder_generator()
        default = generator.cell_for()
        assert len(default.subcells) == 8
        assert default is generator.cell_for(bits=8)

    def test_naming(self):
        generator = make_adder_generator()
        assert generator.cell_name(bits=4) == "ADDER[bits=4]"
        assert generator.cell_for(bits=4).name == "ADDER[bits=4]"

    def test_instantiate_shortcut(self):
        generator = make_adder_generator()
        top = CellClass("TOP", context=generator.cell_for(bits=2).context)
        instance = generator.instantiate(top, "A", bits=2)
        assert instance.cell_class.name == "ADDER[bits=2]"
        assert instance in top.subcells


class TestLibraryAndGenericIntegration:
    def test_generated_cells_registered(self):
        library = CellLibrary("genlib")
        generator = make_adder_generator(library=library)
        generator.cell_for(bits=4)
        assert "ADDER[bits=4]" in library

    def test_duplicate_registration_prevented_by_cache(self):
        library = CellLibrary("genlib2")
        generator = make_adder_generator(library=library)
        generator.cell_for(bits=4)
        generator.cell_for(bits=4)
        assert len(library) == 1  # just the one family member

    def test_generic_ancestor(self):
        generic = CellClass("ADDER_GENERIC", is_generic=True)
        generic.define_signal("cin", "in")
        generic.define_signal("cout", "out")
        library = CellLibrary("genlib3", context=generic.context)
        element = slice_cell(generic.context)

        def build(cell, *, bits):
            instances = VectorCompiler(element, bits).compile_into(cell)
            nin = cell.add_net("nin")
            nin.connect_io("cin"); nin.connect(instances[0], "cin")
            nout = cell.add_net("nout")
            nout.connect(instances[-1], "cout"); nout.connect_io("cout")

        generator = ModuleGenerator("ADDER", build, library=library,
                                    generic=generic)
        adder4 = generator.cell_for(bits=4)
        assert adder4.superclass is generic
        assert adder4 in list(generic.descendants())
