"""Tests for 1-D constraint-graph compaction (section 2.1 substrate)."""

import pytest

from repro.stem import CellClass, Rect, Transform
from repro.stem.compaction import CompactionError, Compactor1D, compact_row


class TestCompactor:
    def test_simple_separation_chain(self):
        compactor = Compactor1D()
        compactor.separate("a", "b", 4.0)
        compactor.separate("b", "c", 6.0)
        positions = compactor.solve()
        assert positions == {"a": 0.0, "b": 4.0, "c": 10.0}

    def test_longest_path_wins(self):
        """b is constrained from two sides; the tighter chain decides."""
        compactor = Compactor1D()
        compactor.separate("a", "c", 3.0)
        compactor.separate("a", "b", 10.0)
        compactor.separate("c", "b", 2.0)
        positions = compactor.solve()
        assert positions["b"] == 10.0  # direct 10 > via-c 5

    def test_alignment(self):
        compactor = Compactor1D()
        compactor.separate("a", "b", 5.0)
        compactor.align("b", "c", 2.0)
        positions = compactor.solve()
        assert positions["c"] == positions["b"] + 2.0

    def test_fixed_positions_respected(self):
        compactor = Compactor1D()
        compactor.fix("a", 7.0)
        compactor.separate("a", "b", 3.0)
        positions = compactor.solve()
        assert positions == {"a": 7.0, "b": 10.0}

    def test_overconstrained_fixed_rejected(self):
        compactor = Compactor1D()
        compactor.fix("b", 2.0)
        compactor.separate("a", "b", 5.0)
        compactor.at_least("a", 0.0)
        with pytest.raises(CompactionError):
            compactor.solve()

    def test_at_least(self):
        compactor = Compactor1D()
        compactor.at_least("a", 12.0)
        assert compactor.solve()["a"] == 12.0

    def test_positive_cycle_detected(self):
        compactor = Compactor1D()
        compactor.separate("a", "b", 3.0)
        compactor.separate("b", "a", 3.0)
        with pytest.raises(CompactionError):
            compactor.solve()

    def test_zero_cycle_is_feasible(self):
        """a == b expressed as two zero separations."""
        compactor = Compactor1D()
        compactor.align("a", "b", 0.0)
        positions = compactor.solve()
        assert positions["a"] == positions["b"]

    def test_unconstrained_elements_at_origin(self):
        compactor = Compactor1D()
        compactor.add_element("lonely")
        assert compactor.solve() == {"lonely": 0.0}

    def test_critical_path(self):
        compactor = Compactor1D()
        compactor.separate("a", "b", 10.0)
        compactor.separate("b", "d", 10.0)
        compactor.separate("a", "c", 1.0)
        compactor.separate("c", "d", 1.0)
        path = compactor.critical_path()
        assert path == ["a", "b", "d"]


class TestCompactRow:
    def placed_row(self, gaps=(0.0, 7.0, 3.0)):
        """Three 4-wide cells placed with the given extra gaps."""
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        instances = []
        x = 0.0
        for i, gap in enumerate(gaps):
            x += gap
            instances.append(
                leaf.instantiate(top, f"L{i}", Transform.translation(x, 0)))
            x += 4.0
        return top, instances

    def test_row_closes_gaps(self):
        top, instances = self.placed_row()
        positions = compact_row(instances, spacing=0.0)
        assert [positions[i] for i in instances] == [0.0, 4.0, 8.0]

    def test_row_respects_spacing_rule(self):
        top, instances = self.placed_row()
        positions = compact_row(instances, spacing=1.0)
        assert [positions[i] for i in instances] == [0.0, 5.0, 10.0]

    def test_order_preserved(self):
        top, instances = self.placed_row(gaps=(0.0, 100.0, 0.0))
        positions = compact_row(instances)
        assert positions[instances[0]] < positions[instances[1]] \
            < positions[instances[2]]

    def test_vertical_axis(self):
        leaf = CellClass("LEAF2")
        leaf.set_bounding_box(Rect.of_extent(2, 3))
        top = CellClass("TOP2")
        a = leaf.instantiate(top, "a", Transform.translation(0, 0))
        b = leaf.instantiate(top, "b", Transform.translation(0, 9))
        positions = compact_row([a, b], axis="y")
        assert positions[b] == 3.0

    def test_missing_box_rejected(self):
        empty = CellClass("EMPTY")
        top = CellClass("TOP3")
        instance = empty.instantiate(top, "e")
        with pytest.raises(CompactionError):
            compact_row([instance])

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            compact_row([], axis="z")
