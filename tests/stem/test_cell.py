"""Tests for cell classes, instances and the design hierarchy."""

import pytest

from repro.core import USER, default_context
from repro.stem import (
    CellClass,
    ParameterRange,
    PinSpec,
    Point,
    Rect,
    Transform,
)
from repro.stem.types import DIGITAL, INTEGER_SIGNAL


def adder_cell(name="ADDER"):
    cell = CellClass(name)
    cell.define_signal("a", "in", load_capacitance=1.0)
    cell.define_signal("b", "in", load_capacitance=1.0)
    cell.define_signal("sum", "out", output_resistance=2.0)
    return cell


class TestInterfaceDefinition:
    def test_define_signal(self):
        cell = adder_cell()
        assert set(cell.signals) == {"a", "b", "sum"}
        assert cell.signal("a").direction == "in"

    def test_duplicate_signal_rejected(self):
        cell = adder_cell()
        with pytest.raises(ValueError):
            cell.define_signal("a")

    def test_missing_signal(self):
        with pytest.raises(KeyError):
            adder_cell().signal("nope")

    def test_signal_vars_registered(self):
        cell = adder_cell()
        assert cell.var("a.bitWidth") is cell.signal("a").bit_width_var
        assert cell.var("a.dataType") is cell.signal("a").data_type_var

    def test_invalid_direction(self):
        cell = CellClass("X")
        with pytest.raises(ValueError):
            cell.define_signal("s", "sideways")

    def test_add_parameter(self):
        cell = CellClass("X")
        parameter = cell.add_parameter("width", low=1, high=64, default=8)
        assert cell.var("width") is parameter
        assert parameter.range.default == 8

    def test_duplicate_parameter_rejected(self):
        cell = CellClass("X")
        cell.add_parameter("width", low=1, high=64)
        with pytest.raises(ValueError):
            cell.add_parameter("width")

    def test_declare_delay_validates_directions(self):
        cell = adder_cell()
        cell.declare_delay("a", "sum")
        with pytest.raises(ValueError):
            cell.declare_delay("sum", "a")
        with pytest.raises(ValueError):
            cell.declare_delay("a", "b")

    def test_duplicate_delay_rejected(self):
        cell = adder_cell()
        cell.declare_delay("a", "sum")
        with pytest.raises(ValueError):
            cell.declare_delay("a", "sum")

    def test_missing_variable(self):
        with pytest.raises(KeyError):
            CellClass("X").var("ghost")


class TestInstantiation:
    def test_instance_registered_both_ways(self):
        cell = adder_cell()
        top = CellClass("TOP")
        instance = cell.instantiate(top, "A1")
        assert instance in cell.instances
        assert instance in top.subcells
        assert instance.parent_cell is top

    def test_auto_naming(self):
        cell = adder_cell()
        first = cell.instantiate()
        second = cell.instantiate()
        assert first.name != second.name

    def test_instance_gets_parameter_duals_with_defaults(self):
        cell = CellClass("X")
        cell.add_parameter("width", low=1, high=64, default=8)
        instance = cell.instantiate()
        assert instance.parameter_value("width") == 8
        assert instance.parameters["width"].class_var is cell.var("width")

    def test_set_parameter_checks_range(self):
        cell = CellClass("X")
        cell.add_parameter("width", low=1, high=64)
        instance = cell.instantiate()
        assert instance.set_parameter("width", 32)
        assert not instance.set_parameter("width", 128)

    def test_instance_gets_delay_duals(self):
        cell = adder_cell()
        cell.declare_delay("a", "sum", estimate=100.0)
        instance = cell.instantiate()
        assert instance.delay_var("a", "sum").value == 100.0

    def test_delay_declared_after_instantiation_reaches_instances(self):
        cell = adder_cell()
        instance = cell.instantiate()
        cell.declare_delay("a", "sum", estimate=50.0)
        assert instance.delay_var("a", "sum").value == 50.0

    def test_instance_bbox_default_from_class(self):
        cell = adder_cell()
        cell.set_bounding_box(Rect.of_extent(4, 2))
        instance = cell.instantiate(transform=Transform.translation(10, 0))
        assert instance.bounding_box() == Rect.of_extent(4, 2, Point(10, 0))

    def test_remove_cell_detaches_everything(self):
        cell = adder_cell()
        cell.declare_delay("a", "sum", estimate=1.0)
        top = CellClass("TOP")
        instance = cell.instantiate(top, "A1")
        net = top.add_net("n")
        net.connect(instance, "a")
        top.remove_cell(instance)
        assert instance not in top.subcells
        assert instance not in cell.instances
        assert net.endpoints == []
        assert cell.bounding_box_var.dual_variables() == ()


class TestInheritance:
    def test_subclass_links(self):
        parent = adder_cell()
        child = parent.subclass("ADDER.RC")
        assert child.superclass is parent
        assert child in parent.subclasses
        assert child.is_kind_of(parent)
        assert not parent.is_kind_of(child)

    def test_signals_cloned_with_values(self):
        parent = adder_cell()
        parent.signal("a").data_type_var.set(INTEGER_SIGNAL)
        parent.signal("a").bit_width_var.set(8)
        child = parent.subclass("ADDER.RC")
        assert child.signal("a").data_type_var.value is INTEGER_SIGNAL
        assert child.signal("a").bit_width_var.value == 8
        # distinct variables: refining the child leaves the parent alone
        child.signal("a").bit_width_var.reset()
        assert parent.signal("a").bit_width_var.value == 8

    def test_parameters_inherited(self):
        parent = CellClass("P")
        parent.add_parameter("width", low=1, high=64, default=8)
        child = parent.subclass("C")
        assert child.var("width").range == ParameterRange(low=1, high=64,
                                                          default=8)

    def test_delays_inherited_as_defaults(self):
        parent = adder_cell()
        parent.declare_delay("a", "sum", estimate=100.0)
        child = parent.subclass("ADDER.RC")
        assert child.delay_var("a", "sum").value == 100.0
        # the child may specialize without touching the parent
        assert child.delay_var("a", "sum").set(80.0)
        assert parent.delay_var("a", "sum").value == 100.0

    def test_bounding_box_inherited(self):
        parent = adder_cell()
        parent.set_bounding_box(Rect.of_extent(4, 2))
        child = parent.subclass("ADDER.RC")
        assert child.bounding_box() == Rect.of_extent(4, 2)

    def test_descendants_enumeration(self):
        root = CellClass("ROOT", is_generic=True)
        a = root.subclass("A", is_generic=True)
        b = root.subclass("B")
        a1 = a.subclass("A1")
        assert list(root.descendants()) == [a, a1, b]


class TestStructureAndGeometry:
    def build_pair(self):
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        i1 = leaf.instantiate(top, "L1", Transform.translation(0, 0))
        i2 = leaf.instantiate(top, "L2", Transform.translation(4, 0))
        return leaf, top, i1, i2

    def test_class_bbox_calculated_from_subcells(self):
        leaf, top, i1, i2 = self.build_pair()
        assert top.bounding_box() == Rect(Point(0, 0), Point(8, 2))

    def test_subcell_bbox_change_invalidates_parent(self):
        leaf, top, i1, i2 = self.build_pair()
        assert top.bounding_box() == Rect(Point(0, 0), Point(8, 2))
        i2.bounding_box_var.set(Rect.of_extent(6, 2, Point(4, 0)))
        # parent's stored box was reset and recalculates on demand
        assert top.bounding_box() == Rect(Point(0, 0), Point(10, 2))

    def test_class_bbox_change_cascades_up(self):
        leaf, top, i1, i2 = self.build_pair()
        assert top.bounding_box() == Rect(Point(0, 0), Point(8, 2))
        leaf.set_bounding_box(Rect.of_extent(5, 2))
        assert top.bounding_box() == Rect(Point(0, 0), Point(9, 2))

    def test_instance_box_cannot_shrink_below_class(self):
        leaf, top, i1, i2 = self.build_pair()
        assert not i1.bounding_box_var.set(Rect.of_extent(3, 2))

    def test_instance_box_may_grow(self):
        leaf, top, i1, i2 = self.build_pair()
        assert i1.bounding_box_var.set(Rect.of_extent(6, 3))

    def test_rotated_placement(self):
        leaf = CellClass("LEAF")
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        top = CellClass("TOP")
        inst = leaf.instantiate(top, "L1", Transform("R90", Point(2, 0)))
        assert inst.bounding_box().extent == Point(2, 4)

    def test_io_pin_stretching(self):
        leaf = CellClass("LEAF")
        leaf.define_signal("in1", "in", pins=[PinSpec("left", 0.5)])
        leaf.define_signal("out1", "out", pins=[PinSpec("right", 0.5)])
        leaf.set_bounding_box(Rect.of_extent(4, 2))
        instance = leaf.instantiate()
        assert instance.io_pins()["in1"] == [Point(0, 1)]
        # stretch: a taller instance box moves the pin to its perimeter
        instance.bounding_box_var.set(Rect.of_extent(4, 4))
        assert instance.io_pins()["in1"] == [Point(0, 2)]
        assert instance.io_pins()["out1"] == [Point(4, 2)]

    def test_io_pins_empty_without_box(self):
        leaf = CellClass("LEAF")
        leaf.define_signal("in1", "in")
        assert leaf.instantiate().io_pins() == {}


class TestChangeBroadcast:
    class Recorder:
        def __init__(self):
            self.events = []

        def model_changed(self, model, aspect):
            self.events.append((model, aspect))

    def test_views_notified(self):
        cell = CellClass("X")
        view = self.Recorder()
        cell.add_dependent(view)
        cell.changed("structure")
        assert view.events == [(cell, "structure")]

    def test_change_climbs_to_containing_cells(self):
        leaf = CellClass("LEAF")
        top = CellClass("TOP")
        leaf.instantiate(top, "L1")
        view = self.Recorder()
        top.add_dependent(view)
        leaf.changed("structure")
        assert (top, "structure") in view.events

    def test_layout_changes_do_not_climb(self):
        leaf = CellClass("LEAF")
        top = CellClass("TOP")
        leaf.instantiate(top, "L1")
        view = self.Recorder()
        top.add_dependent(view)
        leaf.changed("layout")
        assert view.events == []

    def test_remove_dependent(self):
        cell = CellClass("X")
        view = self.Recorder()
        cell.add_dependent(view)
        cell.remove_dependent(view)
        cell.changed()
        assert view.events == []
