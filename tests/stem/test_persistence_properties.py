"""Property-based round-trip tests for design persistence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PropagationContext
from repro.stem import CellClass, PinSpec, Point, Rect, Transform
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads

names = st.text(alphabet="ABCDEFGH", min_size=1, max_size=4)
directions = st.sampled_from(["in", "out", "inout"])
sides = st.sampled_from(["left", "right", "top", "bottom"])
positions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
extents = st.integers(min_value=1, max_value=40)
orientations = st.sampled_from(
    ["R0", "R90", "R180", "R270", "MX", "MY", "MX90", "MY90"])


@st.composite
def libraries(draw):
    """A random small library: leaf cells plus one composite using them."""
    library = CellLibrary("prop", context=PropagationContext())
    n_leaves = draw(st.integers(min_value=1, max_value=3))
    leaves = []
    for i in range(n_leaves):
        cell = library.define(f"LEAF{i}")
        n_signals = draw(st.integers(min_value=1, max_value=3))
        for j in range(n_signals):
            cell.define_signal(
                f"s{j}", draw(directions),
                output_resistance=float(draw(st.integers(0, 5000))),
                load_capacitance=float(draw(st.integers(0, 100))) * 1e-13,
                pins=[PinSpec(draw(sides), draw(positions))])
        cell.set_bounding_box(Rect.of_extent(draw(extents), draw(extents)))
        if draw(st.booleans()):
            cell.add_parameter("p", low=0, high=100,
                               default=draw(st.integers(0, 100)))
        leaves.append(cell)

    top = library.define("TOP")
    n_instances = draw(st.integers(min_value=0, max_value=4))
    instances = []
    for k in range(n_instances):
        leaf = leaves[draw(st.integers(0, n_leaves - 1))]
        transform = Transform(draw(orientations),
                              Point(draw(st.integers(-20, 20)),
                                    draw(st.integers(-20, 20))))
        instances.append(leaf.instantiate(top, f"i{k}", transform))
    if instances:
        net = top.add_net("n0")
        for instance in instances:
            signal_names = list(instance.cell_class.signals)
            net.connect(instance, signal_names[0])
    return library


@settings(max_examples=40, deadline=None)
@given(library=libraries())
def test_round_trip_preserves_structure(library):
    restored = loads(dumps(library), context=PropagationContext())
    assert restored.names() == library.names()
    for cell in library:
        mirror = restored.cell(cell.name)
        assert set(mirror.signals) == set(cell.signals)
        assert len(mirror.subcells) == len(cell.subcells)
        assert len(mirror.nets) == len(cell.nets)
        assert mirror.bounding_box_var.value == cell.bounding_box_var.value
        for name, signal in cell.signals.items():
            mirrored = mirror.signal(name)
            assert mirrored.direction == signal.direction
            assert mirrored.pins == signal.pins
            assert mirrored.output_resistance == signal.output_resistance


@settings(max_examples=40, deadline=None)
@given(library=libraries())
def test_double_round_trip_is_stable(library):
    """dumps(loads(dumps(x))) == dumps(x): serialization is a fixpoint."""
    first = dumps(library, sort_keys=True)
    restored = loads(first, context=PropagationContext())
    second = dumps(restored, sort_keys=True)
    assert first == second


@settings(max_examples=25, deadline=None)
@given(library=libraries())
def test_restored_placements_match(library):
    restored = loads(dumps(library), context=PropagationContext())
    original_top = library.cell("TOP")
    restored_top = restored.cell("TOP")
    by_name = {i.name: i for i in restored_top.subcells}
    for instance in original_top.subcells:
        mirror = by_name[instance.name]
        assert mirror.transform == instance.transform
        assert mirror.cell_class.name == instance.cell_class.name
