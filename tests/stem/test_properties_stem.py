"""Property-based tests (hypothesis) for the STEM substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PropagationContext
from repro.core.satisfaction import IntervalSolver
from repro.core import (
    LowerBoundConstraint,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
)
from repro.stem.compaction import Compactor1D
from repro.stem.geometry import ORIGIN, Point, Rect, Transform
from repro.stem.parameters import ParameterRange
from repro.stem.types import S_MODULE_SIGNAL_TYPE

orientations = st.sampled_from(
    ["R0", "R90", "R180", "R270", "MX", "MY", "MX90", "MY90"])
coordinates = st.integers(min_value=-50, max_value=50)
points = st.builds(Point, coordinates, coordinates)
transforms = st.builds(Transform, orientations, points)
type_nodes = st.sampled_from(
    [S_MODULE_SIGNAL_TYPE] + list(S_MODULE_SIGNAL_TYPE.descendants()))


class TestTransformGroup:
    @given(t1=transforms, t2=transforms, p=points)
    @settings(max_examples=120)
    def test_composition_agrees_with_sequencing(self, t1, t2, p):
        assert t1.compose(t2).apply_to(p) == t1.apply_to(t2.apply_to(p))

    @given(t=transforms, p=points)
    @settings(max_examples=120)
    def test_inverse_roundtrip(self, t, p):
        assert t.inverse().apply_to(t.apply_to(p)) == p
        assert t.apply_to(t.inverse().apply_to(p)) == p

    @given(t1=transforms, t2=transforms, t3=transforms, p=points)
    @settings(max_examples=60)
    def test_associativity(self, t1, t2, t3, p):
        left = t1.compose(t2).compose(t3)
        right = t1.compose(t2.compose(t3))
        assert left.apply_to(p) == right.apply_to(p)

    @given(t=transforms, r=st.builds(Rect, points, points))
    @settings(max_examples=120)
    def test_rect_transform_preserves_area(self, t, r):
        assert t.apply_to(r).area == r.area


class TestRectProperties:
    @given(a=st.builds(Rect, points, points), b=st.builds(Rect, points, points))
    @settings(max_examples=100)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.can_contain(a) or u.area >= a.area
        assert u.contains_point(a.origin)
        assert u.contains_point(b.corner)

    @given(rects=st.lists(st.builds(Rect, points, points), min_size=1,
                          max_size=6))
    @settings(max_examples=80)
    def test_bounding_covers_all_corners(self, rects):
        bound = Rect.bounding(rects)
        for rect in rects:
            assert bound.contains_point(rect.origin)
            assert bound.contains_point(rect.corner)


class TestTypeHierarchyProperties:
    @given(a=type_nodes, b=type_nodes)
    @settings(max_examples=120)
    def test_compatibility_is_symmetric(self, a, b):
        assert a.is_compatible_with(b) == b.is_compatible_with(a)

    @given(a=type_nodes, b=type_nodes)
    @settings(max_examples=120)
    def test_least_abstract_is_one_of_the_pair(self, a, b):
        if a.is_compatible_with(b):
            chosen = a.least_abstract_with(b)
            assert chosen in (a, b)
            assert chosen.is_compatible_with(a)
            assert chosen.is_compatible_with(b)

    @given(a=type_nodes, b=type_nodes)
    @settings(max_examples=120)
    def test_strict_abstraction_is_antisymmetric(self, a, b):
        assert not (a.is_less_abstract_than(b)
                    and b.is_less_abstract_than(a))


class TestParameterRangeProperties:
    @given(low=st.integers(-100, 0), high=st.integers(1, 100),
           value=st.integers(-200, 200))
    @settings(max_examples=120)
    def test_bounds_admit_iff_within(self, low, high, value):
        assert ParameterRange(low=low, high=high).admits(value) == \
            (low <= value <= high)

    @given(choices=st.lists(st.integers(0, 20), min_size=1, max_size=8),
           value=st.integers(0, 20))
    @settings(max_examples=80)
    def test_choices_admit_iff_member(self, choices, value):
        assert ParameterRange(choices=choices).admits(value) == \
            (value in choices)


class TestCompactorProperties:
    @given(gaps=st.lists(st.integers(min_value=0, max_value=20),
                         min_size=1, max_size=10))
    @settings(max_examples=80)
    def test_chain_positions_satisfy_all_separations(self, gaps):
        compactor = Compactor1D()
        for i, gap in enumerate(gaps):
            compactor.separate(i, i + 1, gap)
        positions = compactor.solve()
        for i, gap in enumerate(gaps):
            assert positions[i + 1] >= positions[i] + gap - 1e-9

    @given(edges=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5),
                  st.integers(0, 10)), max_size=15))
    @settings(max_examples=80)
    def test_forward_dag_always_feasible_and_tight(self, edges):
        """Edges oriented low->high index form a DAG: always solvable,
        and every constraint holds in the solution."""
        compactor = Compactor1D()
        forward = [(a, b, w) for a, b, w in edges if a < b]
        for a, b, w in forward:
            compactor.separate(a, b, w)
        if not forward:
            return
        positions = compactor.solve()
        for a, b, w in forward:
            assert positions[b] >= positions[a] + w - 1e-9


class TestIntervalSolverSoundness:
    @given(values=st.lists(st.integers(0, 50), min_size=2, max_size=6),
           slack=st.integers(0, 20))
    @settings(max_examples=60)
    def test_feasible_assignment_never_excluded(self, values, slack):
        """Bounds consistent with a known assignment must keep it inside
        every narrowed interval."""
        context = PropagationContext()
        inputs = [Variable(name=f"x{i}", context=context)
                  for i in range(len(values))]
        total = Variable(name="total", context=context)
        with context.propagation_disabled():
            UniAdditionConstraint(total, inputs)
            UpperBoundConstraint(total, sum(values) + slack)
            for variable, value in zip(inputs, values):
                LowerBoundConstraint(variable, 0)
        solver = IntervalSolver([total])
        solver.solve()
        for variable, value in zip(inputs, values):
            interval = solver.interval_of(variable)
            assert interval.low - 1e-9 <= value <= interval.high + 1e-9
