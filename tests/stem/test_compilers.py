"""Tests for module compilers and compiler views (section 6.4.1)."""

import pytest

from repro.stem import CellClass, PinSpec, Point, Rect, Transform
from repro.stem.compilers import (
    CompilerView,
    GraphCompiler,
    MatrixCompiler,
    VectorCompiler,
    WordCompiler,
)


def slice_cell(name="SLICE", width=4.0, height=4.0):
    """A 1-bit adder slice with a carry chain left->right."""
    cell = CellClass(name)
    cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    cell.define_signal("a", "in", pins=[PinSpec("bottom", 0.25)])
    cell.define_signal("sum", "out", pins=[PinSpec("top", 0.5)])
    cell.set_bounding_box(Rect.of_extent(width, height))
    return cell


class TestCompilerView:
    def test_exposes_bbox_and_sorted_pins(self):
        cell = slice_cell()
        instance = cell.instantiate()
        view = CompilerView(instance)
        assert view.bounding_box() == Rect.of_extent(4, 4)
        assert view.pins_on("left") == [(Point(0, 2), "cin")]
        assert view.pins_on("right") == [(Point(4, 2), "cout")]
        assert view.pins_on("bottom") == [(Point(1, 0), "a")]

    def test_pins_sorted_along_side(self):
        cell = CellClass("MULTI")
        cell.define_signal("p2", "in", pins=[PinSpec("left", 0.8)])
        cell.define_signal("p1", "in", pins=[PinSpec("left", 0.2)])
        cell.set_bounding_box(Rect.of_extent(2, 10))
        view = CompilerView(cell.instantiate())
        assert [s for _, s in view.pins_on("left")] == ["p1", "p2"]

    def test_cache_erased_on_model_change(self):
        cell = slice_cell()
        instance = cell.instantiate()
        view = CompilerView(instance)
        assert view.bounding_box() == Rect.of_extent(4, 4)
        cell.set_bounding_box(Rect.of_extent(6, 6))
        assert view.bounding_box() == Rect.of_extent(6, 6)

    def test_release_stops_updates(self):
        cell = slice_cell()
        instance = cell.instantiate()
        view = CompilerView(instance)
        view.bounding_box()
        view.release()
        assert view not in cell.dependents


class TestVectorCompiler:
    def test_carry_chain_connected(self):
        cell = slice_cell()
        word = CellClass("WORD4")
        instances = VectorCompiler(cell, 4).compile_into(word)
        assert len(instances) == 4
        assert len(word.nets) == 3
        for net in word.nets.values():
            signals = sorted(s for _, s in net.endpoints)
            assert signals == ["cin", "cout"]

    def test_placement_left_to_right(self):
        cell = slice_cell(width=4)
        word = CellClass("WORD3")
        instances = VectorCompiler(cell, 3).compile_into(word)
        xs = [i.bounding_box().origin.x for i in instances]
        assert xs == [0.0, 4.0, 8.0]
        assert word.bounding_box() == Rect.of_extent(12, 4)

    def test_vertical_direction(self):
        cell = slice_cell()
        stack = CellClass("STACK")
        instances = VectorCompiler(cell, 2, direction="up").compile_into(stack)
        ys = [i.bounding_box().origin.y for i in instances]
        assert ys == [0.0, 4.0]
        # vertical butting connects sum (top) to a (bottom)? only if aligned
        # sum at 0.5, a at 0.25 -> no connection
        assert len(stack.nets) == 0

    def test_spacing_prevents_butting(self):
        cell = slice_cell()
        word = CellClass("SPACED")
        compiler = VectorCompiler(cell, 3, spacing=1.0)
        compiler.compile_into(word)
        assert len(word.nets) == 0  # gaps: no pins touch

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            VectorCompiler(slice_cell(), 0)

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            VectorCompiler(slice_cell(), 2, direction="diagonal")


class TestWordCompiler:
    def test_end_cells_placed(self):
        cell = slice_cell()
        end = slice_cell("END", width=2.0)
        word = CellClass("WORD")
        instances = WordCompiler(cell, 2, left_end=end,
                                 right_end=end).compile_into(word)
        assert len(instances) == 4
        names = [i.name for i in instances]
        assert names[0].endswith(".L")
        assert names[-1].endswith(".R")
        # end cells butt into the chain as well
        assert len(word.nets) == 3

    def test_without_ends_is_a_vector(self):
        word = CellClass("WORD")
        instances = WordCompiler(slice_cell(), 3).compile_into(word)
        assert len(instances) == 3


class TestMatrixCompiler:
    def test_grid_placement(self):
        cell = slice_cell()
        matrix = CellClass("MAT")
        instances = MatrixCompiler(cell, 3, 2).compile_into(matrix)
        assert len(instances) == 6
        assert matrix.bounding_box() == Rect.of_extent(12, 8)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            MatrixCompiler(slice_cell(), 0, 1)


class TestGraphCompiler:
    def test_heterogeneous_row_stretches_to_column_width(self):
        narrow = slice_cell("NARROW", width=2.0)
        wide = slice_cell("WIDE", width=6.0)
        compiler = GraphCompiler()
        compiler.place(0, 0, narrow)
        compiler.place(0, 1, wide)  # same column, wider
        compiler.place(1, 0, narrow)
        top = CellClass("HET")
        instances = compiler.compile_into(top)
        # the narrow cell in column 0 stretches to the column width 6
        first = compiler.instances[(0, 0)]
        assert first.bounding_box().width == 6.0
        # stretched pins still butt with the next column
        assert len(top.nets) >= 1

    def test_repeat_columns(self):
        cell = slice_cell()
        compiler = GraphCompiler()
        compiler.place(0, 0, cell)
        compiler.place(1, 0, cell)
        compiler.repeat_columns(0, 1, 2)  # the 2-slice group appears twice
        top = CellClass("REPEATED")
        instances = compiler.compile_into(top)
        assert len(instances) == 4
        assert len(top.nets) == 3  # full carry chain across the repeat

    def test_repeat_shifts_following_columns(self):
        a = slice_cell("A")
        b = slice_cell("B")
        compiler = GraphCompiler()
        compiler.place(0, 0, a)
        compiler.place(1, 0, b)
        compiler.repeat_columns(0, 0, 3)
        assert sorted(c for c, _ in compiler.grid) == [0, 1, 2, 3]
        assert compiler.grid[(3, 0)].cell_class is b

    def test_disallow_withdraws_pin(self):
        cell = slice_cell()
        compiler = GraphCompiler()
        compiler.place(0, 0, cell)
        compiler.place(1, 0, cell)
        compiler.disallow(0, 0, "cout")
        top = CellClass("CUT")
        compiler.compile_into(top)
        assert len(top.nets) == 0

    def test_rotated_placement(self):
        cell = slice_cell()
        compiler = GraphCompiler()
        compiler.place(0, 0, cell, orientation="R90")
        top = CellClass("ROT")
        (instance,) = compiler.compile_into(top)
        assert instance.bounding_box().origin == Point(0, 0)
        assert instance.transform.orientation == "R90"

    def test_generic_cell_rejected(self):
        generic = CellClass("GEN", is_generic=True)
        with pytest.raises(ValueError):
            GraphCompiler().place(0, 0, generic)

    def test_missing_bounding_box_rejected(self):
        cell = CellClass("NOBOX")
        compiler = GraphCompiler()
        compiler.place(0, 0, cell)
        with pytest.raises(ValueError):
            compiler.compile_into(CellClass("TOP"))

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GraphCompiler().compile_into(CellClass("TOP"))

    def test_structure_layout_recorded(self):
        cell = slice_cell()
        compiler = VectorCompiler(cell, 2)
        top = CellClass("TOP")
        compiler.compile_into(top)
        assert top.structure_layout is compiler

    def test_slot_parameters_assigned(self):
        cell = slice_cell("PARAMSLICE")
        cell.add_parameter("drive", low=1, high=4, default=1)
        compiler = GraphCompiler()
        compiler.place(0, 0, cell, parameters={"drive": 2})
        compiler.place(1, 0, cell, parameters={"drive": 4})
        top = CellClass("SIZED")
        a, b = compiler.compile_into(top)
        assert a.parameter_value("drive") == 2
        assert b.parameter_value("drive") == 4

    def test_slot_parameters_copied_on_repeat(self):
        cell = slice_cell("REPSLICE")
        cell.add_parameter("drive", low=1, high=4, default=1)
        compiler = GraphCompiler()
        compiler.place(0, 0, cell, parameters={"drive": 3})
        compiler.repeat_columns(0, 0, 2)
        top = CellClass("REPSIZED")
        instances = compiler.compile_into(top)
        assert [i.parameter_value("drive") for i in instances] == [3, 3]

    def test_invalid_slot_parameter_rejected(self):
        cell = slice_cell("BADSLICE")
        cell.add_parameter("drive", low=1, high=4)
        compiler = GraphCompiler()
        compiler.place(0, 0, cell, parameters={"drive": 99})
        with pytest.raises(ValueError):
            compiler.compile_into(CellClass("BADTOP"))

    def test_shared_bus_reuses_net(self):
        """Three-in-a-row: middle shares nets with both neighbours."""
        cell = slice_cell()
        top = CellClass("ROW3")
        VectorCompiler(cell, 3).compile_into(top)
        # each net connects exactly two endpoints (cout -> cin)
        assert all(len(net.endpoints) == 2 for net in top.nets.values())
