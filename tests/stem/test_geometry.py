"""Tests for the geometry substrate."""

import pytest

from repro.stem.geometry import IDENTITY, ORIGIN, Point, Rect, Transform


class TestPoint:
    def test_arithmetic(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(3, 4) - Point(1, 2) == Point(2, 2)
        assert -Point(1, -2) == Point(-1, 2)

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert Point(1, 2) != Point(2, 1)
        assert hash(Point(1, 2)) == hash(Point(1, 2))

    def test_immutability(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5

    def test_min_max(self):
        assert Point(1, 5).max(Point(3, 2)) == Point(3, 5)
        assert Point(1, 5).min(Point(3, 2)) == Point(1, 2)

    def test_iteration(self):
        assert tuple(Point(1, 2)) == (1, 2)


class TestRect:
    def test_normalizes_corners(self):
        r = Rect(Point(4, 5), Point(1, 2))
        assert r.origin == Point(1, 2)
        assert r.corner == Point(4, 5)

    def test_of_extent(self):
        r = Rect.of_extent(4, 2)
        assert r.origin == ORIGIN
        assert r.extent == Point(4, 2)
        assert r.width == 4
        assert r.height == 2
        assert r.area == 8

    def test_center(self):
        assert Rect.of_extent(4, 2).center == Point(2, 1)

    def test_contains_point(self):
        r = Rect.of_extent(4, 2)
        assert r.contains_point(Point(2, 1))
        assert r.contains_point(Point(0, 0))
        assert not r.contains_point(Point(5, 1))

    def test_can_contain_compares_extents(self):
        big = Rect.of_extent(4, 2, origin=Point(100, 100))
        small = Rect.of_extent(3, 2)
        assert big.can_contain(small)
        assert not small.can_contain(big)
        assert big.can_contain(big)

    def test_union(self):
        a = Rect.of_extent(2, 2)
        b = Rect.of_extent(2, 2, origin=Point(3, 3))
        assert a.union(b) == Rect(Point(0, 0), Point(5, 5))

    def test_translated(self):
        r = Rect.of_extent(2, 2).translated(Point(1, 1))
        assert r.origin == Point(1, 1)

    def test_bounding_of_empty(self):
        assert Rect.bounding([]) is None

    def test_bounding_of_several(self):
        rects = [Rect.of_extent(1, 1),
                 Rect.of_extent(1, 1, origin=Point(5, 0)),
                 Rect.of_extent(1, 1, origin=Point(0, 7))]
        assert Rect.bounding(rects) == Rect(Point(0, 0), Point(6, 8))


class TestTransform:
    def test_identity(self):
        assert IDENTITY.apply_to(Point(3, 4)) == Point(3, 4)

    def test_translation(self):
        t = Transform.translation(10, 20)
        assert t.apply_to(Point(1, 2)) == Point(11, 22)

    def test_rotation_90(self):
        t = Transform("R90")
        assert t.apply_to(Point(1, 0)) == Point(0, 1)
        assert t.apply_to(Point(0, 1)) == Point(-1, 0)

    def test_rotation_180(self):
        assert Transform("R180").apply_to(Point(2, 3)) == Point(-2, -3)

    def test_mirror(self):
        assert Transform("MX").apply_to(Point(2, 3)) == Point(2, -3)
        assert Transform("MY").apply_to(Point(2, 3)) == Point(-2, 3)

    def test_rect_transform_keeps_normalization(self):
        r = Rect.of_extent(4, 2)
        rotated = Transform("R90").apply_to(r)
        assert rotated.extent == Point(2, 4)

    def test_unknown_orientation_rejected(self):
        with pytest.raises(ValueError):
            Transform("R45")

    def test_compose(self):
        t1 = Transform("R90", Point(5, 0))
        t2 = Transform("R90")
        composed = t1.compose(t2)
        for p in (Point(1, 2), Point(-3, 7)):
            assert composed.apply_to(p) == t1.apply_to(t2.apply_to(p))
        assert composed.orientation == "R180"

    @pytest.mark.parametrize("orientation",
                             ["R0", "R90", "R180", "R270", "MX", "MY",
                              "MX90", "MY90"])
    def test_inverse_roundtrip(self, orientation):
        t = Transform(orientation, Point(3, -4))
        inv = t.inverse()
        for p in (Point(1, 2), Point(-5, 0), ORIGIN):
            assert inv.apply_to(t.apply_to(p)) == p

    def test_apply_to_rejects_other_types(self):
        with pytest.raises(TypeError):
            IDENTITY.apply_to("not a shape")

    def test_equality(self):
        assert Transform("R90", Point(1, 1)) == Transform("R90", Point(1, 1))
        assert Transform("R90") != Transform("R180")
