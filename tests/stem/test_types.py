"""Tests for signal type hierarchies (Figs. 7.2/7.3)."""

import pytest

from repro.stem.types import (
    ANALOG,
    BCD_SIGNAL,
    BIT,
    CMOS,
    DATA_TYPE,
    DIGITAL,
    ELECTRICAL_TYPE,
    INTEGER_SIGNAL,
    S_MODULE_SIGNAL_TYPE,
    SignalType,
    TTL,
    WHOLE_SIGNAL,
)


class TestHierarchyStructure:
    def test_standard_hierarchy_roots(self):
        assert DATA_TYPE.parent is S_MODULE_SIGNAL_TYPE
        assert ELECTRICAL_TYPE.parent is S_MODULE_SIGNAL_TYPE

    def test_fig_7_2_members(self):
        names = {t.name for t in S_MODULE_SIGNAL_TYPE.descendants()}
        assert {"Bit", "FloatSignal", "IntegerSignal", "A2CIntSignal",
                "BCDSignal", "SignedMagIntSignal", "WholeSignal",
                "Analog", "Digital", "BIPOLAR", "TTL", "CMOS"} <= names

    def test_ancestors(self):
        assert list(BCD_SIGNAL.ancestors()) == [INTEGER_SIGNAL, DATA_TYPE,
                                                S_MODULE_SIGNAL_TYPE]

    def test_root(self):
        assert TTL.root() is S_MODULE_SIGNAL_TYPE

    def test_is_leaf(self):
        assert TTL.is_leaf()
        assert not DIGITAL.is_leaf()

    def test_lookup(self):
        assert DATA_TYPE.lookup("BCDSignal") is BCD_SIGNAL
        assert TTL.lookup("Analog") is ANALOG

    def test_lookup_missing(self):
        with pytest.raises(KeyError):
            DATA_TYPE.lookup("NoSuchType")

    def test_duplicate_name_rejected(self):
        root = SignalType("TestRoot")
        root.subtype("child")
        with pytest.raises(ValueError):
            root.subtype("child")

    def test_runtime_extension(self):
        ecl = DIGITAL.subtype("ECL_test")
        try:
            assert ecl.is_less_abstract_than(DIGITAL)
            assert ecl.is_compatible_with(ELECTRICAL_TYPE)
        finally:
            DIGITAL.children.remove(ecl)
            del S_MODULE_SIGNAL_TYPE._registry["ECL_test"]


class TestCompatibility:
    """Fig. 7.3: compatible iff one is a sub-type of the other."""

    def test_same_type_compatible(self):
        assert TTL.is_compatible_with(TTL)

    def test_ancestor_descendant_compatible(self):
        assert DIGITAL.is_compatible_with(TTL)
        assert TTL.is_compatible_with(DIGITAL)
        assert ELECTRICAL_TYPE.is_compatible_with(CMOS)

    def test_siblings_incompatible(self):
        assert not TTL.is_compatible_with(CMOS)
        assert not ANALOG.is_compatible_with(DIGITAL)

    def test_cross_hierarchy_incompatible(self):
        assert not BIT.is_compatible_with(TTL)
        assert not DATA_TYPE.is_compatible_with(ELECTRICAL_TYPE)


class TestAbstraction:
    def test_descendant_is_less_abstract(self):
        assert TTL.is_less_abstract_than(DIGITAL)
        assert TTL.is_less_abstract_than(ELECTRICAL_TYPE)

    def test_ancestor_is_not_less_abstract(self):
        assert not DIGITAL.is_less_abstract_than(TTL)

    def test_type_not_less_abstract_than_itself(self):
        assert not TTL.is_less_abstract_than(TTL)

    def test_siblings_not_ordered(self):
        assert not TTL.is_less_abstract_than(CMOS)
        assert not CMOS.is_less_abstract_than(TTL)

    def test_least_abstract_with(self):
        assert DIGITAL.least_abstract_with(TTL) is TTL
        assert TTL.least_abstract_with(DIGITAL) is TTL
        assert TTL.least_abstract_with(TTL) is TTL

    def test_least_abstract_with_incompatible_raises(self):
        with pytest.raises(ValueError):
            TTL.least_abstract_with(CMOS)

    def test_whole_signal_under_integer(self):
        assert WHOLE_SIGNAL.is_less_abstract_than(INTEGER_SIGNAL)
