"""Tests for compiled-cell boundary export (Fig. 6.2's interface)."""

import pytest

from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import GraphCompiler, VectorCompiler
from repro.stem.types import INTEGER_SIGNAL


def slice_cell(name="XSLICE"):
    cell = CellClass(name)
    cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
    cell.define_signal("a", "in", bit_width=2, data_type=INTEGER_SIGNAL,
                       pins=[PinSpec("bottom", 0.25)])
    cell.define_signal("sum", "out", bit_width=2,
                       pins=[PinSpec("top", 0.5)])
    cell.set_bounding_box(Rect.of_extent(4, 4))
    return cell


class TestExportBoundary:
    def test_bus_and_carry_ends_exported(self):
        word = CellClass("WORD3")
        compiler = VectorCompiler(slice_cell(), 3)
        compiler.compile_into(word)
        created = compiler.export_boundary()
        # 3 a pins, 3 sum pins, first cin, last cout
        assert sorted(created) == ["a_0", "a_1", "a_2", "cin_0", "cout_0",
                                   "sum_0", "sum_1", "sum_2"]
        assert word.signal("a_1").direction == "in"
        assert word.signal("cout_0").direction == "out"

    def test_internal_carries_not_exported(self):
        word = CellClass("WORD3b")
        compiler = VectorCompiler(slice_cell(), 3)
        compiler.compile_into(word)
        created = compiler.export_boundary()
        # the two internal carry links stay internal
        assert created.count("cin_1") == 0
        assert len([n for n in created if n.startswith("cin")]) == 1

    def test_typing_flows_through_export(self):
        word = CellClass("WORD2")
        compiler = VectorCompiler(slice_cell("TSLICE"), 2)
        compiler.compile_into(word)
        compiler.export_boundary()
        # the a-bus io inherits the slice's typing through the net
        assert word.signal("a_0").data_type_var.value is INTEGER_SIGNAL
        assert word.signal("a_0").bit_width_var.value == 2

    def test_disallowed_pin_withdrawn_from_boundary(self):
        word = CellClass("WORDCUT")
        compiler = VectorCompiler(slice_cell("CSLICE"), 2)
        compiler.disallow(0, 0, "a")
        compiler.compile_into(word)
        created = compiler.export_boundary()
        assert "a_0" in created        # slot 1's bus pin, renumbered
        assert len([n for n in created if n.startswith("a_")]) == 1

    def test_requires_compile_first(self):
        compiler = VectorCompiler(slice_cell("ESLICE"), 2)
        with pytest.raises(RuntimeError):
            compiler.export_boundary()

    def test_without_index_prefix_unique_names_only(self):
        single = CellClass("SINGLE")
        compiler = GraphCompiler()
        compiler.place(0, 0, slice_cell("USLICE"))
        compiler.compile_into(single)
        created = compiler.export_boundary(prefix_by_index=False)
        assert sorted(created) == ["a", "cin", "cout", "sum"]

    def test_exported_cell_usable_upstream(self):
        """The compiled word participates in a larger design as usual."""
        word = CellClass("WORDUP")
        compiler = VectorCompiler(slice_cell("UPSLICE"), 2)
        compiler.compile_into(word)
        compiler.export_boundary()
        top = CellClass("TOPUP")
        top.define_signal("bus", "in", bit_width=2)
        instance = word.instantiate(top, "W")
        net = top.add_net("n")
        assert net.connect_io("bus")
        assert net.connect(instance, "a_0")
        assert net.bit_width_var.value == 2
