"""Tests for the cell library catalogue."""

import pytest

from repro.core import PropagationContext
from repro.stem import CellClass
from repro.stem.library import CellLibrary


def populated():
    library = CellLibrary("std")
    adder = library.define("ADDER", is_generic=True)
    adder.define_signal("a", "in")
    adder.define_signal("s", "out")
    rc = library.define("ADDER.RC", adder)
    cs = library.define("ADDER.CS", adder)
    top = library.define("TOP")
    rc.instantiate(top, "a1")
    return library, adder, rc, cs, top


class TestRegistration:
    def test_define_and_lookup(self):
        library, adder, rc, cs, top = populated()
        assert library.cell("ADDER") is adder
        assert "ADDER.RC" in library
        assert len(library) == 4

    def test_duplicate_name_rejected(self):
        library, *_ = populated()
        with pytest.raises(ValueError):
            library.define("ADDER")

    def test_register_existing_cell(self):
        library = CellLibrary("std")
        cell = CellClass("X", context=library.context)
        library.register(cell)
        assert library.cell("X") is cell
        library.register(cell)  # idempotent

    def test_register_foreign_context_rejected(self):
        library = CellLibrary("std", context=PropagationContext())
        cell = CellClass("X", context=PropagationContext())
        with pytest.raises(ValueError):
            library.register(cell)

    def test_remove(self):
        library, *_ = populated()
        library.remove("TOP")
        assert "TOP" not in library
        library.remove("TOP")  # idempotent

    def test_missing_lookup(self):
        library, *_ = populated()
        with pytest.raises(KeyError):
            library.cell("NOPE")


class TestQueries:
    def test_names_sorted(self):
        library, *_ = populated()
        assert library.names() == ["ADDER", "ADDER.CS", "ADDER.RC", "TOP"]

    def test_roots(self):
        library, adder, rc, cs, top = populated()
        assert set(library.roots()) == {adder, top}

    def test_generics(self):
        library, adder, *_ = populated()
        assert library.generics() == [adder]

    def test_realizations_of(self):
        library, adder, rc, cs, top = populated()
        assert set(library.realizations_of("ADDER")) == {rc, cs}

    def test_leaf_cells(self):
        library, adder, rc, cs, top = populated()
        assert top not in library.leaf_cells()
        assert rc in library.leaf_cells()

    def test_statistics(self):
        library, *_ = populated()
        stats = library.statistics()
        assert stats["cells"] == 4
        assert stats["generic_cells"] == 1
        assert stats["instances"] == 1

    def test_iteration(self):
        library, *_ = populated()
        assert len(list(library)) == 4
