"""Tests for implicit constraint variables — the hierarchy links (§5.1)."""

from repro.core import USER, Variable
from repro.core.agenda import IMPLICIT
from repro.stem.implicit import ClassInstVar, InstanceInstVar


def make_pair(class_value=None, instance_count=1):
    class_var = ClassInstVar(class_value, name="classVar")
    instance_vars = []
    for i in range(instance_count):
        instance_var = InstanceInstVar(name=f"instVar{i}")
        class_var.register_instance_var(instance_var)
        instance_vars.append(instance_var)
    return class_var, instance_vars


class TestRegistration:
    def test_register_links_both_ways(self):
        class_var, (instance_var,) = make_pair()
        assert instance_var.class_var is class_var
        assert class_var.dual_variables() == (instance_var,)

    def test_register_is_idempotent(self):
        class_var, (instance_var,) = make_pair()
        class_var.register_instance_var(instance_var)
        assert class_var.dual_variables() == (instance_var,)

    def test_unregister(self):
        class_var, (instance_var,) = make_pair()
        class_var.unregister_instance_var(instance_var)
        assert class_var.dual_variables() == ()
        assert instance_var.class_var is None

    def test_implicit_constraints_are_the_duals(self):
        class_var, instance_vars = make_pair(instance_count=3)
        assert list(class_var.implicit_constraints()) == instance_vars
        assert list(instance_vars[0].implicit_constraints()) == [class_var]

    def test_arguments_for_editor_display(self):
        class_var, (instance_var,) = make_pair()
        assert class_var.arguments == [class_var, instance_var]


class TestDownwardPropagation:
    def test_class_value_propagates_to_instances(self):
        class_var, instance_vars = make_pair(instance_count=3)
        assert class_var.set(42)
        assert all(v.value == 42 for v in instance_vars)

    def test_adjustment_applied(self):
        class Adjusting(InstanceInstVar):
            def adjust_class_value(self, value):
                return value + 10

        class_var = ClassInstVar(name="classVar")
        instance_var = Adjusting(name="instVar")
        class_var.register_instance_var(instance_var)
        class_var.set(5)
        assert instance_var.value == 15

    def test_user_instance_value_not_overwritten(self):
        class_var, (instance_var,) = make_pair()
        instance_var.set(99, USER)
        assert class_var.set(42)
        assert instance_var.value == 99

    def test_propagated_instance_value_updated(self):
        class_var, (instance_var,) = make_pair()
        class_var.set(1)
        assert instance_var.value == 1
        # second round: instance value was propagated, so it follows
        assert class_var.calculate(2)
        assert instance_var.value == 2

    def test_no_upward_propagation(self):
        class_var, (instance_var,) = make_pair()
        instance_var.set(7)
        assert class_var.value is None

    def test_none_class_value_not_pushed(self):
        class_var, (instance_var,) = make_pair()
        instance_var.calculate(3)
        class_var.set(None, USER)
        assert instance_var.value == 3


class TestScheduling:
    def test_dual_scheduled_on_implicit_agenda(self, context):
        class_var, (instance_var,) = make_pair()
        with context._round_scope():
            class_var.propagate_variable(instance_var)
            counts = context.scheduler.pending_counts()
            assert counts[IMPLICIT] == 1

    def test_gate_respected(self, context):
        class Gated(ClassInstVar):
            def permits_changes_by_implicit_propagation(self):
                return False

        gated = Gated(name="gated")
        with context._round_scope():
            gated.propagate_variable(Variable())
            assert context.scheduler.is_empty()

    def test_implicit_propagation_ordering(self, context):
        """Implicit hops settle after same-level functional constraints."""
        from repro.core import UniAdditionConstraint

        class_var, (instance_var,) = make_pair()
        source = Variable(name="source", context=context)
        one = Variable(1, name="one", context=context)
        UniAdditionConstraint(class_var, [source, one])
        source.set(10)
        assert class_var.value == 11
        assert instance_var.value == 11


class TestConsistencyChecking:
    def test_inconsistent_instance_flagged(self):
        class Checked(InstanceInstVar):
            def consistent_with_class(self):
                if self.class_var is None or self.class_var.value is None \
                        or self.value is None:
                    return True
                return self.value >= self.class_var.value

        class_var = ClassInstVar(name="classVar")
        instance_var = Checked(name="instVar")
        class_var.register_instance_var(instance_var)
        instance_var.set(5, USER)
        # class characteristic exceeding the instance's value violates
        assert not class_var.set(10)
        assert class_var.value is None

    def test_consistent_instance_accepted(self):
        class_var, (instance_var,) = make_pair()
        instance_var.set(5, USER)
        assert class_var.calculate(5)

    def test_default_consistency_is_permissive(self):
        class_var, (instance_var,) = make_pair()
        instance_var.set(5, USER)
        assert class_var.is_satisfied()
