"""Tests for the Cell Browser front-end (chapter 8 interaction)."""

import pytest

from repro.core import ConstraintEditor, UpperBoundConstraint
from repro.stem import CellClass, Rect
from repro.stem.browser import CellBrowser
from repro.stem.library import CellLibrary
from repro.stem.types import INTEGER_SIGNAL


@pytest.fixture
def world():
    library = CellLibrary("bench")
    add = library.define("ADD", is_generic=True)
    add.define_signal("x", "in", data_type=INTEGER_SIGNAL, bit_width=8)
    add.define_signal("y", "out")
    add.declare_delay("x", "y", estimate=5.0)
    add.set_bounding_box(Rect.of_extent(10, 10))
    rc = library.define("ADD.RC", add)
    rc.delay_var("x", "y").set(8.0)
    rc.set_bounding_box(Rect.of_extent(10, 10))
    cs = library.define("ADD.CS", add)
    cs.delay_var("x", "y").set(5.0)
    cs.set_bounding_box(Rect.of_extent(22, 10))

    top = library.define("TOP")
    top.add_parameter("width", low=1, high=64, default=8)
    instance = add.instantiate(top, "A1")
    instance.bounding_box_var.set(Rect.of_extent(25, 10))
    UpperBoundConstraint(instance.delay_var("x", "y"), 6.0)
    return library, top, instance, rc, cs


class TestNavigation:
    def test_cell_list(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        assert browser.cells() == ["ADD", "ADD.CS", "ADD.RC", "TOP"]

    def test_open(self, world):
        library, top, *_ = world
        browser = CellBrowser(library)
        assert browser.open("TOP") is top
        assert browser.current is top

    def test_actions_require_open_cell(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        with pytest.raises(RuntimeError):
            browser.interface_pane()


class TestPanes:
    def test_interface_pane(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        browser.open("ADD")
        text = browser.interface_pane()
        assert "cell ADD (generic)" in text
        assert "x          in" in text
        assert "IntegerSignal" in text
        assert "8b" in text
        assert "x->y: 5.0" in text
        assert "boundingBox:" in text

    def test_interface_shows_superclass_and_parameters(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        browser.open("ADD.RC")
        assert "superclass: ADD" in browser.interface_pane()
        browser.open("TOP")
        assert "width:" in browser.interface_pane()

    def test_structure_pane(self, world):
        library, top, *_ = world
        browser = CellBrowser(library)
        browser.open("TOP")
        text = browser.structure_pane()
        assert "A1: ADD" in text
        browser.open("ADD")
        assert "(leaf cell)" in browser.structure_pane()


class TestActions:
    def test_edit_variable_opens_editor(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        browser.open("ADD")
        editor = browser.edit_variable("delay(x->y)")
        assert isinstance(editor, ConstraintEditor)
        assert "5.0" in editor.show()

    def test_select_module_menu_action(self, world):
        library, top, instance, rc, cs = world
        browser = CellBrowser(library)
        browser.open("TOP")
        # the 6.0 delay budget admits only the carry-select adder
        result = browser.select_module("A1")
        assert result == [cs]
        # no automatic replacement (thesis chapter 8)
        assert instance in top.subcells
        assert instance.cell_class.name == "ADD"

    def test_unknown_instance(self, world):
        library, *_ = world
        browser = CellBrowser(library)
        browser.open("TOP")
        with pytest.raises(KeyError):
            browser.select_module("GHOST")

    def test_menu_dispatch(self, world):
        library, top, instance, rc, cs = world
        browser = CellBrowser(library)
        assert "select module" in browser.menu()
        browser.perform("open cell", "TOP")
        assert browser.current is top
        text = browser.perform("show structure")
        assert "A1" in text
        result = browser.perform("select module", "A1")
        assert result == [cs]
