"""Tests for io-signals, pins and nets (electrical/connectivity model)."""

import pytest

from repro.stem import CellClass, IOSignal, Net, PinSpec, Point, Rect


class TestPinSpec:
    @pytest.mark.parametrize("side,expected", [
        ("left", Point(0, 5)),
        ("right", Point(10, 5)),
        ("bottom", Point(5, 0)),
        ("top", Point(5, 10)),
    ])
    def test_point_on_each_side(self, side, expected):
        box = Rect.of_extent(10, 10)
        assert PinSpec(side, 0.5).point_on(box) == expected

    def test_fractional_positions(self):
        box = Rect.of_extent(10, 4)
        assert PinSpec("bottom", 0.25).point_on(box) == Point(2.5, 0)
        assert PinSpec("left", 1.0).point_on(box) == Point(0, 4)

    def test_offset_box(self):
        box = Rect.of_extent(4, 4, Point(10, 20))
        assert PinSpec("left", 0.5).point_on(box) == Point(10, 22)

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            PinSpec("middle")

    def test_invalid_position(self):
        with pytest.raises(ValueError):
            PinSpec("left", 1.5)

    def test_equality(self):
        assert PinSpec("left", 0.5) == PinSpec("left", 0.5)
        assert PinSpec("left", 0.5) != PinSpec("left", 0.25)


class TestIOSignalDefaults:
    def test_default_pin_side_by_direction(self):
        cell = CellClass("C")
        assert cell.define_signal("i", "in").pins[0].side == "left"
        assert cell.define_signal("o", "out").pins[0].side == "right"
        assert cell.define_signal("io", "inout").pins[0].side == "bottom"

    def test_pin_points(self):
        cell = CellClass("C2")
        signal = cell.define_signal("i", "in",
                                    pins=[PinSpec("left", 0.25),
                                          PinSpec("left", 0.75)])
        points = signal.pin_points(Rect.of_extent(2, 8))
        assert points == [Point(0, 2), Point(0, 6)]

    def test_repr(self):
        cell = CellClass("C3")
        signal = cell.define_signal("i", "in")
        assert "C3.i" in repr(signal)


def three_party_net():
    """driver.out --net-- sink1.in, sink2.in inside TOP, plus TOP ios."""
    driver = CellClass("DRIVER")
    driver.define_signal("o", "out", output_resistance=2e3)
    sink = CellClass("SINK")
    sink.define_signal("i", "in", load_capacitance=3e-12)
    top = CellClass("TOP")
    top.define_signal("tap", "out")
    d = driver.instantiate(top, "d")
    s1 = sink.instantiate(top, "s1")
    s2 = sink.instantiate(top, "s2")
    net = top.add_net("n")
    net.connect(d, "o")
    net.connect(s1, "i")
    net.connect(s2, "i")
    net.connect_io("tap")
    return top, net, d, s1, s2


class TestNetDirections:
    def test_drivers(self):
        top, net, d, s1, s2 = three_party_net()
        assert net.drivers() == [(d, "o")]

    def test_receivers_include_parent_output(self):
        top, net, d, s1, s2 = three_party_net()
        receivers = net.receivers()
        assert (s1, "i") in receivers
        assert (s2, "i") in receivers
        assert (None, "tap") in receivers  # parent 'out' io is fed by the net

    def test_parent_input_drives(self):
        top = CellClass("T2")
        top.define_signal("x", "in")
        sink = CellClass("S2")
        sink.define_signal("i", "in")
        s = sink.instantiate(top, "s")
        net = top.add_net("n")
        net.connect_io("x")
        net.connect(s, "i")
        assert net.drivers() == [(None, "x")]

    def test_inout_is_both(self):
        top = CellClass("T3")
        part = CellClass("P3")
        part.define_signal("b", "inout")
        p = part.instantiate(top, "p")
        net = top.add_net("n")
        net.connect(p, "b")
        assert net.drivers() == [(p, "b")]
        assert net.receivers() == [(p, "b")]

    def test_rc_figures(self):
        top, net, d, s1, s2 = three_party_net()
        assert net.driving_resistance() == 2e3
        assert net.load_capacitance() == pytest.approx(6e-12)

    def test_empty_net_rc(self):
        top = CellClass("T4")
        net = top.add_net("n")
        assert net.driving_resistance() == 0.0
        assert net.load_capacitance() == 0.0


class TestConnectionBookkeeping:
    def test_duplicate_connect_is_idempotent(self):
        top, net, d, s1, s2 = three_party_net()
        assert net.connect(s1, "i")
        assert net.endpoints.count((s1, "i")) == 1

    def test_unknown_signal_rejected(self):
        top, net, d, s1, s2 = three_party_net()
        with pytest.raises(KeyError):
            net.connect(d, "nope")
        with pytest.raises(KeyError):
            net.connect_io("nope")

    def test_instance_connection_registry(self):
        top, net, d, s1, s2 = three_party_net()
        assert d.net_on("o") is net
        assert s1.net_on("i") is net
        assert top.io_connections["tap"] is net

    def test_disconnect_clears_registry(self):
        top, net, d, s1, s2 = three_party_net()
        net.disconnect(s1, "i")
        assert s1.net_on("i") is None
        assert (s1, "i") not in net.endpoints

    def test_net_repr(self):
        top, net, *_ = three_party_net()
        assert "TOP.n" in repr(net)

    def test_duplicate_net_name_rejected(self):
        top, *_ = three_party_net()
        with pytest.raises(ValueError):
            top.add_net("n")

    def test_auto_net_names(self):
        top = CellClass("T5")
        first = top.add_net()
        second = top.add_net()
        assert first.name != second.name
