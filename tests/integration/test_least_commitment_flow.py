"""Integration: the full least-commitment design flow (thesis chapter 1).

The end-to-end story the thesis motivates, across every subsystem:

1. declare a generic adder family with ideal estimates (chapter 8);
2. assemble a datapath using the generic, with top-level delay and area
   specifications (chapters 5, 7);
3. evaluate early — before any realization is chosen — via estimates
   propagating hierarchically;
4. let bottom-up characteristics refine specifications (the
   least-commitment interaction);
5. use interval satisfaction to compute the slack available to the
   still-undecided component (section 9.3 extension);
6. run module selection / ranking and commit the winner;
7. persist the design and confirm constraints still bite after reload.
"""

import pytest

from repro.core import (
    IntervalSolver,
    UpperBoundConstraint,
    reset_default_context,
)
from repro.selection import ModuleSelector, RankedSelector
from repro.stem import CellClass, Rect
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads

NS = 1.0  # work in abstract ns units


@pytest.fixture
def flow():
    library = CellLibrary("flow")

    add = library.define("ADD", is_generic=True)
    add.define_signal("x", "in")
    add.define_signal("y", "out")
    add.declare_delay("x", "y", estimate=50 * NS)  # ideal (fastest child)
    add.set_bounding_box(Rect.of_extent(10, 10))   # ideal (smallest child)

    rc = library.define("ADD.RC", add)
    rc.delay_var("x", "y").set(80 * NS)
    rc.set_bounding_box(Rect.of_extent(10, 10))
    cs = library.define("ADD.CS", add)
    cs.delay_var("x", "y").set(50 * NS)
    cs.set_bounding_box(Rect.of_extent(22, 10))

    reg = library.define("REG")
    reg.define_signal("d", "in")
    reg.define_signal("q", "out")
    reg.declare_delay("d", "q", estimate=60 * NS)

    datapath = library.define("DATAPATH")
    datapath.define_signal("in1", "in")
    datapath.define_signal("out1", "out")
    spec = datapath.declare_delay("in1", "out1")
    UpperBoundConstraint(spec, 160 * NS)

    r = reg.instantiate(datapath, "R1")
    a = add.instantiate(datapath, "A1")
    n0 = datapath.add_net("n0"); n0.connect_io("in1"); n0.connect(r, "d")
    n1 = datapath.add_net("n1"); n1.connect(r, "q"); n1.connect(a, "x")
    n2 = datapath.add_net("n2"); n2.connect(a, "y"); n2.connect_io("out1")
    a.bounding_box_var.set(Rect.of_extent(25, 10))
    datapath.build_delay_network()
    return library, datapath, r, a


class TestEarlyEvaluation:
    def test_estimates_give_early_feedback(self, flow):
        library, datapath, r, a = flow
        # evaluation works before any adder realization exists
        assert datapath.delay_var("in1", "out1").value == \
            pytest.approx(110 * NS)

    def test_violating_early_estimate_caught(self, flow):
        library, datapath, r, a = flow
        # a pessimistic adder estimate breaks the 160ns budget immediately
        assert not library.cell("ADD").delay_var("x", "y").calculate(120 * NS)


class TestBottomUpRefinement:
    def test_register_characteristic_shrinks_adder_slack(self, flow):
        library, datapath, r, a = flow
        # the register's measured delay comes in worse than estimated
        assert library.cell("REG").delay_var("d", "q").calculate(90 * NS)
        assert datapath.delay_var("in1", "out1").value == \
            pytest.approx(140 * NS)

    def test_interval_slack_analysis(self, flow):
        """Least commitment made quantitative: the adder instance's
        implicit specification is whatever the budget leaves over."""
        from repro.core import variable_consequences

        library, datapath, r, a = flow
        library.cell("REG").delay_var("d", "q").calculate(90 * NS)
        adder_delay = a.delay_var("x", "y")
        saved = adder_delay.value
        # dependency-directed erasure: forget the adder figure and every
        # value derived from it, then ask what the budget leaves over
        dependents = variable_consequences(adder_delay)
        adder_delay.reset()
        for dependent in dependents:
            dependent.reset()
        solver = IntervalSolver([datapath.delay_var("in1", "out1")])
        solver.solve()
        # 160 budget - 90 register = 70 available to the adder
        assert solver.interval_of(adder_delay).high == pytest.approx(70 * NS)
        adder_delay.calculate(saved)


class TestSelectionAndCommit:
    def test_selection_respects_refined_context(self, flow):
        library, datapath, r, a = flow
        # 160 - 60(reg estimate) = 100: both adders fit initially
        both = ModuleSelector().select_realizations_for(a)
        assert {c.name for c in both} == {"ADD.RC", "ADD.CS"}
        # after the register slips to 90ns, only the fast adder fits
        library.cell("REG").delay_var("d", "q").calculate(90 * NS)
        fast_only = ModuleSelector().select_realizations_for(a)
        assert {c.name for c in fast_only} == {"ADD.CS"}

    def test_ranking_prefers_small_when_both_fit(self, flow):
        library, datapath, r, a = flow
        selector = RankedSelector(weights={"area": 1.0})
        assert selector.best(a) is library.cell("ADD.RC")

    def test_commit_winner_and_verify(self, flow):
        library, datapath, r, a = flow
        library.cell("REG").delay_var("d", "q").calculate(90 * NS)
        (winner,) = ModuleSelector().select_realizations_for(a)
        # commit: replace the generic instance with the winner
        datapath.remove_cell(a)
        chosen = winner.instantiate(datapath, "A1r")
        datapath.net("n1").connect(chosen, "x")
        datapath.net("n2").connect(chosen, "y")
        assert datapath.delay_value("in1", "out1") == pytest.approx(140 * NS)


class TestPersistedFlow:
    def test_reload_and_continue(self, flow):
        library, datapath, r, a = flow
        text = dumps(library)
        restored = loads(text, context=reset_default_context())
        datapath2 = restored.cell("DATAPATH")
        spec = datapath2.declare_delay("in1", "out1") \
            if ("in1", "out1") not in datapath2.delays else \
            datapath2.delay_var("in1", "out1")
        UpperBoundConstraint(spec, 160 * NS)
        # persisted values are restored, so the lazy build doesn't fire:
        # reconstruct the delay network explicitly to re-arm checking
        datapath2.build_delay_network()
        assert datapath2.delay_value("in1", "out1") == pytest.approx(110 * NS)
        # the reloaded design still rejects a violating refinement
        assert not restored.cell("ADD").delay_var("x", "y").calculate(120 * NS)
