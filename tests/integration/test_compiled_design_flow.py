"""Integration: compiled structure + typing + ERC + views + SPICE.

A compiled datapath exercises chapter 6's application integrations on
one design: module compilation creates the structure, net typing checks
the connections, electrical rules check drive strength, a SpiceNet view
tracks the edits, and the delay characteristics flow up to a spec.
"""

import pytest

from repro.checking import check_cell, watch_net
from repro.core import UpperBoundConstraint, USER
from repro.spice import DC, Pulse, SpiceNet, SpiceSimulation, capacitor, resistor
from repro.spice.simulator import HAVE_NUMPY
from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import CompilerView, VectorCompiler
from repro.stem.types import DIGITAL, INTEGER_SIGNAL


def stage_cell(name="STAGE"):
    cell = CellClass(name)
    cell.define_signal("cin", "in", data_type=INTEGER_SIGNAL,
                       electrical_type=DIGITAL, bit_width=1,
                       load_capacitance=1e-12,
                       pins=[PinSpec("left", 0.5)])
    cell.define_signal("cout", "out", data_type=INTEGER_SIGNAL,
                       electrical_type=DIGITAL, bit_width=1,
                       output_resistance=1e3, max_load_capacitance=3e-12,
                       pins=[PinSpec("right", 0.5)])
    cell.declare_delay("cin", "cout", estimate=5.0)
    cell.set_bounding_box(Rect.of_extent(4, 4))
    # internal wire so typing and delays flow through
    wire = cell.add_net("w")
    wire.connect_io("cin")
    wire.connect_io("cout")
    return cell


class TestCompiledChain:
    def build(self, stages=4):
        cell = stage_cell()
        word = CellClass("WORD")
        word.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
        word.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
        word.declare_delay("cin", "cout")
        instances = VectorCompiler(cell, stages).compile_into(word)
        # wire the word-level ios to the chain ends
        nin = word.add_net("nin")
        nin.connect_io("cin"); nin.connect(instances[0], "cin")
        nout = word.add_net("nout")
        nout.connect(instances[-1], "cout"); nout.connect_io("cout")
        return cell, word, instances

    def test_typing_flows_through_compiled_chain(self):
        cell, word, instances = self.build()
        assert word.signal("cin").data_type_var.value is INTEGER_SIGNAL
        assert word.signal("cout").bit_width_var.value == 1

    def test_delay_spec_on_compiled_word(self):
        cell, word, instances = self.build(4)
        UpperBoundConstraint(word.delay_var("cin", "cout"), 30.0)
        # loading: stage cin presents 1pF, driver R=1k -> +1ns per link
        value = word.delay_value("cin", "cout")
        assert value == pytest.approx(
            sum(i.delay_var("cin", "cout").value for i in instances))
        # a slower stage characteristic violates the word spec
        assert not cell.delay_var("cin", "cout").calculate(9.0)

    def test_erc_on_compiled_nets(self):
        cell, word, instances = self.build(4)
        findings = check_cell(word)
        assert findings == []  # 1pF load vs 3pF capability: fine

    def test_erc_catches_overloaded_fanout_wiring(self):
        cell, word, instances = self.build(4)
        # short the whole carry bus together: one driver now sees 4 x 1pF,
        # beyond its 3pF drive capability
        bus = word.add_net("bus")
        for instance in instances:
            bus.connect(instance, "cin")
        bus.connect(instances[0], "cout")
        overloaded = [f for f in check_cell(word) if f.rule == "overload"]
        assert overloaded

    def test_compiler_views_track_structure_edits(self):
        cell, word, instances = self.build(2)
        view = CompilerView(instances[0])
        assert view.pins_on("left")
        cell.set_bounding_box(Rect.of_extent(6, 6))
        # cache erased by the layout broadcast; recalculated on demand
        assert view.bounding_box() is not None

    def test_spice_view_outdates_on_structure_change(self):
        """A SpiceNet over an RC cell tracks edits of the compiled design."""
        rc = CellClass("RCLOAD")
        rc.define_signal("p", "in")
        rc.define_signal("gnd", "inout")
        r = resistor(1e3, name="Rx").instantiate(rc, "R1")
        c = capacitor(1e-12, name="Cx").instantiate(rc, "C1")
        n1 = rc.add_net("n1"); n1.connect_io("p"); n1.connect(r, "p")
        n2 = rc.add_net("n2"); n2.connect(r, "n"); n2.connect(c, "p")
        gnd = rc.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(c, "n")
        view = SpiceNet(rc)
        assert len(view.data.cards) == 2
        extra = capacitor(2e-12, name="Cy").instantiate(rc, "C2")
        n2.connect(extra, "p")
        gnd.connect(extra, "n")
        assert view.outdated
        assert len(view.data.cards) == 3

    @pytest.mark.skipif(not HAVE_NUMPY,
                        reason="running simulations needs the numpy solver")
    def test_simulation_of_edited_design(self):
        rc = CellClass("RC2")
        rc.define_signal("vin", "in")
        rc.define_signal("gnd", "inout")
        r = resistor(1e3, name="Ra").instantiate(rc, "R1")
        c = capacitor(10e-12, name="Ca").instantiate(rc, "C1")
        n1 = rc.add_net("n1"); n1.connect_io("vin"); n1.connect(r, "p")
        n2 = rc.add_net("n2"); n2.connect(r, "n"); n2.connect(c, "p")
        gnd = rc.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(c, "n")
        sim = SpiceSimulation(rc)
        sim.add_source("n1", DC(5.0))
        sim.set_tran(1e-9, 200e-9)
        sim.run()
        first = sim.output.final_value(sim.node_of("n2"))
        assert first == pytest.approx(5.0, rel=0.01)
        # double the load: simulation flagged stale, rerun converges slower
        extra = capacitor(10e-12, name="Cb").instantiate(rc, "C2")
        n2.connect(extra, "p"); gnd.connect(extra, "n")
        assert sim.outdated
        sim.set_tran(1e-9, 50e-9)
        sim.run()
        partial = sim.output.final_value(sim.node_of("n2"))
        assert partial < 5.0  # 20pF through 1k has not settled in 50ns
