"""Regression tests for review findings (connectivity validity feedback,
inherited-signal persistence)."""

import pytest

from repro.core import UpperBoundConstraint, reset_default_context
from repro.stem import CellClass, PinSpec, Rect
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads


class TestConnectValidityFeedback:
    def test_loading_violation_surfaces_through_connect(self):
        """A connect whose RC re-adjustment busts a delay budget must
        report False, not silently roll back."""
        driver = CellClass("DRV")
        driver.define_signal("a", "in")
        driver.define_signal("y", "out", output_resistance=1e3)
        driver.declare_delay("a", "y", estimate=10e-9)

        heavy_sink = CellClass("HEAVY")
        heavy_sink.define_signal("i", "in", load_capacitance=20e-12)

        top = CellClass("TOP")
        # the parent input drives d's input with a 1k source resistance
        top.define_signal("in1", "in", output_resistance=1e3)
        d = driver.instantiate(top, "d")
        s = heavy_sink.instantiate(top, "s")
        # the instance delay budget admits the bare estimate only
        UpperBoundConstraint(d.delay_var("a", "y"), 12e-9)
        nin = top.add_net("nin")
        nin.connect_io("in1")
        nin.connect(d, "a")
        nout = top.add_net("nout")
        assert nout.connect(d, "y")  # no load yet: fine
        # 10ns + 1k * 20pF = 30ns > 12ns: the connect must report failure
        assert not nout.connect(s, "i")
        # the connection itself is recorded (designer repairs), but the
        # violating adjustment was rolled back
        assert (s, "i") in nout.endpoints
        assert d.delay_var("a", "y").value == pytest.approx(10e-9)

    def test_acceptable_loading_still_reports_success(self):
        driver = CellClass("DRV2")
        driver.define_signal("a", "in")
        driver.define_signal("y", "out", output_resistance=1e3)
        driver.declare_delay("a", "y", estimate=10e-9)
        sink = CellClass("LIGHT")
        sink.define_signal("i", "in", load_capacitance=1e-12)
        top = CellClass("TOP2")
        top.define_signal("in1", "in", output_resistance=1e3)
        d = driver.instantiate(top, "d")
        s = sink.instantiate(top, "s")
        UpperBoundConstraint(d.delay_var("a", "y"), 12e-9)
        nin = top.add_net("nin")
        nin.connect_io("in1")
        nin.connect(d, "a")
        net = top.add_net("n")
        assert net.connect(d, "y")
        assert net.connect(s, "i")  # 11ns fits
        assert d.delay_var("a", "y").value == pytest.approx(11e-9)


class TestInheritedSignalPersistence:
    def test_subclass_signal_overrides_survive_reload(self):
        library = CellLibrary("inherit")
        base = library.define("BASE")
        base.define_signal("y", "out", output_resistance=1e3,
                           pins=[PinSpec("right", 0.5)])
        fast = library.define("FAST", base)
        # the subclass re-characterises the inherited signal
        fast_signal = fast.signal("y")
        fast_signal.output_resistance = 250.0
        fast_signal.max_fanout = 2
        fast_signal.pins = [PinSpec("top", 0.25)]

        restored = loads(dumps(library), context=reset_default_context())
        restored_signal = restored.cell("FAST").signal("y")
        assert restored_signal.output_resistance == 250.0
        assert restored_signal.max_fanout == 2
        assert restored_signal.pins == [PinSpec("top", 0.25)]
        # and the superclass kept its own characterisation
        assert restored.cell("BASE").signal("y").output_resistance == 1e3
        assert restored.cell("BASE").signal("y").pins == \
            [PinSpec("right", 0.5)]
