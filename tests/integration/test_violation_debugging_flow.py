"""Integration: the violation-handling / debugging workflow (section 5.2).

When a constraint violation occurs, STEM offers the designer "debug" —
open a constraint editor on the violated constraint — or "proceed".  The
designer can then walk the network, trace the antecedents of the
offending value, relax the violated constraint, disable propagation for
bulk edits, or disable just the one constraint and continue.
"""

import pytest

from repro.core import (
    ConstraintEditor,
    EqualityConstraint,
    UniAdditionConstraint,
    UpperBoundConstraint,
    Variable,
    control_for,
    default_context,
)


def budget_network():
    """Two components summing into a budgeted total."""
    part_a = Variable(name="part_a")
    part_b = Variable(name="part_b")
    total = Variable(name="total")
    UniAdditionConstraint(total, [part_a, part_b])
    budget = UpperBoundConstraint(total, 100)
    part_a.set(60)
    return part_a, part_b, total, budget


class TestDebugFlow:
    def test_violation_report_names_the_constraint(self, context):
        part_a, part_b, total, budget = budget_network()
        assert not part_b.set(50)
        record = context.handler.last
        assert record is not None
        assert record.constraint is budget

    def test_editor_inspects_violated_constraint(self, context):
        part_a, part_b, total, budget = budget_network()
        part_b.set(50)
        editor = ConstraintEditor(context.handler.last.constraint)
        text = editor.show()
        assert "100" in text
        assert "satisfied: True" in text  # restored state satisfies again

    def test_trace_antecedents_of_offender(self):
        part_a, part_b, total, budget = budget_network()
        part_b.set(30)  # accepted: total = 90
        editor = ConstraintEditor(total)
        antecedents = editor.antecedents()
        assert part_a in antecedents
        assert part_b in antecedents

    def test_fix_by_relaxing_the_spec(self):
        """The designer relaxes the violated constraint and retries."""
        part_a, part_b, total, budget = budget_network()
        assert not part_b.set(50)
        editor = ConstraintEditor(budget)
        editor.remove_focused_constraint()
        UpperBoundConstraint(total, 120)
        assert part_b.set(50)
        assert total.value == 110

    def test_fix_by_changing_the_design(self):
        part_a, part_b, total, budget = budget_network()
        assert not part_b.set(50)
        assert part_a.set(40)       # shrink the other component
        assert part_b.set(50)       # now it fits
        assert total.value == 90

    def test_bulk_edit_with_propagation_disabled(self, context):
        """Section 5.3: extensive revisions with checking off, then fix
        everything before re-enabling."""
        part_a, part_b, total, budget = budget_network()
        with context.propagation_disabled():
            part_a.set(90)   # transiently violating
            part_b.set(80)
            part_a.set(30)   # ...until the design settles
            part_b.set(50)
        assert part_a.set(30)  # re-enabled: consistent edits accepted
        assert total.value == 80

    def test_disable_single_constraint_and_proceed(self, context):
        """Fine-grained control: silence only the violated constraint."""
        part_a, part_b, total, budget = budget_network()
        assert not part_b.set(50)
        control_for(context).disable_constraint(budget)
        assert part_b.set(50)
        assert total.value == 110  # the sum still derives
        control_for(context).enable_constraint(budget)
        assert not part_a.set(61)  # checking is back

    def test_editor_assignment_participates_in_checking(self):
        part_a, part_b, total, budget = budget_network()
        editor = ConstraintEditor(part_b)
        assert not editor.assign(50)
        assert editor.assign(40)
        assert total.value == 100
