"""Integration: persistence of compiled and simulated designs."""

import pytest

from repro.core import reset_default_context
from repro.spice import DC, SpiceSimulation, capacitor, resistor
from repro.spice.simulator import HAVE_NUMPY
from repro.stem import CellClass, PinSpec, Rect
from repro.stem.compilers import VectorCompiler
from repro.stem.library import CellLibrary
from repro.stem.persistence import dumps, loads


class TestCompiledDesignRoundTrip:
    def build(self):
        library = CellLibrary("compiled")
        slice_cell = library.define("SLICE")
        slice_cell.define_signal("cin", "in", pins=[PinSpec("left", 0.5)])
        slice_cell.define_signal("cout", "out", pins=[PinSpec("right", 0.5)])
        slice_cell.set_bounding_box(Rect.of_extent(4, 4))
        word = library.define("WORD")
        VectorCompiler(slice_cell, 4).compile_into(word)
        return library, slice_cell, word

    def test_compiled_structure_round_trips(self):
        library, slice_cell, word = self.build()
        restored = loads(dumps(library), context=reset_default_context())
        word2 = restored.cell("WORD")
        assert len(word2.subcells) == 4
        assert len(word2.nets) == 3  # the carry chain
        # placements preserved
        xs = sorted(i.bounding_box().origin.x for i in word2.subcells)
        assert xs == [0.0, 4.0, 8.0, 12.0]

    def test_restored_carry_chain_connectivity(self):
        library, slice_cell, word = self.build()
        restored = loads(dumps(library), context=reset_default_context())
        word2 = restored.cell("WORD")
        for net in word2.nets.values():
            signals = sorted(signal for _, signal in net.endpoints)
            assert signals == ["cin", "cout"]

    def test_restored_bbox_recalculates(self):
        library, slice_cell, word = self.build()
        restored = loads(dumps(library), context=reset_default_context())
        assert restored.cell("WORD").bounding_box() == Rect.of_extent(16, 4)


class TestSimulatedDesignRoundTrip:
    def build(self):
        library = CellLibrary("analog")
        rc = library.define("RC")
        rc.define_signal("vin", "in")
        rc.define_signal("gnd", "inout")
        r = library.register(resistor(2e3, name="R2k",
                                      context=library.context))
        c = library.register(capacitor(5e-12, name="C5p",
                                       context=library.context))
        ri = r.instantiate(rc, "R1")
        ci = c.instantiate(rc, "C1")
        n1 = rc.add_net("n1"); n1.connect_io("vin"); n1.connect(ri, "p")
        n2 = rc.add_net("n2"); n2.connect(ri, "n"); n2.connect(ci, "p")
        gnd = rc.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(ci, "n")
        return library

    @pytest.mark.skipif(not HAVE_NUMPY,
                        reason="running simulations needs the numpy solver")
    def test_simulate_after_reload(self):
        library = self.build()
        restored = loads(dumps(library), context=reset_default_context())
        sim = SpiceSimulation(restored.cell("RC"))
        sim.add_source("n1", DC(3.0))
        sim.set_tran(1e-9, 200e-9)
        sim.run()
        assert sim.output.final_value(sim.node_of("n2")) == \
            pytest.approx(3.0, rel=0.01)

    def test_device_parameters_survive(self):
        library = self.build()
        # size one device per-instance before saving
        rc = library.cell("RC")
        r1 = next(i for i in rc.subcells if i.name == "R1")
        r1.set_parameter("value", 4e3)
        restored = loads(dumps(library), context=reset_default_context())
        r1b = next(i for i in restored.cell("RC").subcells
                   if i.name == "R1")
        assert r1b.parameter_value("value") == 4e3
        from repro.spice import extract_netlist
        netlist = extract_netlist(restored.cell("RC"))
        r_card = next(card for card in netlist.cards if card.kind == "R")
        assert r_card.parameters["value"] == 4e3
