"""Integration: concurrent views of one model stay consistent (§1.2).

The thesis requires the environment to "allow concurrent execution of
design tools ... (e.g., concurrent editing of a design in two separate
windows)".  Two views over the same cell — edited through either — must
both observe every change; aspect filtering must not leak stale data.
"""

import pytest

from repro.consistency import Controller, FunctionView
from repro.spice import SpiceNet, capacitor, resistor
from repro.stem import CellClass, Rect


def rc_cell():
    cell = CellClass("RCMVC")
    cell.define_signal("p", "in")
    cell.define_signal("gnd", "inout")
    r = resistor(1e3, name="Rm").instantiate(cell, "R1")
    c = capacitor(1e-12, name="Cm").instantiate(cell, "C1")
    n1 = cell.add_net("n1"); n1.connect_io("p"); n1.connect(r, "p")
    n2 = cell.add_net("n2"); n2.connect(r, "n"); n2.connect(c, "p")
    gnd = cell.add_net("gnd"); gnd.connect_io("gnd"); gnd.connect(c, "n")
    return cell


class TestTwoWindows:
    def test_edit_through_one_window_updates_the_other(self):
        cell = rc_cell()
        window_a = FunctionView(cell, lambda m: len(m.subcells))
        window_b = FunctionView(cell, lambda m: sorted(m.nets))
        controller_a = Controller(cell, window_a)
        controller_a.add_action(
            "add cap",
            lambda model: capacitor(2e-12, name="Cm2",
                                    context=model.context)
            .instantiate(model, "C2"))
        assert window_a.data == 2
        assert window_b.data == ["gnd", "n1", "n2"]

        controller_a.perform("add cap")
        # both windows see the structural edit
        assert window_a.outdated and window_b.outdated
        assert window_a.data == 3

    def test_netlist_window_and_structure_window_stay_consistent(self):
        cell = rc_cell()
        netlist_window = SpiceNet(cell)
        count_window = FunctionView(cell, lambda m: len(m.subcells))
        assert len(netlist_window.data.cards) == count_window.data == 2
        extra = capacitor(3e-12, name="Cm3",
                          context=cell.context).instantiate(cell, "C3")
        cell.net("n2").connect(extra, "p")
        cell.net("gnd").connect(extra, "n")
        assert len(netlist_window.data.cards) == count_window.data == 3

    def test_aspect_filter_does_not_leak_stale_data(self):
        cell = rc_cell()
        layout_window = FunctionView(
            cell, lambda m: m.bounding_box(), aspects=["layout"])
        netlist_window = SpiceNet(cell)
        netlist_window.data
        # a pure-layout change refreshes the layout window only
        cell.set_bounding_box(Rect.of_extent(30, 30))
        assert layout_window.data == Rect.of_extent(30, 30)
        assert not netlist_window.outdated

    def test_released_window_stops_observing_but_other_continues(self):
        cell = rc_cell()
        a = FunctionView(cell, lambda m: len(m.subcells))
        b = FunctionView(cell, lambda m: len(m.subcells))
        a.data; b.data
        a.release()
        capacitor(9e-12, name="Cm9",
                  context=cell.context).instantiate(cell, "C9")
        assert not a.outdated
        assert b.outdated and b.data == 3
