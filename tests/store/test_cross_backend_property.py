"""Cross-backend twin property (Hypothesis).

One arbitrary operation sequence, applied to a fresh session on each
backend: every backend must land the identical ``fingerprint()``
(including replay stats) and the identical journal logical position.
The bytes live in different shapes — files, sqlite rows, object
chunks — but the durable *history* they encode is one and the same.
"""

import shutil
import tempfile

from hypothesis import given, settings, strategies as st

from repro.session import Session
from repro.store import STORE_BACKENDS, resolve_store

VARS = 4

ops = st.lists(
    st.one_of(
        st.tuples(st.just("assign"), st.integers(0, VARS - 1),
                  st.integers(-50, 50)),
        st.tuples(st.just("checkpoint")),
    ),
    min_size=1, max_size=25)


def run(kind, root, sequence):
    store = resolve_store(kind, root)
    try:
        session = Session("twin", store=store.session("twin"),
                          segment_max_bytes=256)
        for index in range(VARS):
            session.make_variable(f"x{index}")
        session.add_constraint("equality", ["v:x0", "v:x1"])
        for op in sequence:
            if op[0] == "assign":
                session.assign(f"v:x{op[1]}", op[2])
            else:
                session.checkpoint()
        live = session.fingerprint()
        session.close()

        reopened = Session("twin", store=store.session("twin"),
                           read_only=True)
        recovered = reopened.fingerprint()
        position = reopened.position
        reopened.close()
        return live, recovered, position
    finally:
        store.close()


@settings(max_examples=25, deadline=None)
@given(sequence=ops)
def test_every_backend_encodes_the_same_history(sequence):
    results = {}
    for kind in STORE_BACKENDS:
        root = tempfile.mkdtemp(prefix=f"twin-{kind}-")
        try:
            results[kind] = run(kind, root, sequence)
        finally:
            shutil.rmtree(root, ignore_errors=True)

    file_live, file_recovered, file_position = results["file"]
    # Recovery is exact on every backend...
    for kind, (live, recovered, position) in results.items():
        assert recovered == live, f"[{kind}] recovery drifted from live"
    # ...and the backends agree with each other, byte shapes aside.
    for kind in ("sqlite", "object"):
        live, recovered, position = results[kind]
        assert live == file_live, f"[{kind}] fingerprint != file backend"
        assert position == file_position, \
            f"[{kind}] journal position != file backend"
