"""The ``--store`` seam end to end.

``SessionManager`` accepts a backend spec (or an already-built store),
every session it opens lands on that backend, ``serve --store`` threads
the spec through the server, and health/stats frames report which
backend is underneath so operators can see it.  The CLI's
``session-verify`` / ``store-scrub`` / ``store-compact`` speak the same
grammar.
"""

import io
import os
import re
import shutil
import subprocess
import sys
import tempfile

import pytest

from repro.cli import main
from repro.session import Session
from repro.session.manager import SessionError, SessionManager
from repro.session.client import SessionClient
from repro.store import SqliteStore, resolve_store


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestManagerStoreSeam:
    def test_manager_on_sqlite_backend(self, tmp_path):
        manager = SessionManager(str(tmp_path), store="sqlite",
                                 fsync="never")
        try:
            assert manager.store_backend == "sqlite"
            session = manager.get("alpha", create=True)
            session.make_variable("x")
            session.assign("v:x", 5)
        finally:
            manager.close_all()
        # Everything durable went into the one database file.
        assert os.path.exists(tmp_path / "sessions.db")
        assert not os.path.isdir(tmp_path / "alpha")

        manager = SessionManager(str(tmp_path), store="sqlite")
        try:
            assert "alpha" in manager.names()
            session = manager.get("alpha")
            assert session.get("v:x")[0] == 5
        finally:
            manager.close_all()

    def test_missing_session_without_create_is_an_error(self, tmp_path):
        manager = SessionManager(str(tmp_path), store="object")
        try:
            with pytest.raises(SessionError):
                manager.get("ghost", create=False)
        finally:
            manager.close_all()

    def test_prebuilt_store_instance_is_accepted(self, tmp_path):
        store = SqliteStore(str(tmp_path / "db"))
        manager = SessionManager(str(tmp_path), store=store)
        try:
            assert manager.store is store
            assert manager.store_backend == "sqlite"
        finally:
            manager.close_all()

    def test_arbitrary_store_object_is_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            SessionManager(str(tmp_path), store=object())


@pytest.fixture(scope="module")
def sqlite_server():
    """One ``repro serve --store sqlite`` subprocess for the module."""
    root = tempfile.mkdtemp(prefix="repro-store-server-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", root,
         "--fsync", "never", "--store", "sqlite"],
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
        stdout=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"unexpected server banner: {line!r}"
    yield match.group(1), int(match.group(2)), root
    proc.terminate()
    proc.wait(timeout=10)
    shutil.rmtree(root, ignore_errors=True)


class TestServerReportsBackend:
    def test_health_names_the_backend(self, sqlite_server):
        host, port, _root = sqlite_server
        with SessionClient(host, port) as client:
            health = client.call("health")
            assert health["store"] == "sqlite"

    def test_stats_name_the_backend(self, sqlite_server):
        host, port, _root = sqlite_server
        with SessionClient(host, port) as client:
            handle = client.session("flagged")
            handle.make_var("x", 1)
            stats = client.call("stats", session="flagged")
            assert stats["store"] == "sqlite"

    def test_sessions_live_in_the_database(self, sqlite_server):
        host, port, root = sqlite_server
        with SessionClient(host, port) as client:
            client.session("indb").make_var("x", 1)
        assert os.path.exists(os.path.join(root, "sessions.db"))
        assert not os.path.isdir(os.path.join(root, "indb"))


class TestCliStoreGrammar:
    def seed(self, tmp_path, kind):
        store = resolve_store(kind, str(tmp_path))
        session = Session("cliseed", store=store.session("cliseed"),
                          segment_max_bytes=200)
        session.make_variable("x")
        for value in range(20):
            session.assign("v:x", value)
        session.close()
        store.close()

    @pytest.mark.parametrize("kind", ["file", "sqlite", "object"])
    def test_session_verify_accepts_every_backend(self, kind, tmp_path):
        self.seed(tmp_path, kind)
        code, text = run(["session-verify", "--root", str(tmp_path),
                          "--name", "cliseed", "--store", kind])
        assert code == 0, text
        assert "position=" in text

    def test_session_verify_missing_session_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            run(["session-verify", "--root", str(tmp_path),
                 "--name", "nope", "--store", "sqlite"])

    def test_store_scrub_and_compact_round_trip(self, tmp_path):
        self.seed(tmp_path, "sqlite")
        code, text = run(["store-compact", "--root", str(tmp_path),
                          "--session", "cliseed", "--store", "sqlite",
                          "--keep-segments", "2"])
        assert code == 0, text
        assert "checkpoint at seq" in text
        code, text = run(["store-scrub", "--root", str(tmp_path),
                          "--session", "cliseed", "--store", "sqlite"])
        assert code == 0, text
        assert "clean" in text

    def test_store_scrub_reports_damage_nonzero(self, tmp_path):
        self.seed(tmp_path, "file")
        store = resolve_store("file", str(tmp_path))
        session_store = store.session("cliseed")
        session_store.delete_segment(session_store.segments()[1][1])
        store.close()
        code, text = run(["store-scrub", "--root", str(tmp_path),
                          "--session", "cliseed", "--check"])
        assert code == 1
        assert "damaged" in text
