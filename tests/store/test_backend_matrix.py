"""The PR-5 fault matrix, replayed against the sqlite and object backends.

Exactly the scenarios ``tests/session/test_fault_matrix.py`` runs on
the file layout — kill at every byte of the final append and of the
checkpoint write, crashes around the atomic publish, ENOSPC, fsync
failure, degraded mode — driven through each backend's
:class:`~repro.store.base.StoreGate` instead of the file
:class:`~repro.faults.FaultOpener`.  Same fault plans, same byte
arithmetic, same invariant: recovery is fingerprint-identical to the
last acknowledged state on every backend.
"""

import pytest

from tests.session.storage_matrix import (
    OBJECT,
    SQLITE,
    scenario_checkpoint_enospc,
    scenario_checkpoint_rename_crash,
    scenario_checkpoint_tear_matrix,
    scenario_degraded_enospc,
    scenario_degraded_fsync,
    scenario_journal_tear_matrix,
    scenario_replay_determinism_under_budget,
    scenario_torn_write_error_rollback,
)

BACKENDS = [pytest.param(SQLITE, id="sqlite"),
            pytest.param(OBJECT, id="object")]


@pytest.mark.parametrize("backend", BACKENDS)
class TestJournalTearMatrix:
    def test_kill_at_every_byte_of_the_final_append(self, backend,
                                                    tmp_path):
        scenario_journal_tear_matrix(backend, tmp_path)


@pytest.mark.parametrize("backend", BACKENDS)
class TestCheckpointCrashMatrix:
    def test_kill_at_every_byte_of_the_checkpoint_write(self, backend,
                                                        tmp_path):
        scenario_checkpoint_tear_matrix(backend, tmp_path)

    @pytest.mark.parametrize("window", ["replace", "replace-done"])
    def test_kill_around_the_atomic_rename(self, backend, tmp_path,
                                           window):
        scenario_checkpoint_rename_crash(backend, tmp_path, window)

    def test_checkpoint_write_error_keeps_session_alive(self, backend,
                                                        tmp_path):
        scenario_checkpoint_enospc(backend, tmp_path)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDegradedMode:
    def test_persistent_disk_error_degrades_to_read_only(self, backend,
                                                         tmp_path):
        scenario_degraded_enospc(backend, tmp_path)

    def test_fsync_failure_degrades_and_rolls_back_the_line(self, backend,
                                                            tmp_path):
        scenario_degraded_fsync(backend, tmp_path)

    def test_torn_write_with_error_rolls_back_the_partial_line(
            self, backend, tmp_path):
        scenario_torn_write_error_rollback(backend, tmp_path)


@pytest.mark.parametrize("backend", BACKENDS)
class TestReplayDeterminismUnderBudget:
    def test_budget_aborted_round_replays_identically(self, backend,
                                                      tmp_path):
        scenario_replay_determinism_under_budget(backend, tmp_path)
