"""Anti-entropy scrub/repair, per backend.

Damage taxonomy: a torn tail is truncated locally (crash signature); a
corrupt or missing mid-journal range needs a healthy source to re-ship
it; a damaged checkpoint is re-published from the source; a source
that is simply *ahead* extends the local tail (the anti-entropy case).
Every repair must land the recovered fingerprint exactly on the
healthy state.
"""

import shutil

import pytest

from repro.session import Session
from repro.store import STORE_BACKENDS, resolve_store
from repro.store.scrub import scrub_session

PARAMS = [pytest.param(kind, id=kind) for kind in STORE_BACKENDS]


def build(root_store, name="session", assigns=12, checkpoint_at=None):
    session = Session(name, store=root_store.session(name),
                      segment_max_bytes=200)
    session.make_variable("x")
    for value in range(assigns):
        session.assign("v:x", value)
        if checkpoint_at is not None and value == checkpoint_at:
            session.checkpoint()
    session.close()


def fingerprint(kind, root, name="session"):
    store = resolve_store(kind, str(root))
    try:
        session = Session(name, store=store.session(name),
                          read_only=True)
        try:
            return session.fingerprint(include_stats=False)
        finally:
            session.close()
    finally:
        store.close()


def twin_roots(kind, tmp_path, **build_kw):
    """A built root plus a byte-identical copy to corrupt."""
    source_root = tmp_path / "source"
    local_root = tmp_path / "local"
    store = resolve_store(kind, str(source_root))
    build(store, **build_kw)
    store.close()
    shutil.copytree(str(source_root), str(local_root))
    return local_root, source_root


def kinds(report, bucket):
    return [finding["kind"] for finding in report[bucket]]


@pytest.mark.parametrize("kind", PARAMS)
class TestScrubClean:
    def test_healthy_session_reports_clean(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root, checkpoint_at=6)
            report = scrub_session(root.session("session"))
            assert report["clean"] and report["ok"]
            assert report["segments"] > 0
            assert report["entries"] > 0
            assert report["checkpoints"] == 1
            assert report["backend"] == (kind or "file")
        finally:
            root.close()


@pytest.mark.parametrize("kind", PARAMS)
class TestTornTail:
    def tear(self, store):
        last_key = store.segments()[-1][1]
        appender = store.open_segment(last_key)
        appender.write(b"deadbeef {torn mid-app")
        appender.flush()
        appender.close()
        return last_key

    def test_torn_tail_is_truncated_off(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root)
            before = fingerprint(kind, tmp_path)
            self.tear(root.session("session"))
            report = scrub_session(root.session("session"))
            assert kinds(report, "repaired") == ["torn-tail"]
            assert report["ok"] and not report["clean"]
            assert fingerprint(kind, tmp_path) == before
            assert scrub_session(root.session("session"))["clean"]
        finally:
            root.close()

    def test_report_only_leaves_the_bytes_alone(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root)
            store = root.session("session")
            key = self.tear(store)
            size = store.segment_size(key)
            report = scrub_session(store, repair=False)
            assert kinds(report, "damage") == ["torn-tail"]
            assert not report["ok"]
            assert store.segment_size(key) == size
        finally:
            root.close()

    def test_live_tail_is_never_truncated(self, kind, tmp_path):
        """``allow_tail=False`` — a live writer's in-flight append
        looks torn and must be left for the writer to finish."""
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root)
            store = root.session("session")
            key = self.tear(store)
            size = store.segment_size(key)
            report = scrub_session(store, allow_tail=False)
            assert kinds(report, "damage") == ["torn-tail"]
            assert store.segment_size(key) == size
        finally:
            root.close()


@pytest.mark.parametrize("kind", PARAMS)
class TestMidJournalDamage:
    def test_without_a_source_the_need_is_reported(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root)
            store = root.session("session")
            segments = store.segments()
            assert len(segments) > 2
            first, key = segments[1]
            next_first = segments[2][0]
            store.truncate_segment(key, store.segment_size(key) // 2)

            report = scrub_session(store)
            assert not report["ok"]
            assert report["needs"] == [{"segment": key,
                                        "after": first - 1,
                                        "until": next_first - 1}]
        finally:
            root.close()

    def test_repaired_from_a_healthy_source_twin(self, kind, tmp_path):
        local_root, source_root = twin_roots(kind, tmp_path)
        healthy = fingerprint(kind, source_root)
        local = resolve_store(kind, str(local_root))
        source = resolve_store(kind, str(source_root))
        try:
            store = local.session("session")
            _first, key = store.segments()[1]
            store.truncate_segment(key, 10)

            report = scrub_session(store,
                                   source=source.session("session"))
            assert report["ok"]
            assert "segment" in kinds(report, "repaired")
            assert report["needs"] == []
            assert fingerprint(kind, local_root) == healthy
            assert scrub_session(store)["clean"]
        finally:
            local.close()
            source.close()

    def test_missing_segment_is_reshipped(self, kind, tmp_path):
        local_root, source_root = twin_roots(kind, tmp_path)
        healthy = fingerprint(kind, source_root)
        local = resolve_store(kind, str(local_root))
        source = resolve_store(kind, str(source_root))
        try:
            store = local.session("session")
            store.delete_segment(store.segments()[1][1])

            report = scrub_session(store,
                                   source=source.session("session"))
            assert report["ok"]
            assert "segment" in kinds(report, "repaired")
            assert fingerprint(kind, local_root) == healthy
        finally:
            local.close()
            source.close()

    def test_missing_segment_without_source_is_a_need(self, kind,
                                                      tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root)
            store = root.session("session")
            segments = store.segments()
            first, key = segments[1]
            next_first = segments[2][0]
            store.delete_segment(key)

            report = scrub_session(store)
            assert not report["ok"]
            assert report["needs"] == [{"segment": key,
                                        "after": first - 1,
                                        "until": next_first - 1}]
        finally:
            root.close()


@pytest.mark.parametrize("kind", PARAMS)
class TestCheckpointDamage:
    def test_damaged_checkpoint_republished_from_source(self, kind,
                                                        tmp_path):
        local_root, source_root = twin_roots(kind, tmp_path,
                                             checkpoint_at=6)
        healthy = fingerprint(kind, source_root)
        local = resolve_store(kind, str(local_root))
        source = resolve_store(kind, str(source_root))
        try:
            store = local.session("session")
            seq, _key = store.checkpoints()[-1]
            store.publish_checkpoint(seq, b"{corrupted")

            report = scrub_session(store,
                                   source=source.session("session"))
            assert report["ok"]
            assert "checkpoint" in kinds(report, "repaired")
            assert fingerprint(kind, local_root) == healthy
        finally:
            local.close()
            source.close()

    def test_damaged_checkpoint_without_source_is_damage(self, kind,
                                                         tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            build(root, checkpoint_at=6)
            store = root.session("session")
            seq, _key = store.checkpoints()[-1]
            store.publish_checkpoint(seq, b"{corrupted")
            report = scrub_session(store)
            assert not report["ok"]
            assert "checkpoint" in kinds(report, "damage")
        finally:
            root.close()


@pytest.mark.parametrize("kind", PARAMS)
class TestAntiEntropyTail:
    def test_source_ahead_extends_the_local_tail(self, kind, tmp_path):
        local_root, source_root = twin_roots(kind, tmp_path)
        healthy = fingerprint(kind, source_root)
        local = resolve_store(kind, str(local_root))
        source = resolve_store(kind, str(source_root))
        try:
            store = local.session("session")
            store.delete_segment(store.segments()[-1][1])
            assert fingerprint(kind, local_root) != healthy

            report = scrub_session(store,
                                   source=source.session("session"))
            assert report["ok"]
            assert "tail-extend" in kinds(report, "repaired")
            assert fingerprint(kind, local_root) == healthy
        finally:
            local.close()
            source.close()


class TestCrossBackendRepair:
    @pytest.mark.parametrize("source_kind", ["sqlite", "object"])
    def test_file_root_repaired_from_another_backend(self, source_kind,
                                                     tmp_path):
        """Journal lines are backend-independent raw bytes: a file root
        can be mended from a sqlite or object twin built from the very
        same operations."""
        local = resolve_store("file", str(tmp_path / "local"))
        source = resolve_store(source_kind, str(tmp_path / "source"))
        try:
            build(local)
            build(source)
            healthy = fingerprint("file", tmp_path / "local")

            store = local.session("session")
            store.delete_segment(store.segments()[1][1])
            report = scrub_session(store,
                                   source=source.session("session"))
            assert report["ok"]
            assert fingerprint("file", tmp_path / "local") == healthy
        finally:
            local.close()
            source.close()
