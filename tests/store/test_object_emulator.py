"""The object-store emulator's quirks — the semantics the ``object``
backend is proven against: eventual listing visibility, read-your-writes
gets, partial uploads that never become objects, injectable latency and
fault hooks.
"""

import os

import pytest

from repro.session import Session
from repro.store import ObjectEmulator, ObjectStore


class TestVisibility:
    def test_listing_lags_but_get_is_read_your_writes(self, tmp_path):
        emulator = ObjectEmulator(str(tmp_path), list_lag=2)
        emulator.put("s/a", b"one")
        # Invisible to list for two calls, readable immediately.
        assert emulator.list("s/") == []
        assert emulator.get("s/a") == b"one"
        assert emulator.list("s/") == []
        assert emulator.list("s/") == ["s/a"]

    def test_settle_forces_the_steady_state(self, tmp_path):
        emulator = ObjectEmulator(str(tmp_path), list_lag=5)
        emulator.put("s/a", b"one")
        assert emulator.list("s/") == []
        emulator.settle()
        assert emulator.list("s/") == ["s/a"]

    def test_rename_restarts_the_lag_clock(self, tmp_path):
        emulator = ObjectEmulator(str(tmp_path), list_lag=1)
        emulator.put("s/a.tmp", b"one")
        emulator.settle()
        emulator.rename("s/a.tmp", "s/a")
        assert emulator.list("s/") == []
        assert emulator.list("s/") == ["s/a"]
        assert emulator.get("s/a") == b"one"

    def test_partial_uploads_never_become_objects(self, tmp_path):
        emulator = ObjectEmulator(str(tmp_path))
        # Simulate a crashed multipart upload: the .inflight temp file
        # is on disk but must be invisible to every read path.
        path = os.path.join(str(tmp_path), "s", "a.inflight")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"half")
        assert emulator.list("s/") == []
        assert emulator.get("s/a") is None

    def test_delete_is_idempotent(self, tmp_path):
        emulator = ObjectEmulator(str(tmp_path))
        emulator.put("s/a", b"one")
        emulator.delete("s/a")
        emulator.delete("s/a")  # already gone: no error
        assert emulator.get("s/a") is None


class TestHooks:
    def test_latency_hook_sees_every_operation(self, tmp_path):
        calls = []
        emulator = ObjectEmulator(
            str(tmp_path), latency=lambda op, key: calls.append(op))
        emulator.put("s/a", b"one")
        emulator.get("s/a")
        emulator.list("s/")
        emulator.delete("s/a")
        assert calls == ["put", "get", "list", "delete"]

    def test_fault_hook_turns_an_op_into_an_error(self, tmp_path):
        def flaky(op, key):
            if op == "put" and key.endswith("boom"):
                raise OSError("injected outage")

        emulator = ObjectEmulator(str(tmp_path), fault=flaky)
        emulator.put("s/ok", b"one")
        with pytest.raises(OSError, match="injected outage"):
            emulator.put("s/boom", b"two")
        assert emulator.get("s/ok") == b"one"
        assert emulator.get("s/boom") is None


class TestSessionOverLaggedListing:
    def test_session_survives_listing_lag(self, tmp_path):
        """A session written through a lagging bucket recovers exactly
        once the listing settles — the eventual-visibility proof."""
        store = ObjectStore(str(tmp_path), list_lag=2)
        session = Session("lagged", store=store.session("lagged"))
        session.make_variable("x")
        session.assign("v:x", 41)
        fingerprint = session.fingerprint(include_stats=False)
        session.close()
        store.emulator.settle()

        twin_root = ObjectStore(str(tmp_path))
        twin = Session("lagged", store=twin_root.session("lagged"),
                       read_only=True)
        assert twin.fingerprint(include_stats=False) == fingerprint
        twin.close()
        twin_root.close()
        store.close()
