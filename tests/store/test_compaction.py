"""Tiered snapshot compaction: fold cold segments into a checkpoint.

Per backend: compaction publishes a boundary checkpoint, prunes every
covered segment, and leaves the recovered fingerprint untouched; the
publish window is crash-covered (a kill mid-compaction loses nothing);
the background worker sweeps a whole root, skipping live sessions.
"""

import os
import time

import pytest

from repro.faults import CrashPoint, FaultOpener, FaultPlan
from repro.session import Session
from repro.store import (
    FileStore,
    ObjectStore,
    SqliteStore,
    STORE_BACKENDS,
    load_latest_checkpoint,
    resolve_store,
)
from repro.store.compact import CompactionWorker, compact_session

PARAMS = [pytest.param(kind, id=kind) for kind in STORE_BACKENDS]


def grow(root_store, name="session", assigns=40):
    """A session rotated into many tiny segments, then closed."""
    session = Session(name, store=root_store.session(name),
                      segment_max_bytes=200)
    session.make_variable("x")
    for value in range(assigns):
        session.assign("v:x", value)
    session.close()


def fingerprint(kind, root, name="session"):
    """What a healthy process recovers from the root's bytes."""
    store = resolve_store(kind, str(root))
    try:
        session = Session(name, store=store.session(name),
                          read_only=True)
        try:
            return session.fingerprint(include_stats=False)
        finally:
            session.close()
    finally:
        store.close()


def faulty_root(kind, root, plan):
    """The backend over ``root``'s bytes with ``plan`` gating its I/O,
    at the same default location ``resolve_store`` would pick."""
    if kind == "file":
        return FileStore(str(root), opener=FaultOpener(plan))
    if kind == "sqlite":
        return SqliteStore(os.path.join(str(root), "sessions.db"),
                           plan=plan)
    return ObjectStore(os.path.join(str(root), ".objects"), plan=plan)


@pytest.mark.parametrize("kind", PARAMS)
class TestCompactSession:
    def test_folds_cold_segments_and_preserves_the_state(self, kind,
                                                         tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            grow(root)
            store = root.session("session")
            before = fingerprint(kind, tmp_path)
            cold = len(store.segments())
            assert cold > 3, "rotation did not produce enough segments"

            report = compact_session(store, keep_segments=2)
            assert report["performed"]
            assert len(store.segments()) == 2
            assert len(report["pruned_segments"]) == cold - 2
            checkpoint = load_latest_checkpoint(store)
            assert checkpoint["seq"] == report["checkpoint_seq"]
            assert fingerprint(kind, tmp_path) == before
        finally:
            root.close()

    def test_compaction_is_idempotent(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            grow(root)
            store = root.session("session")
            first = compact_session(store, keep_segments=2)
            assert first["performed"]
            again = compact_session(store, keep_segments=2)
            assert not again["performed"]
        finally:
            root.close()

    def test_noop_when_nothing_is_cold(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            grow(root, assigns=2)
            store = root.session("session")
            report = compact_session(store,
                                     keep_segments=len(store.segments()))
            assert not report["performed"]
            assert report["checkpoint_seq"] is None
        finally:
            root.close()

    def test_noop_when_a_designer_checkpoint_already_covers(self, kind,
                                                            tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            session = Session("session", store=root.session("session"),
                              segment_max_bytes=200)
            session.make_variable("x")
            for value in range(40):
                session.assign("v:x", value)
            session.checkpoint()  # covers everything up to the tail
            session.close()
            report = compact_session(root.session("session"),
                                     keep_segments=1)
            assert not report["performed"]
        finally:
            root.close()

    def test_keep_segments_must_leave_a_tail(self, kind, tmp_path):
        root = resolve_store(kind, str(tmp_path))
        try:
            with pytest.raises(ValueError):
                compact_session(root.session("session"), keep_segments=0)
        finally:
            root.close()


class TestCompactionCrashWindows:
    """A kill during the compaction publish must lose nothing — the
    same windows the checkpoint fault matrix covers, entered via
    compaction instead of a designer checkpoint."""

    @pytest.mark.parametrize("window", ["replace", "replace-done"])
    @pytest.mark.parametrize("kind", PARAMS)
    def test_crash_around_the_publish(self, kind, window, tmp_path):
        plainroot = resolve_store(kind, str(tmp_path))
        grow(plainroot)
        before = fingerprint(kind, tmp_path)
        plainroot.close()

        plan = FaultPlan()
        plan.crash_on(window, "*ckpt-*")
        faulty = faulty_root(kind, tmp_path, plan)
        try:
            with pytest.raises(CrashPoint):
                compact_session(faulty.session("session"),
                                keep_segments=2)
        finally:
            faulty.close()

        assert fingerprint(kind, tmp_path) == before

    @pytest.mark.parametrize("kind", PARAMS)
    def test_crash_mid_checkpoint_write(self, kind, tmp_path):
        plainroot = resolve_store(kind, str(tmp_path))
        grow(plainroot)
        before = fingerprint(kind, tmp_path)
        plainroot.close()

        plan = FaultPlan()
        plan.torn_write("*.tmp", at_byte=20)
        faulty = faulty_root(kind, tmp_path, plan)
        try:
            with pytest.raises(CrashPoint):
                compact_session(faulty.session("session"),
                                keep_segments=2)
        finally:
            faulty.close()

        assert fingerprint(kind, tmp_path) == before


class TestCompactionWorker:
    def test_sweeps_every_closed_session_and_skips_live_ones(self,
                                                             tmp_path):
        root = resolve_store("sqlite", str(tmp_path))
        try:
            grow(root, name="cold-a")
            grow(root, name="cold-b")
            grow(root, name="hot")
            worker = CompactionWorker(root, keep_segments=1,
                                      skip=lambda name: name == "hot")
            reports = worker.run_once()
            assert worker.runs == 1
            assert worker.compacted == 2
            compacted = {r["session"] for r in reports if r["performed"]}
            assert compacted == {"cold-a", "cold-b"}
            assert len(root.session("hot").segments()) > 1
        finally:
            root.close()

    def test_errors_are_counted_not_fatal(self, tmp_path):
        root = resolve_store("file", str(tmp_path))
        try:
            grow(root, name="good")
            bad = root.session("bad")
            bad.prepare()
            for first in (1, 5):  # discontinuous garbage segments
                appender = bad.create_segment(first)
                appender.write(b"garbage that is not a journal line\n")
                appender.flush()
                appender.close()
            worker = CompactionWorker(root, keep_segments=1)
            reports = worker.run_once()
            assert worker.compacted == 1
            by_name = {r["session"]: r for r in reports}
            assert by_name["good"]["performed"]
            assert not by_name["bad"]["performed"]
        finally:
            root.close()

    def test_background_thread_compacts_on_its_interval(self, tmp_path):
        root = resolve_store("file", str(tmp_path))
        try:
            grow(root)
            with CompactionWorker(root, interval=0.05,
                                  keep_segments=1) as worker:
                deadline = time.monotonic() + 5.0
                while worker.compacted == 0:
                    assert time.monotonic() < deadline, \
                        "worker never compacted"
                    time.sleep(0.02)
            assert len(root.session("session").segments()) == 1
        finally:
            root.close()
