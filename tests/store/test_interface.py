"""The SessionStore contract, proven on every backend.

Every durable touch the session layer makes goes through this
interface; these tests pin the semantics each backend must share —
segment round-trips, ordering, truncation, transactional checkpoint
publish, pruning, namespace listing — plus the ``--store`` resolution
grammar that maps CLI specs onto backends.
"""

import os

import pytest

from repro.store import (
    FileStore,
    ObjectStore,
    SqliteStore,
    STORE_BACKENDS,
    load_latest_checkpoint,
    prune_checkpoints,
    read_store_entries,
    resolve_store,
    store_tail_lines,
)
from repro.store.base import checkpoint_name, encode_checkpoint, segment_name


def make_root(kind, tmp_path):
    return resolve_store(kind, str(tmp_path))


BACKENDS = [pytest.param(kind, id=kind) for kind in STORE_BACKENDS]


def line(seq, payload="x"):
    """A CRC-framed journal line the store helpers can decode."""
    import json
    import zlib
    body = json.dumps({"seq": seq, "p": payload},
                      separators=(",", ":"), sort_keys=True)
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}\n".encode("utf-8")


def append(store, first_seq, count, *, durable=True):
    appender = store.create_segment(first_seq, durable=durable)
    for seq in range(first_seq, first_seq + count):
        appender.write(line(seq))
    appender.flush()
    if durable:
        appender.sync()
    appender.close()
    return appender.key


@pytest.mark.parametrize("kind", BACKENDS)
class TestSegmentContract:
    def test_segment_round_trip_and_ordering(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            append(store, 1, 3)
            append(store, 4, 2)
            segments = store.segments()
            assert [first for first, _key in segments] == [1, 4]
            assert segments[0][1] == segment_name(1)
            data = store.read_segment(segments[0][1])
            assert data == line(1) + line(2) + line(3)
            assert store.segment_size(segments[0][1]) == len(data)
            entries = [entry["seq"]
                       for entry in read_store_entries(store)]
            assert entries == [1, 2, 3, 4, 5]
        finally:
            root.close()

    def test_truncate_cuts_the_torn_suffix(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            key = append(store, 1, 2)
            keep = len(line(1))
            store.truncate_segment(key, keep)
            assert store.read_segment(key) == line(1)
            assert store.segment_size(key) == keep
        finally:
            root.close()

    def test_delete_segment_removes_it_from_the_listing(self, kind,
                                                        tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            key = append(store, 1, 1)
            append(store, 2, 1)
            store.delete_segment(key)
            assert [first for first, _key in store.segments()] == [2]
        finally:
            root.close()

    def test_open_segment_appends_to_the_existing_tail(self, kind,
                                                       tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            key = append(store, 1, 1)
            appender = store.open_segment(key)
            appender.write(line(2))
            appender.flush()
            appender.sync()
            appender.close()
            assert store.read_segment(key) == line(1) + line(2)
        finally:
            root.close()

    def test_tail_lines_preserve_raw_bytes(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            append(store, 1, 4)
            tail = store_tail_lines(store, after_seq=2)
            assert [seq for seq, _raw in tail] == [3, 4]
            assert tail[0][1] == line(3)
        finally:
            root.close()


@pytest.mark.parametrize("kind", BACKENDS)
class TestCheckpointContract:
    def test_publish_and_read_round_trip(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            state = {"seq": 7, "variables": {}}
            published = store.publish_checkpoint(7, encode_checkpoint(state))
            assert published.endswith(checkpoint_name(7))
            assert store.checkpoints() == [(7, checkpoint_name(7))]
            assert load_latest_checkpoint(store) == state
        finally:
            root.close()

    def test_prune_keeps_only_the_newest(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            for seq in (3, 6, 9):
                store.publish_checkpoint(seq, encode_checkpoint(
                    {"seq": seq}))
            prune_checkpoints(store, 2)
            assert [seq for seq, _key in store.checkpoints()] == [6, 9]
        finally:
            root.close()

    def test_republish_over_same_seq_replaces(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            store.prepare()
            store.publish_checkpoint(5, encode_checkpoint({"seq": 5}))
            store.publish_checkpoint(5, encode_checkpoint(
                {"seq": 5, "v": 1}))
            assert len(store.checkpoints()) == 1
            assert load_latest_checkpoint(store) == {"seq": 5, "v": 1}
        finally:
            root.close()


@pytest.mark.parametrize("kind", BACKENDS)
class TestNamespace:
    def test_exists_and_session_names(self, kind, tmp_path):
        root = make_root(kind, tmp_path)
        try:
            store = root.session("alpha")
            assert not store.exists()
            store.prepare()
            append(store, 1, 1)
            assert store.exists()
            other = root.session("beta")
            other.prepare()
            append(other, 1, 1)
            assert set(root.session_names()) >= {"alpha", "beta"}
            assert not root.session("ghost").exists()
        finally:
            root.close()

    def test_backend_and_location_identify_the_store(self, kind,
                                                     tmp_path):
        root = make_root(kind, tmp_path)
        try:
            assert root.backend == (kind or "file")
            store = root.session("alpha")
            assert store.backend == root.backend
            assert store.location
        finally:
            root.close()


class TestResolveStore:
    def test_none_and_file_map_to_the_file_layout(self, tmp_path):
        for spec in (None, "file"):
            store = resolve_store(spec, str(tmp_path))
            assert isinstance(store, FileStore)
            assert store.root == str(tmp_path)
            store.close()

    def test_explicit_locations_override_the_root(self, tmp_path):
        store = resolve_store(f"file:{tmp_path}/elsewhere", str(tmp_path))
        assert isinstance(store, FileStore)
        assert store.root == f"{tmp_path}/elsewhere"
        store.close()

    def test_sqlite_defaults_to_sessions_db_under_root(self, tmp_path):
        store = resolve_store("sqlite", str(tmp_path))
        try:
            assert isinstance(store, SqliteStore)
            assert store.path == os.path.join(str(tmp_path),
                                              "sessions.db")
        finally:
            store.close()

    def test_object_defaults_to_dot_objects_under_root(self, tmp_path):
        store = resolve_store("object", str(tmp_path))
        try:
            assert isinstance(store, ObjectStore)
            assert store.root == os.path.join(str(tmp_path), ".objects")
        finally:
            store.close()

    def test_unknown_backend_is_an_error(self, tmp_path):
        with pytest.raises(ValueError, match="unknown store backend"):
            resolve_store("postgres:wat", str(tmp_path))
