"""Tests for the command-line front end."""

import io
import json

import pytest

from repro.cli import main
from repro.core import UpperBoundConstraint, reset_default_context
from repro.stem import CellClass, Rect
from repro.stem.library import CellLibrary
from repro.stem.persistence import serialize_library
from repro.spice import resistor


@pytest.fixture
def design_path(tmp_path):
    library = CellLibrary("cli-demo")
    add = library.define("ADD", is_generic=True)
    add.define_signal("x", "in")
    add.define_signal("y", "out")
    add.declare_delay("x", "y", estimate=5.0)
    add.set_bounding_box(Rect.of_extent(10, 10))
    rc = library.define("ADD.RC", add)
    rc.delay_var("x", "y").set(8.0)
    rc.set_bounding_box(Rect.of_extent(10, 10))
    cs = library.define("ADD.CS", add)
    cs.delay_var("x", "y").set(5.0)
    cs.set_bounding_box(Rect.of_extent(22, 10))

    drv = library.define("DRV")
    drv.define_signal("o", "out", output_resistance=1e3,
                      max_load_capacitance=1e-12)
    snk = library.define("SNK")
    snk.define_signal("i", "in", load_capacitance=1e-12)

    top = library.define("TOP")
    top.define_signal("in1", "in")
    top.define_signal("out1", "out")
    top.declare_delay("in1", "out1")
    a = add.instantiate(top, "A1")
    a.bounding_box_var.set(Rect.of_extent(25, 10))  # roomy placement area
    n0 = top.add_net("n0"); n0.connect_io("in1"); n0.connect(a, "x")
    n1 = top.add_net("n1"); n1.connect(a, "y"); n1.connect_io("out1")

    bad = library.define("BAD")
    d = drv.instantiate(bad, "d")
    s1 = snk.instantiate(bad, "s1")
    s2 = snk.instantiate(bad, "s2")
    net = bad.add_net("overloaded")
    net.connect(d, "o"); net.connect(s1, "i"); net.connect(s2, "i")

    rcell = library.register(resistor(1e3, name="R1K",
                                      context=library.context))
    phys = library.define("PHYS")
    phys.define_signal("p", "in")
    phys.define_signal("gnd", "inout")
    r = rcell.instantiate(phys, "Ra")
    pn = phys.add_net("pn"); pn.connect_io("p"); pn.connect(r, "p")
    gn = phys.add_net("gnd"); gn.connect_io("gnd"); gn.connect(r, "n")

    path = tmp_path / "design.json"
    path.write_text(json.dumps(serialize_library(library)))
    reset_default_context()
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInfoAndTree:
    def test_info(self, design_path):
        code, text = run(["info", design_path])
        assert code == 0
        assert "cells: 9" in text
        assert "ADD.RC" in text

    def test_tree_shows_hierarchy_and_characteristics(self, design_path):
        code, text = run(["tree", design_path])
        assert code == 0
        assert "ADD (generic)" in text
        assert "  ADD.RC" in text
        assert "x->y=8" in text


class TestErc:
    def test_erc_flags_overload(self, design_path):
        code, text = run(["erc", design_path])
        assert code == 1
        assert "overload" in text

    def test_erc_single_clean_cell(self, design_path):
        code, text = run(["erc", design_path, "--cell", "TOP"])
        assert code == 0
        assert "0 finding(s)" in text


class TestNetlist:
    def test_netlist_extraction(self, design_path):
        code, text = run(["netlist", design_path, "--cell", "PHYS"])
        assert code == 0
        assert "R1 " in text


class TestDelay:
    def test_delay_value(self, design_path):
        code, text = run(["delay", design_path, "--cell", "TOP",
                          "--source", "in1", "--dest", "out1"])
        assert code == 0
        assert "in1->out1: 5" in text

    def test_delay_with_bound(self, design_path):
        code, text = run(["delay", design_path, "--cell", "TOP",
                          "--source", "in1", "--dest", "out1",
                          "--max", "4"])
        assert code == 1
        assert "VIOLATION" in text

    def test_unknown_delay_pair(self, design_path):
        with pytest.raises(SystemExit):
            run(["delay", design_path, "--cell", "TOP",
                 "--source", "out1", "--dest", "in1"])


class TestSelect:
    def test_select_lists_realizations(self, design_path):
        code, text = run(["select", design_path, "--cell", "TOP",
                          "--instance", "A1"])
        assert code == 0
        assert "ADD.RC" in text
        assert "ADD.CS" in text

    def test_select_ranked(self, design_path):
        code, text = run(["select", design_path, "--cell", "TOP",
                          "--instance", "A1", "--rank"])
        assert code == 0
        assert "score=" in text

    def test_unknown_instance(self, design_path):
        with pytest.raises(SystemExit):
            run(["select", design_path, "--cell", "TOP",
                 "--instance", "GHOST"])


class TestSearch:
    def test_search_matches_select_rank(self, design_path):
        ranked_code, ranked = run(["select", design_path, "--cell", "TOP",
                                   "--instance", "A1", "--rank"])
        code, text = run(["search", design_path, "--cell", "TOP",
                          "--instance", "A1"])
        assert (ranked_code, code) == (0, 0)
        assert [line.split()[0] for line in ranked.splitlines() if line] \
            == [line.split()[0] for line in text.splitlines()
                if line and not line.startswith("(")]
        assert "backend='serial'" in text

    def test_search_parallel_workers(self, design_path):
        code, text = run(["search", design_path, "--cell", "TOP",
                          "--instance", "A1", "--workers", "2",
                          "--backend", "thread"])
        assert code == 0
        assert "score=" in text
        assert "backend='thread'" in text

    def test_search_no_prune_same_ranking(self, design_path):
        pruned_code, pruned = run(["search", design_path, "--cell", "TOP",
                                   "--instance", "A1"])
        code, text = run(["search", design_path, "--cell", "TOP",
                          "--instance", "A1", "--no-prune"])
        assert (pruned_code, code) == (0, 0)
        assert [line for line in pruned.splitlines()
                if line.startswith("ADD")] \
            == [line for line in text.splitlines()
                if line.startswith("ADD")]


class TestBrowse:
    def test_browse_panes(self, design_path):
        code, text = run(["browse", design_path, "--cell", "TOP"])
        assert code == 0
        assert "cell TOP" in text
        assert "structure of TOP" in text
        assert "A1: ADD" in text

    def test_browse_unknown_cell_clean_error(self, design_path):
        code, text = run(["browse", design_path, "--cell", "NOPE"])
        assert code == 2


class TestStats:
    def test_stats_is_sorted_and_deterministic(self, design_path):
        code, text = run(["stats", design_path])
        assert code == 0
        lines = [line for line in text.splitlines() if line]
        names = [line.split(":", 1)[0] for line in lines]
        assert names == sorted(names)
        assert any(name == "engine.stats.rounds" for name in names)
        _, rerun = run(["stats", design_path])
        assert rerun == text

    def test_stats_json(self, design_path):
        code, text = run(["stats", design_path, "--json"])
        assert code == 0
        snapshot = json.loads(text)
        assert snapshot["engine.stats.rounds"] >= 1
        assert all(name.startswith("engine.stats.") for name in snapshot)

    def test_stats_includes_plan_counters(self, design_path):
        code, text = run(["stats", design_path, "--json"])
        assert code == 0
        snapshot = json.loads(text)
        assert snapshot["engine.stats.plan_hits"] == 0
        assert snapshot["engine.stats.plan_deopts"] == 0


class TestPlancacheStats:
    def test_plancache_stats_text(self, design_path):
        code, text = run(["plancache-stats", design_path, "--repeat", "6"])
        assert code == 0
        assert "plan cache after 6 pass(es)" in text
        names = [line.strip().split(":", 1)[0]
                 for line in text.splitlines()[1:] if line.strip()]
        assert names == sorted(names)
        assert "hits" in names and "deopts" in names and "misses" in names

    def test_plancache_stats_json(self, design_path):
        code, text = run(["plancache-stats", design_path, "--json"])
        assert code == 0
        snapshot = json.loads(text)
        for key in ("hits", "misses", "deopts", "promotions",
                    "invalidations", "epoch", "keys", "plans"):
            assert key in snapshot
        # the fixture's leaf delays promote and replay; the
        # hierarchy-crossing round is refused (certification), not mis-planned
        assert snapshot["promotions"] >= 1 and snapshot["hits"] >= 1
        _, rerun = run(["plancache-stats", design_path, "--json"])
        assert rerun == text


class TestMetrics:
    def test_metrics_text_report(self, design_path):
        code, text = run(["metrics", design_path])
        assert code == 0
        assert "engine.inference_runs:" in text
        assert "engine.round_latency_us: count=" in text

    def test_metrics_json_snapshot(self, design_path):
        code, text = run(["metrics", design_path, "--json"])
        assert code == 0
        snapshot = json.loads(text)
        assert snapshot["engine.inference_runs"] >= 1
        assert snapshot["engine.round_latency_us"]["count"] >= 1
        assert "buckets" in snapshot["engine.round_latency_us"]


class TestProfile:
    def test_profile_reports_hot_constraints(self, design_path):
        code, text = run(["profile", design_path, "--top", "3"])
        assert code == 0
        assert "hottest constraints" in text
        assert "cum µs" in text

    def test_profile_writes_chrome_trace(self, design_path, tmp_path):
        trace_path = str(tmp_path / "round.trace.json")
        code, text = run(["profile", design_path, "--trace", trace_path])
        assert code == 0
        assert "chrome trace" in text
        with open(trace_path) as handle:
            trace = json.load(handle)
        assert any(e["ph"] == "X" for e in trace["traceEvents"])
        assert trace["otherData"]["design"] == design_path
